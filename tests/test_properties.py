"""Cross-cutting property-based tests (hypothesis) on system invariants.

Each property here spans a subsystem boundary or states an invariant the
unit tests only probe pointwise.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import dct2_basis, dct_basis
from repro.core.reconstruction import reconstruct
from repro.core.sampling import random_locations
from repro.energy.accounting import EnergyLedger
from repro.fields.coverage import spatial_coverage
from repro.fields.field import SpatialField
from repro.fields.zones import ZoneGrid
from repro.middleware.incentives import Bid, ReverseAuction
from repro.network.bus import MessageBus
from repro.network.message import Message, MessageKind


class TestReconstructionProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_full_sampling_recovers_exactly(self, seed):
        """With M = N (every cell measured, noiseless) sparse recovery
        must reproduce the signal everywhere — the fully-determined
        system leaves no room for interpolation error."""
        rng = np.random.default_rng(seed)
        n = 48
        phi = dct_basis(n)
        alpha = np.zeros(n)
        alpha[rng.choice(12, 4, replace=False)] = rng.uniform(1, 3, 4)
        x = phi @ alpha
        loc = np.arange(n)
        result = reconstruct(x[loc], loc, phi, solver="omp", sparsity=4)
        assert np.allclose(result.x_hat, x, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_centering_invariant_to_constant_offsets(self, seed):
        """Shifting the field by a constant shifts the centered
        reconstruction by the same constant (no interaction with the
        sparse part)."""
        rng = np.random.default_rng(seed)
        n = 64
        phi = dct2_basis(8, 8)
        alpha = np.zeros(n)
        alpha[rng.choice(10, 3, replace=False) + 1] = rng.uniform(1, 2, 3)
        x = phi @ alpha
        loc = random_locations(n, 32, rng)
        base = reconstruct(
            x[loc], loc, phi, solver="chs", sparsity=6, center=True
        )
        offset = 37.5
        shifted = reconstruct(
            x[loc] + offset, loc, phi, solver="chs", sparsity=6, center=True
        )
        assert np.allclose(shifted.x_hat, base.x_hat + offset, atol=1e-6)


class TestZoneProperties:
    @given(
        zx=st.sampled_from([1, 2, 4]),
        zy=st.sampled_from([1, 2]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_extract_assemble_identity(self, zx, zy, seed):
        rng = np.random.default_rng(seed)
        field = SpatialField(grid=rng.standard_normal((8, 16)))
        zg = ZoneGrid(16, 8, zx, zy)
        subs = {z.zone_id: zg.extract(field, z) for z in zg}
        assert np.array_equal(zg.assemble(subs).grid, field.grid)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_zone_index_mapping_consistent(self, seed):
        """A zone-local vector index maps to the global cell holding the
        same value."""
        rng = np.random.default_rng(seed)
        field = SpatialField(grid=rng.standard_normal((8, 16)))
        zg = ZoneGrid(16, 8, 4, 2)
        zone = zg.zones[int(rng.integers(len(zg)))]
        sub = zg.extract(field, zone)
        k_local = int(rng.integers(zone.n))
        k_global = zone.local_to_global(k_local, parent_height=8)
        assert sub.vector()[k_local] == field.vector()[k_global]


class TestCoverageProperties:
    @given(
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_coverage_monotone_in_samples(self, data):
        n = 32
        small = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1,
                max_size=8,
                unique=True,
            )
        )
        extra = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=0,
                max_size=8,
                unique=True,
            )
        )
        larger = sorted(set(small) | set(extra))
        assert spatial_coverage(np.array(larger), n) >= spatial_coverage(
            np.array(small), n
        )


class TestBusProperties:
    @given(
        count=st.integers(min_value=1, max_value=100),
        loss=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_delivered_plus_lost(self, count, loss, seed):
        bus = MessageBus(loss_rate=loss, seed=seed)
        bus.register("a")
        bus.register("b")
        for _ in range(count):
            bus.send(
                Message(
                    kind=MessageKind.SENSE_REPORT,
                    source="a",
                    destination="b",
                )
            )
        assert bus.endpoint("b").pending() + bus.messages_lost == count
        # Sender always pays; total metered messages equals sends.
        assert bus.stats.messages == count


class TestLedgerProperties:
    @given(
        amounts=st.lists(
            st.floats(min_value=0.0, max_value=1e6),
            min_size=0,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_equals_sum(self, amounts):
        separate = [EnergyLedger(node_id=f"n{i}") for i in range(len(amounts))]
        for ledger, amount in zip(separate, amounts):
            ledger.post("sensing", amount)
        rollup = EnergyLedger(node_id="all")
        for ledger in separate:
            rollup.merge(ledger)
        assert rollup.total_mj() == sum(amounts)


class TestAuctionProperties:
    @given(
        prices=st.lists(
            st.floats(min_value=0.01, max_value=100.0),
            min_size=2,
            max_size=12,
        ),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_reverse_auction_invariants(self, prices, k):
        auction = ReverseAuction(credit_per_loss=0.5)
        bids = [Bid(f"n{i}", p) for i, p in enumerate(prices)]
        result = auction.run_round(bids, k=k)
        # Exactly min(k, len) winners, each paid their own bid.
        assert len(result.winners) == min(k, len(bids))
        for bid in bids:
            if bid.node_id in result.winners:
                assert result.payments[bid.node_id] == bid.price
        # Winners' credits reset; losers' grew.
        for bid in bids:
            if bid.node_id in result.winners:
                assert auction.credits[bid.node_id] == 0.0
            else:
                assert auction.credits[bid.node_id] > 0.0
