"""Shared fixtures for the SenseDroid reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.basis import dct_basis
from repro.fields.field import SpatialField
from repro.fields.generators import urban_temperature_field


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_basis() -> np.ndarray:
    """A 64-point DCT basis, big enough for CS yet fast."""
    return dct_basis(64)


@pytest.fixture
def sparse_signal(rng, small_basis) -> tuple[np.ndarray, np.ndarray]:
    """(x, alpha): a 5-sparse signal in the 64-point DCT basis."""
    n = small_basis.shape[0]
    alpha = np.zeros(n)
    support = rng.choice(n, size=5, replace=False)
    alpha[support] = rng.standard_normal(5) * 3.0 + np.sign(
        rng.standard_normal(5)
    )
    return small_basis @ alpha, alpha


@pytest.fixture
def small_field() -> SpatialField:
    """A deterministic 16x8 smooth temperature field."""
    return urban_temperature_field(16, 8, rng=3)
