"""Tests for the comparison baselines."""

import numpy as np
import pytest

from repro.baselines.dense import dense_gather
from repro.baselines.global_cs import global_cs_gather, global_cs_transmissions
from repro.baselines.uniform import uniform_gather
from repro.core import metrics
from repro.fields.generators import (
    gaussian_plume_field,
    smooth_field,
    sparse_dct_field,
)


@pytest.fixture
def truth():
    return smooth_field(16, 8, cutoff=0.15, amplitude=4.0, offset=20.0, rng=0)


class TestDense:
    def test_noiseless_is_exact(self, truth):
        result = dense_gather(truth)
        assert np.array_equal(result.field.grid, truth.grid)
        assert result.measurements == truth.n
        assert result.messages == 2 * truth.n

    def test_noise_passes_through(self, truth):
        result = dense_gather(truth, noise_std=1.0, rng=1)
        err = metrics.rmse(truth.vector(), result.field.vector())
        assert 0.5 < err < 1.5


class TestUniform:
    def test_smooth_field_ok(self, truth):
        result = uniform_gather(truth, m=40)
        err = metrics.relative_error(truth.vector(), result.field.vector())
        assert err < 0.1

    def test_misses_localized_structure(self):
        """A tight plume falls between uniform samples."""
        plume = gaussian_plume_field(
            32, 32, n_sources=1, spread=(1.0, 1.5), max_intensity=100.0,
            rng=3,
        )
        result = uniform_gather(plume, m=40)
        err = metrics.relative_error(plume.vector(), result.field.vector())
        assert err > 0.3

    def test_full_m_recovers_exactly(self, truth):
        result = uniform_gather(truth, m=truth.n)
        assert np.allclose(result.field.grid, truth.grid)

    def test_invalid_m(self, truth):
        with pytest.raises(ValueError):
            uniform_gather(truth, m=0)
        with pytest.raises(ValueError):
            uniform_gather(truth, m=truth.n + 1)


class TestGlobalCS:
    def test_recovers_sparse_field(self):
        field, alpha = sparse_dct_field(16, 8, sparsity=6, rng=4)
        result = global_cs_gather(field, m=48, sparsity=6, rng=5)
        err = metrics.relative_error(field.vector(), result.field.vector())
        assert err < 1e-4

    def test_transmissions_are_nm(self):
        assert global_cs_transmissions(100, 10) == 1000
        with pytest.raises(ValueError):
            global_cs_transmissions(0, 5)

    def test_transmission_count_recorded(self, truth):
        result = global_cs_gather(truth, m=20, rng=6)
        assert result.transmissions == truth.n * 20

    def test_noise_degrades_gracefully(self):
        field, _ = sparse_dct_field(16, 8, sparsity=4, rng=7)
        clean = global_cs_gather(field, m=48, sparsity=4, rng=8)
        noisy = global_cs_gather(
            field, m=48, sparsity=4, noise_std=0.5, rng=8
        )
        err_clean = metrics.relative_error(field.vector(), clean.field.vector())
        err_noisy = metrics.relative_error(field.vector(), noisy.field.vector())
        assert err_noisy > err_clean

    def test_invalid_m(self, truth):
        with pytest.raises(ValueError):
            global_cs_gather(truth, m=0)
