"""Per-rule fixture tests for reprolint (repro.analysis.reprolint).

Every rule gets at least one firing case and one pragma-suppressed
case, exercised through ``lint_source`` so the fixtures stay inline.
"""

from __future__ import annotations

import textwrap

from repro.analysis.reprolint import (
    PARSE_ERROR_RULE,
    RULES,
    Finding,
    lint_paths,
    lint_source,
)


def _lint(source: str, path: str = "module.py", **kwargs) -> list[Finding]:
    return lint_source(textwrap.dedent(source), path, **kwargs)


def _rules(findings, *, suppressed=None):
    return [
        f.rule
        for f in findings
        if suppressed is None or f.suppressed is suppressed
    ]


class TestRPR001GlobalRng:
    def test_np_random_module_call_fires(self):
        findings = _lint(
            """
            import numpy as np

            def f():
                return np.random.rand(4)
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR001"]

    def test_stdlib_random_module_call_fires(self):
        findings = _lint(
            """
            import random

            def f():
                random.shuffle([1, 2])
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR001"]

    def test_seeded_constructors_allowed(self):
        findings = _lint(
            """
            import random
            import numpy as np

            def f(seed):
                return np.random.default_rng(seed), random.Random(seed)
            """
        )
        assert findings == []

    def test_import_alias_is_resolved(self):
        findings = _lint(
            """
            import numpy.random as npr

            def f():
                return npr.normal()
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR001"]

    def test_pragma_suppresses(self):
        findings = _lint(
            """
            import numpy as np

            def f():
                return np.random.rand(4)  # reprolint: allow[global-rng]
            """
        )
        assert _rules(findings, suppressed=True) == ["RPR001"]
        assert _rules(findings, suppressed=False) == []

    def test_unrelated_attribute_not_flagged(self):
        findings = _lint(
            """
            def f(thing):
                return thing.random.rand()
            """
        )
        assert findings == []


class TestRPR002WallClock:
    def test_time_time_fires(self):
        findings = _lint(
            """
            import time

            def f():
                return time.time()
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR002"]

    def test_from_import_perf_counter_fires(self):
        findings = _lint(
            """
            from time import perf_counter

            def f():
                return perf_counter()
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR002"]

    def test_datetime_now_fires(self):
        findings = _lint(
            """
            from datetime import datetime

            def f():
                return datetime.now()
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR002"]

    def test_pragma_by_rule_id_suppresses(self):
        findings = _lint(
            """
            import time

            def f():
                return time.perf_counter()  # reprolint: allow[RPR002]
            """
        )
        assert _rules(findings, suppressed=True) == ["RPR002"]

    def test_time_sleep_not_flagged(self):
        findings = _lint(
            """
            import time

            def f():
                time.sleep(0.1)
            """
        )
        assert findings == []


class TestRPR003SolvePurity:
    SOURCE = """
        class Broker:
            def solve_round(self, pending):
                self.cache = pending
                return pending
        """

    def test_self_write_in_solve_round_fires_in_phase_files(self):
        for basename in ("broker.py", "rounds.py", "localcloud.py"):
            findings = _lint(self.SOURCE, path=f"src/{basename}")
            assert _rules(findings, suppressed=False) == ["RPR003"], basename

    def test_other_files_are_out_of_scope(self):
        assert _lint(self.SOURCE, path="src/other.py") == []

    def test_other_functions_are_out_of_scope(self):
        findings = _lint(
            """
            class Broker:
                def finalize_round(self, pending):
                    self.cache = pending
            """,
            path="broker.py",
        )
        assert findings == []

    def test_global_declaration_fires(self):
        findings = _lint(
            """
            COUNT = 0

            def solve_round(pending):
                global COUNT
                COUNT += 1
            """,
            path="rounds.py",
        )
        assert "RPR003" in _rules(findings, suppressed=False)

    def test_nested_helper_is_still_in_scope(self):
        findings = _lint(
            """
            class Broker:
                def solve_round(self, pending):
                    def inner():
                        self.cache = pending
                    inner()
            """,
            path="broker.py",
        )
        assert _rules(findings, suppressed=False) == ["RPR003"]

    def test_local_and_parameter_writes_allowed(self):
        findings = _lint(
            """
            class Broker:
                def solve_round(self, pending):
                    scratch = pending.copy()
                    pending.robust = True
                    return scratch
            """,
            path="broker.py",
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = _lint(
            """
            class Broker:
                def solve_round(self, pending):
                    self.cache = pending  # reprolint: allow[solve-purity]
            """,
            path="broker.py",
        )
        assert _rules(findings, suppressed=True) == ["RPR003"]


class TestRPR004RawTopic:
    def test_publish_with_raw_topic_fires(self):
        findings = _lint(
            """
            def f(bus, msg):
                bus.publish("zones/estimates", msg)
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR004"]

    def test_subscribe_second_arg_fires(self):
        findings = _lint(
            """
            def f(bus):
                bus.subscribe("lc0/head", "zones/estimates")
            """
        )
        findings = [f for f in findings if not f.suppressed]
        assert [f.rule for f in findings] == ["RPR004"]
        assert "zones/estimates" in findings[0].message

    def test_keyword_topic_fires(self):
        findings = _lint(
            """
            def f(bus, msg):
                bus.publish(topic="zones/estimates", message=msg)
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR004"]

    def test_constant_topic_allowed(self):
        findings = _lint(
            """
            from repro.network.topics import TOPIC_ZONE_ESTIMATES

            def f(bus, msg):
                bus.publish(TOPIC_ZONE_ESTIMATES, msg)
            """
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = _lint(
            """
            def f(bus, msg):
                bus.publish("zones/estimates", msg)  # reprolint: allow[raw-topic]
            """
        )
        assert _rules(findings, suppressed=True) == ["RPR004"]


class TestRPR005FloatEq:
    def test_float_literal_comparison_fires(self):
        findings = _lint(
            """
            def f(x):
                return x == 1.5
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR005"]

    def test_float_cast_comparison_fires(self):
        findings = _lint(
            """
            def f(x, y):
                return float(x) != y
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR005"]

    def test_int_comparison_allowed(self):
        findings = _lint(
            """
            def f(x):
                return x == 0 or x != 10
            """
        )
        assert findings == []

    def test_ordering_comparison_allowed(self):
        findings = _lint(
            """
            def f(x):
                return x <= 1.5
            """
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = _lint(
            """
            def f(peak):
                return peak == 0.0  # reprolint: allow[float-eq]
            """
        )
        assert _rules(findings, suppressed=True) == ["RPR005"]


class TestRPR006MutableDefault:
    def test_literal_mutable_defaults_fire(self):
        findings = _lint(
            """
            def f(a=[], b={}, c=set()):
                return a, b, c
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR006"] * 3

    def test_keyword_only_mutable_default_fires(self):
        findings = _lint(
            """
            def f(*, cache=dict()):
                return cache
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR006"]

    def test_none_default_allowed(self):
        findings = _lint(
            """
            def f(a=None, b=(), c=0):
                return a, b, c
            """
        )
        assert findings == []

    def test_unseeded_default_rng_fires(self):
        findings = _lint(
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR006"]

    def test_seeded_default_rng_allowed(self):
        findings = _lint(
            """
            import numpy as np

            def f(seed):
                return np.random.default_rng(seed)
            """
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = _lint(
            """
            def f(a=[]):  # reprolint: allow[mutable-default]
                return a
            """
        )
        assert _rules(findings, suppressed=True) == ["RPR006"]


class TestRPR007Retired:
    """RPR007 gated the TrafficStats.latency_s alias; both the alias
    and the rule are gone (PR 8), and the id must stay retired."""

    def test_stats_latency_chain_no_longer_fires(self):
        findings = _lint(
            """
            def f(bus, stats):
                return bus.stats.latency_s + stats.latency_s
            """
        )
        assert findings == []

    def test_rule_id_is_not_selectable(self):
        import pytest

        with pytest.raises(ValueError, match="RPR007"):
            _lint("x = 1\n", select=["RPR007"])
        with pytest.raises(ValueError, match="deprecated-latency-s"):
            _lint("x = 1\n", select=["deprecated-latency-s"])

    def test_replacement_fields_allowed(self):
        findings = _lint(
            """
            def f(stats):
                return stats.latency_sum_s + stats.mean_latency_s
            """
        )
        assert findings == []


class TestRPR002RealtimeAllowlist:
    """The sanctioned realtime modules may read the wall clock."""

    _SOURCE = """
        import time

        def f():
            return time.monotonic()
        """

    def test_ordinary_module_fires(self):
        findings = _lint(self._SOURCE, path="src/repro/sim/clock.py")
        assert _rules(findings, suppressed=False) == ["RPR002"]

    def test_wallclock_module_allowlisted(self):
        findings = _lint(self._SOURCE, path="src/repro/sim/wallclock.py")
        assert findings == []

    def test_asyncio_transport_allowlisted(self):
        findings = _lint(
            self._SOURCE, path="src/repro/network/asyncio_transport.py"
        )
        assert findings == []

    def test_gateway_package_allowlisted(self):
        findings = _lint(
            self._SOURCE, path="src/repro/gateway/server.py"
        )
        assert findings == []

    def test_lookalike_module_is_not_allowlisted(self):
        findings = _lint(
            self._SOURCE, path="src/repro/sim/wallclock_helpers.py"
        )
        assert _rules(findings, suppressed=False) == ["RPR002"]


class TestRPR008RawInbox:
    def test_inbox_append_fires(self):
        findings = _lint(
            """
            def f(bus, message):
                bus.endpoint("b").inbox.append(message)
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR008"]

    def test_inbox_rebind_fires(self):
        findings = _lint(
            """
            def f(endpoint):
                endpoint.inbox = []
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR008"]

    def test_inbox_item_delete_fires(self):
        findings = _lint(
            """
            def f(endpoint, idx):
                del endpoint.inbox[idx]
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR008"]

    def test_bus_module_exempt(self):
        findings = _lint(
            """
            def push(self, message):
                self.inbox.append(message)
            """,
            path="bus.py",
        )
        assert findings == []

    def test_reads_allowed(self):
        findings = _lint(
            """
            def f(endpoint):
                depth = len(endpoint.inbox)
                copy = list(endpoint.inbox)
                return depth, copy
            """
        )
        assert findings == []

    def test_unrelated_append_allowed(self):
        findings = _lint(
            """
            def f(outbox, inbox, message):
                outbox.append(message)
                inbox.append(message)  # bare local, not an attribute
            """
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = _lint(
            """
            def f(endpoint, message):
                endpoint.inbox.append(message)  # reprolint: allow[raw-inbox]
            """
        )
        assert _rules(findings, suppressed=True) == ["RPR008"]


class TestRPR009WorkerRng:
    def test_default_rng_in_worker_fires(self):
        findings = _lint(
            """
            import numpy as np

            def _solve_zone_worker(payload, seed):
                rng = np.random.default_rng(seed)
                return rng.standard_normal(4)
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR009"]

    def test_seed_sequence_in_worker_init_fires(self):
        findings = _lint(
            """
            import numpy as np

            def shard_worker_init(seed, index):
                child = np.random.SeedSequence(seed).spawn(8)[index]
                return np.random.Generator(np.random.PCG64(child))
            """
        )
        # SeedSequence, Generator and PCG64 construction each fire.
        assert _rules(findings, suppressed=False) == [
            "RPR009",
            "RPR009",
            "RPR009",
        ]

    def test_stdlib_random_in_worker_fires(self):
        findings = _lint(
            """
            import random

            def worker_main(seed):
                return random.Random(seed)
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR009"]

    def test_nested_helper_inside_worker_fires(self):
        findings = _lint(
            """
            import numpy as np

            def run_worker(seed):
                def draw():
                    return np.random.default_rng(seed).random()
                return draw()
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR009"]

    def test_pragma_suppresses(self):
        findings = _lint(
            """
            import numpy as np

            def _bench_worker(seed):
                return np.random.default_rng(seed)  # reprolint: allow[worker-rng]
            """
        )
        assert _rules(findings, suppressed=True) == ["RPR009"]

    def test_non_worker_function_negative(self):
        findings = _lint(
            """
            import numpy as np

            def build_population(seed):
                return np.random.default_rng(seed)

            def spawn_shard_seeds(root, count):
                return np.random.SeedSequence(root).spawn(count)
            """
        )
        assert findings == []

    def test_worker_without_rng_negative(self):
        findings = _lint(
            """
            def _solve_zone_worker(payload, basis):
                cells, values = payload
                return basis[cells, :] @ values
            """
        )
        assert findings == []

    def test_shipped_tree_has_zero_worker_rng_findings(self):
        import repro
        from pathlib import Path

        pkg_root = Path(repro.__file__).parent
        findings, scanned = lint_paths([pkg_root], select=["RPR009"])
        assert scanned > 50
        active = [f for f in findings if not f.suppressed]
        assert active == [], "\n".join(f.render() for f in active)


class TestSuppressionMechanics:
    def test_star_pragma_suppresses_everything(self):
        findings = _lint(
            """
            import time

            def f(x):
                return time.time(), x == 1.5  # reprolint: allow[*]
            """
        )
        assert findings and all(f.suppressed for f in findings)

    def test_multiline_statement_accepts_closing_line_pragma(self):
        findings = _lint(
            """
            import time

            def f():
                return (
                    time.time()
                )  # reprolint: allow[wall-clock]
            """
        )
        assert _rules(findings, suppressed=True) == ["RPR002"]

    def test_pragma_on_other_line_does_not_leak(self):
        findings = _lint(
            """
            import time

            def f():
                a = time.time()  # reprolint: allow[wall-clock]
                b = time.time()
                return a, b
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR002"]
        assert _rules(findings, suppressed=True) == ["RPR002"]

    def test_wrong_rule_pragma_does_not_suppress(self):
        findings = _lint(
            """
            import time

            def f():
                return time.time()  # reprolint: allow[float-eq]
            """
        )
        assert _rules(findings, suppressed=False) == ["RPR002"]


class TestSelectAndErrors:
    def test_select_filters_rules(self):
        source = """
            import time

            def f(x):
                return time.time(), x == 1.5
            """
        only_clock = _lint(source, select=["wall-clock"])
        assert _rules(only_clock) == ["RPR002"]
        only_float = _lint(source, select=["RPR005"])
        assert _rules(only_float) == ["RPR005"]

    def test_unknown_select_raises(self):
        try:
            _lint("x = 1", select=["no-such-rule"])
        except ValueError as exc:
            assert "no-such-rule" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_parse_error_reported_not_raised(self):
        findings = _lint("def broken(:\n    pass")
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]
        assert not findings[0].suppressed

    def test_findings_sorted_by_position(self):
        findings = _lint(
            """
            import time

            def f(x):
                b = x == 1.5
                a = time.time()
                return a, b
            """
        )
        assert [f.rule for f in findings] == ["RPR005", "RPR002"]
        assert findings[0].line < findings[1].line


class TestTreeIsClean:
    def test_shipped_sources_have_zero_unsuppressed_findings(self):
        import repro
        from pathlib import Path

        pkg_root = Path(repro.__file__).parent
        findings, scanned = lint_paths([pkg_root])
        active = [f for f in findings if not f.suppressed]
        assert scanned > 50
        assert active == [], "\n".join(f.render() for f in active)

    def test_rule_catalogue_is_stable(self):
        assert set(RULES) == {
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            # RPR007 retired with the latency_s alias (PR 8); the id
            # stays reserved and must never be reused.
            "RPR008",
            "RPR009",
            # RPR010-RPR013 are the whole-program rules (PR 10); they
            # live in repro.analysis.wholeprogram and only fire through
            # analyze_paths, never lint_source.
            "RPR010",
            "RPR011",
            "RPR012",
            "RPR013",
        }

    def test_whole_program_rules_never_fire_per_file(self):
        """lint_source has no checker for RPR010-RPR013; selecting them
        alone must yield nothing (they need the cross-file model)."""
        findings = _lint(
            """
            import time

            async def pump():
                time.sleep(1)
            """,
            select=["RPR010", "RPR011", "RPR012", "RPR013"],
        )
        assert findings == []
