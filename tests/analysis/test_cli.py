"""CLI tests for ``python -m repro.analysis`` (repro.analysis.cli)."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import repro
from repro.analysis import main

PKG_ROOT = str(Path(repro.__file__).parent)


def _write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 file(s) scanned, 0 finding(s)" in out

    def test_finding_exits_one(self, tmp_path, capsys):
        path = _write(
            tmp_path,
            "dirty.py",
            """
            import time

            def f():
                return time.time()
            """,
        )
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "RPR002[wall-clock]" in out
        assert "dirty.py:5:" in out

    def test_suppressed_finding_exits_zero(self, tmp_path, capsys):
        path = _write(
            tmp_path,
            "pinned.py",
            """
            import time

            def f():
                return time.time()  # reprolint: allow[wall-clock]
            """,
        )
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s), 1 suppressed" in out
        assert "RPR002" not in out  # hidden without --show-suppressed

    def test_show_suppressed_prints_them(self, tmp_path, capsys):
        path = _write(
            tmp_path,
            "pinned.py",
            "peak = 1.0\nflag = peak == 0.0  # reprolint: allow[float-eq]\n",
        )
        assert main(["--show-suppressed", str(path)]) == 0
        assert "(suppressed)" in capsys.readouterr().out

    def test_unknown_rule_usage_error(self, tmp_path, capsys):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        assert main(["--select", "no-such-rule", str(path)]) == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("RPR001", "RPR008", "wall-clock", "solve-purity"):
            assert rule in out
        # RPR007 retired with the latency_s alias (PR 8).
        assert "RPR007" not in out


class TestJsonFormat:
    def test_json_report_shape(self, tmp_path, capsys):
        _write(
            tmp_path,
            "mixed.py",
            """
            import time

            def f(x):
                t = time.time()  # reprolint: allow[wall-clock]
                return t, x == 1.5
            """,
        )
        assert main(["--format", "json", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["files_scanned"] == 1
        assert report["unsuppressed"] == 1
        assert report["suppressed"] == 1
        by_rule = {f["rule"]: f for f in report["findings"]}
        assert by_rule["RPR002"]["suppressed"] is True
        assert by_rule["RPR005"]["suppressed"] is False
        assert set(by_rule["RPR005"]) == {
            "rule", "name", "path", "line", "col", "message", "suppressed",
        }

    def test_shipped_tree_reports_zero_unsuppressed(self, capsys):
        """The acceptance gate: `--format json` over the shipped
        package reports zero unsuppressed findings."""
        assert main(["--format", "json", PKG_ROOT]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["unsuppressed"] == 0
        assert report["files_scanned"] > 50


class TestGithubFormat:
    def test_annotation_shape_and_exit_code(self, tmp_path, capsys):
        path = _write(
            tmp_path,
            "dirty.py",
            """
            import time

            def f():
                return time.time()
            """,
        )
        assert main(["--format", "github", str(path)]) == 1
        out = capsys.readouterr().out
        line = [l for l in out.splitlines() if l.startswith("::")][0]
        assert line.startswith("::error file=")
        assert "title=RPR002[wall-clock]" in line
        assert f",line=5,col=12," in line
        assert "::" in line.split("title=")[1]  # message after ::

    def test_suppressed_findings_become_warnings(self, tmp_path, capsys):
        path = _write(
            tmp_path,
            "pinned.py",
            """
            import time

            def f():
                return time.time()  # reprolint: allow[wall-clock]
            """,
        )
        assert main(["--format", "github", "--show-suppressed", str(path)]) == 0
        out = capsys.readouterr().out
        assert "::warning file=" in out
        assert "::error" not in out

    def test_message_newlines_are_escaped(self, tmp_path):
        from repro.analysis.cli import _github_annotation
        from repro.analysis.reprolint import Finding

        finding = Finding(
            rule="RPR001",
            name="global-rng",
            path="a:b,c.py",
            line=3,
            col=0,
            message="line one\nline two, 50%",
        )
        rendered = _github_annotation(finding)
        assert "\n" not in rendered
        assert "%0A" in rendered
        assert "file=a%3Ab%2Cc.py" in rendered
        assert "50%25" in rendered

    def test_shipped_tree_emits_no_error_annotations(self, capsys):
        assert main(["--format", "github", PKG_ROOT]) == 0
        out = capsys.readouterr().out
        assert "::error" not in out


class TestWholeProgram:
    def test_cross_file_finding_through_cli(self, tmp_path, capsys):
        """The default CLI run includes RPR010-RPR013: a blocking call
        inside a gateway coroutine surfaces without any flag."""
        gateway = tmp_path / "repro" / "gateway"
        gateway.mkdir(parents=True)
        for d in (tmp_path / "repro", gateway):
            (d / "__init__.py").write_text("", encoding="utf-8")
        (gateway / "server.py").write_text(
            "import time\n\n\nasync def pump():\n    time.sleep(1)\n",
            encoding="utf-8",
        )
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPR010[async-blocking]" in out

    def test_no_whole_program_flag_skips_cross_file_rules(
        self, tmp_path, capsys
    ):
        gateway = tmp_path / "repro" / "gateway"
        gateway.mkdir(parents=True)
        for d in (tmp_path / "repro", gateway):
            (d / "__init__.py").write_text("", encoding="utf-8")
        (gateway / "server.py").write_text(
            "import time\n\n\nasync def pump():\n    time.sleep(1)\n",
            encoding="utf-8",
        )
        assert main(["--no-whole-program", str(tmp_path)]) == 0
        assert "RPR010" not in capsys.readouterr().out

    def test_graph_dump_to_stdout(self, tmp_path, capsys):
        path = _write(
            tmp_path,
            "mod.py",
            """
            import time

            def f():
                time.sleep(1)
            """,
        )
        assert main(["--graph", "-", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "mod.f" in payload["functions"]
        externals = [
            c.get("external")
            for c in payload["functions"]["mod.f"]["calls"]
        ]
        assert "time.sleep" in externals

    def test_graph_dump_to_file(self, tmp_path, capsys):
        path = _write(tmp_path, "mod.py", "def f():\n    pass\n")
        out_file = tmp_path / "graph.json"
        assert main(["--graph", str(out_file), str(path)]) == 0
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert "mod.f" in payload["functions"]


class TestModuleEntryPoint:
    def test_python_dash_m_runs(self, tmp_path):
        path = _write(tmp_path, "clean.py", "x = 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(path)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(Path(PKG_ROOT).parent), "PATH": "/usr/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_select_filters(self, tmp_path, capsys):
        path = _write(
            tmp_path,
            "both.py",
            """
            import time

            def f(x):
                return time.time(), x == 1.5
            """,
        )
        assert main(["--select", "float-eq", str(path)]) == 1
        out = capsys.readouterr().out
        assert "RPR005" in out
        assert "RPR002" not in out
