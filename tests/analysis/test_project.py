"""Tests for the whole-program project model (repro.analysis.project).

The model is the substrate the RPR010-RPR013 rules stand on, so the
things that matter are tested directly: module naming from package
layout, import resolution (absolute / aliased / relative / ``__init__``
re-export chains), call-graph soundness on a small fixture package,
purity facts, and the mtime/size parse cache invalidating when a file
changes between loads.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.project import ProjectModel, _module_name_for


def _pkg(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialise a fixture package tree under tmp_path/proj."""
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def _load(tmp_path: Path, files: dict[str, str]) -> ProjectModel:
    return ProjectModel([_pkg(tmp_path, files)]).load()


class TestModuleNaming:
    def test_package_layout_drives_dotted_names(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/alpha.py": "def f():\n    pass\n",
                "pkg/sub/__init__.py": "",
                "pkg/sub/beta.py": "def g():\n    pass\n",
            },
        )
        assert "pkg" in model.modules
        assert "pkg.alpha" in model.modules
        assert "pkg.sub" in model.modules
        assert "pkg.sub.beta" in model.modules
        assert "pkg.alpha.f" in model.functions
        assert "pkg.sub.beta.g" in model.functions

    def test_file_outside_any_package_is_its_own_stem(self, tmp_path):
        lone = tmp_path / "solo.py"
        lone.write_text("def h():\n    pass\n", encoding="utf-8")
        assert _module_name_for(lone) == "solo"
        model = ProjectModel([lone]).load()
        assert "solo.h" in model.functions


class TestImportResolution:
    def test_absolute_and_aliased_imports(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/helpers.py": "def work():\n    pass\n",
                "pkg/user.py": """
                    import pkg.helpers as hp
                    from pkg.helpers import work as w

                    def run():
                        hp.work()
                        w()
                """,
            },
        )
        fn = model.functions["pkg.user.run"]
        resolved = [
            targets
            for _site, targets, _dotted in model.callees("pkg.user.run")
        ]
        assert resolved == [
            ("pkg.helpers.work",),
            ("pkg.helpers.work",),
        ], fn.calls

    def test_relative_imports_single_and_double_dot(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/base.py": "def root_fn():\n    pass\n",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": """
                    from .sibling import near
                    from ..base import root_fn

                    def go():
                        near()
                        root_fn()
                """,
                "pkg/sub/sibling.py": "def near():\n    pass\n",
            },
        )
        resolved = [
            targets for _s, targets, _d in model.callees("pkg.sub.mod.go")
        ]
        assert resolved == [
            ("pkg.sub.sibling.near",),
            ("pkg.base.root_fn",),
        ]

    def test_init_reexport_chain_resolves_to_definition(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "from .inner import thing\n",
                "pkg/inner/__init__.py": "from .impl import thing\n",
                "pkg/inner/impl.py": "def thing():\n    pass\n",
                "pkg/user.py": """
                    from pkg import thing

                    def use():
                        thing()
                """,
            },
        )
        assert model.resolve_export("pkg.thing") == "pkg.inner.impl.thing"
        resolved = [
            targets for _s, targets, _d in model.callees("pkg.user.use")
        ]
        assert resolved == [("pkg.inner.impl.thing",)]

    def test_from_dot_import_in_package_init(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "from . import const\n",
                "pkg/const.py": "LABEL = 'x'\n",
            },
        )
        info = model.modules["pkg"]
        assert info.imports["const"] == "pkg.const"


class TestCallGraph:
    def test_self_method_call_resolves_precisely(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/cls.py": """
                    class Engine:
                        def start(self):
                            self._spin()

                        def _spin(self):
                            pass
                """,
            },
        )
        resolved = [
            targets
            for _s, targets, _d in model.callees("pkg.cls.Engine.start")
        ]
        assert resolved == [("pkg.cls.Engine._spin",)]

    def test_self_call_through_project_base_class(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/base.py": """
                    class Base:
                        def tick(self):
                            pass
                """,
                "pkg/derived.py": """
                    from pkg.base import Base

                    class Derived(Base):
                        def run(self):
                            self.tick()
                """,
            },
        )
        resolved = [
            targets
            for _s, targets, _d in model.callees("pkg.derived.Derived.run")
        ]
        assert resolved == [("pkg.base.Base.tick",)]

    def test_class_instantiation_resolves_to_init(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/cls.py": """
                    class Widget:
                        def __init__(self):
                            self.n = 0

                    def make():
                        return Widget()
                """,
            },
        )
        resolved = [
            targets for _s, targets, _d in model.callees("pkg.cls.make")
        ]
        assert resolved == [("pkg.cls.Widget.__init__",)]

    def test_nested_def_registered_and_resolvable(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/nest.py": """
                    def outer():
                        def inner():
                            pass
                        inner()
                """,
            },
        )
        assert "pkg.nest.outer.inner" in model.functions
        resolved = [
            targets for _s, targets, _d in model.callees("pkg.nest.outer")
        ]
        assert resolved == [("pkg.nest.outer.inner",)]
        members = model.lexical_members("pkg.nest.outer")
        assert [m.qualname for m in members] == [
            "pkg.nest.outer",
            "pkg.nest.outer.inner",
        ]

    def test_common_method_name_fallback_stays_unresolved(self, tmp_path):
        """Precision-over-soundness: obj.update() on an unknown receiver
        must not wire the graph to every project method named update."""
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """
                    class Store:
                        def update(self):
                            pass

                        def recompute_estimate(self):
                            pass
                """,
                "pkg/b.py": """
                    def use(obj):
                        obj.update()
                        obj.recompute_estimate()
                """,
            },
        )
        resolved = [
            targets for _s, targets, _d in model.callees("pkg.b.use")
        ]
        assert resolved[0] == ()  # common name: no fallback
        assert resolved[1] == ("pkg.a.Store.recompute_estimate",)

    def test_external_call_keeps_dotted_path(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/ext.py": """
                    import time
                    import numpy as np

                    def f():
                        time.sleep(1)
                        np.zeros(3)
                """,
            },
        )
        dotteds = [
            dotted for _s, _t, dotted in model.callees("pkg.ext.f")
        ]
        assert dotteds == ["time.sleep", "numpy.zeros"]


class TestPurityFacts:
    def test_self_and_module_writes_recorded(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/facts.py": """
                    _CACHE = {}

                    class Thing:
                        def mutate(self):
                            self.state = 1
                            self.items.append(2)

                    def poison(key):
                        _CACHE[key] = 1

                    def local_only():
                        box = {}
                        box["k"] = 1
                """,
            },
        )
        mutate = model.functions["pkg.facts.Thing.mutate"]
        assert len(mutate.self_writes) == 2
        poison = model.functions["pkg.facts.poison"]
        assert poison.module_writes
        clean = model.functions["pkg.facts.local_only"]
        assert not clean.is_impure

    def test_global_decl_recorded(self, tmp_path):
        model = _load(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/g.py": """
                    _N = 0

                    def bump():
                        global _N
                        _N += 1
                """,
            },
        )
        assert model.functions["pkg.g.bump"].global_decls


class TestCacheInvalidation:
    def test_unchanged_files_come_from_cache(self, tmp_path):
        root = _pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "def f():\n    pass\n",
                "pkg/b.py": "def g():\n    pass\n",
            },
        )
        model = ProjectModel([root]).load()
        assert model.files_parsed == 3
        assert model.files_cached == 0
        model.load()
        assert model.files_parsed == 0
        assert model.files_cached == 3

    def test_edited_file_reparsed_mid_run(self, tmp_path):
        root = _pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "def f():\n    pass\n",
                "pkg/b.py": "def g():\n    pass\n",
            },
        )
        model = ProjectModel([root]).load()
        assert "pkg.a.f" in model.functions
        # Edit one module between loads; content length differs so the
        # (mtime_ns, size) key changes even on coarse filesystems.
        (root / "pkg/a.py").write_text(
            "def f():\n    pass\n\ndef f2():\n    pass\n",
            encoding="utf-8",
        )
        model.load()
        assert model.files_parsed == 1  # only the edited file
        assert model.files_cached == 2
        assert "pkg.a.f2" in model.functions

    def test_deleted_function_disappears_after_reload(self, tmp_path):
        root = _pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "def gone():\n    pass\n",
            },
        )
        model = ProjectModel([root]).load()
        assert "pkg.a.gone" in model.functions
        (root / "pkg/a.py").write_text("X = 1\n", encoding="utf-8")
        model.load()
        assert "pkg.a.gone" not in model.functions

    def test_syntax_error_reported_not_raised(self, tmp_path):
        root = _pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/ok.py": "def f():\n    pass\n",
                "pkg/broken.py": "def broken(:\n",
            },
        )
        model = ProjectModel([root]).load()
        assert "pkg.ok.f" in model.functions
        assert len(model.parse_errors) == 1
        assert "broken.py" in model.parse_errors[0][0]


class TestGraphDump:
    def test_graph_json_is_stable_and_parseable(self, tmp_path):
        root = _pkg(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """
                    import time

                    def f():
                        time.sleep(1)
                        g()

                    def g():
                        pass
                """,
            },
        )
        model = ProjectModel([root]).load()
        first = model.graph_json()
        second = model.graph_json()
        assert first == second  # byte-stable for diffing
        payload = json.loads(first)
        entry = payload["functions"]["pkg.a.f"]
        externals = [
            c.get("external") for c in entry["calls"] if "external" in c
        ]
        targets = [
            t for c in entry["calls"] for t in c.get("targets", [])
        ]
        assert "time.sleep" in externals
        assert "pkg.a.g" in targets
