"""Tests for the whole-program rules RPR010-RPR013.

Mirrors the PR 5 per-rule matrix — firing, suppressed, negative, and
shipped-tree-zero — plus the four planted-violation acceptance tests
(one finding each) and the lint timing budget.

Fixtures are materialised as real package trees under tmp_path because
the rules are path-aware: realtime modules are recognised by
``repro/gateway/`` (etc.) path shape, solve-phase roots by
``broker.py``/``mega.py`` basenames, and topics by the
``repro.network.topics`` module name — so the fixture tree mimics the
repo layout without importing any of it.
"""

from __future__ import annotations

import textwrap
import time
from pathlib import Path

import repro
from repro.analysis.wholeprogram import analyze_paths

PKG_ROOT = Path(repro.__file__).parent


def _tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    # Every directory from the file up to (exclusive) the root is a
    # package, so dotted module names mirror the repo layout.
    for path in list(root.rglob("*.py")):
        directory = path.parent
        while directory != root:
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
            directory = directory.parent
    return root


def _run(tmp_path, files, select):
    findings, _scanned, _model = analyze_paths(
        [_tree(tmp_path, files)], select=select
    )
    return findings


def _active(findings):
    return [f for f in findings if not f.suppressed]


# ----------------------------------------------------------------------
# RPR010 async-blocking
# ----------------------------------------------------------------------


class TestRPR010AsyncBlocking:
    def test_direct_sleep_in_gateway_coroutine_fires(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/gateway/server.py": """
                    import time

                    async def pump():
                        time.sleep(0.1)
                """,
            },
            select=["RPR010"],
        )
        active = _active(findings)
        assert [f.rule for f in active] == ["RPR010"]
        assert "time.sleep" in active[0].message
        assert active[0].path.endswith("server.py")

    def test_transitive_chain_fires_with_witness(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/gateway/server.py": """
                    from repro.util.io import fetch

                    async def handle():
                        fetch()
                """,
                "repro/util/io.py": """
                    from repro.util.deep import load

                    def fetch():
                        return load()
                """,
                "repro/util/deep.py": """
                    def load():
                        with open("x") as fh:
                            return fh.read()
                """,
            },
            select=["RPR010"],
        )
        active = _active(findings)
        assert [f.rule for f in active] == ["RPR010"]
        # Anchored in the coroutine, witness names the chain + sink.
        assert active[0].path.endswith("server.py")
        assert "fetch" in active[0].message
        assert "open" in active[0].message

    def test_pragma_at_call_site_suppresses(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/gateway/server.py": """
                    import time

                    async def pump():
                        time.sleep(0.1)  # reprolint: allow[async-blocking]
                """,
            },
            select=["RPR010"],
        )
        assert _active(findings) == []
        assert [f.rule for f in findings] == ["RPR010"]
        assert findings[0].suppressed

    def test_pragma_at_sink_cuts_propagation(self, tmp_path):
        """A sanctioned offload site deep in a helper clears every
        coroutine that reaches it — no finding, not even suppressed."""
        findings = _run(
            tmp_path,
            {
                "repro/gateway/server.py": """
                    from repro.util.io import fetch

                    async def handle():
                        fetch()
                """,
                "repro/util/io.py": """
                    import time

                    def fetch():
                        time.sleep(0)  # reprolint: allow[async-blocking]
                """,
            },
            select=["RPR010"],
        )
        assert findings == []

    def test_sync_function_and_non_realtime_module_negative(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                # Blocking in a *sync* gateway function: fine.
                "repro/gateway/server.py": """
                    import time

                    def warmup():
                        time.sleep(0.1)
                """,
                # Blocking in an async def *outside* realtime modules:
                # out of scope for this rule.
                "repro/middleware/jobs.py": """
                    import time

                    async def batch():
                        time.sleep(0.1)
                """,
            },
            select=["RPR010"],
        )
        assert findings == []

    def test_shipped_tree_zero(self):
        findings, scanned, _model = analyze_paths(
            [PKG_ROOT], select=["RPR010"]
        )
        assert scanned > 50
        assert _active(findings) == [], "\n".join(
            f.render() for f in _active(findings)
        )


# ----------------------------------------------------------------------
# RPR011 transitive-impurity
# ----------------------------------------------------------------------


class TestRPR011TransitiveImpurity:
    def test_deep_impure_call_from_solve_round_fires(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/middleware/broker.py": """
                    from repro.core.helpers import accumulate

                    class Broker:
                        def solve_round(self, pending):
                            return accumulate(pending)
                """,
                "repro/core/helpers.py": """
                    from repro.core.cachemod import remember

                    def accumulate(x):
                        return remember(x)
                """,
                "repro/core/cachemod.py": """
                    _SEEN = {}

                    def remember(x):
                        _SEEN[id(x)] = x
                        return x
                """,
            },
            select=["RPR011"],
        )
        active = _active(findings)
        assert [f.rule for f in active] == ["RPR011"]
        assert active[0].path.endswith("broker.py")
        assert "remember" in active[0].message

    def test_self_write_through_helper_method_fires(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/middleware/broker.py": """
                    class Broker:
                        def solve_round(self, pending):
                            phi = self._memoised_basis()
                            return phi

                        def _memoised_basis(self):
                            self._cache = 1
                            return self._cache
                """,
            },
            select=["RPR011"],
        )
        active = _active(findings)
        assert [f.rule for f in active] == ["RPR011"]
        assert "_memoised_basis" in active[0].message

    def test_pragma_on_write_line_sanctions_all_paths(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/middleware/broker.py": """
                    class Broker:
                        def solve_round(self, pending):
                            return self._memo()

                        def _memo(self):
                            self._cache = 1  # reprolint: allow[transitive-impurity]
                            return self._cache
                """,
            },
            select=["RPR011"],
        )
        assert findings == []

    def test_def_line_pragma_sanctions_whole_function(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/middleware/broker.py": """
                    class Broker:
                        def solve_round(self, pending):
                            return self._memo()

                        def _memo(self):  # reprolint: allow[transitive-impurity]
                            self._a = 1
                            self._b = 2
                            return self._a
                """,
            },
            select=["RPR011"],
        )
        assert findings == []

    def test_pragma_at_call_site_suppresses_that_finding(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/middleware/broker.py": """
                    class Broker:
                        def solve_round(self, pending):
                            return self._memo()  # reprolint: allow[transitive-impurity]

                        def _memo(self):
                            self._cache = 1
                            return self._cache
                """,
            },
            select=["RPR011"],
        )
        assert _active(findings) == []
        assert [f.suppressed for f in findings] == [True]

    def test_constructor_writes_and_pure_chain_negative(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/middleware/broker.py": """
                    from repro.core.acc import Acc

                    class Broker:
                        def solve_round(self, pending):
                            acc = Acc()
                            return helper(pending)

                    def helper(x):
                        return x + 1
                """,
                # __init__ self-writes initialise a fresh object: not
                # impurity the solve phase can observe.
                "repro/core/acc.py": """
                    class Acc:
                        def __init__(self):
                            self.total = 0
                """,
            },
            select=["RPR011"],
        )
        assert findings == []

    def test_mega_solve_kernel_is_a_root(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/sim/mega.py": """
                    from repro.core.cachemod import remember

                    def _solve_zone(payload):
                        return remember(payload)
                """,
                "repro/core/cachemod.py": """
                    _SEEN = {}

                    def remember(x):
                        _SEEN[id(x)] = x
                        return x
                """,
            },
            select=["RPR011"],
        )
        active = _active(findings)
        assert [f.rule for f in active] == ["RPR011"]
        assert active[0].path.endswith("mega.py")

    def test_shipped_tree_zero(self):
        findings, _scanned, _model = analyze_paths(
            [PKG_ROOT], select=["RPR011"]
        )
        assert _active(findings) == [], "\n".join(
            f.render() for f in _active(findings)
        )


# ----------------------------------------------------------------------
# RPR012 seed-lineage
# ----------------------------------------------------------------------


class TestRPR012SeedLineage:
    def test_duplicate_literal_seed_across_files_fires_once(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/sim/a.py": """
                    import numpy as np

                    def make():
                        return np.random.default_rng(1234)
                """,
                "repro/sim/b.py": """
                    import numpy as np

                    def make():
                        return np.random.default_rng(1234)
                """,
            },
            select=["RPR012"],
        )
        active = _active(findings)
        # One finding at the *second* site, pointing back at the first.
        assert [f.rule for f in active] == ["RPR012"]
        assert active[0].path.endswith("b.py")
        assert "a.py" in active[0].message

    def test_duplicate_seed_keyword_and_random_random(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/sim/mix.py": """
                    import random

                    import numpy as np

                    def make():
                        g = np.random.default_rng(seed=7)
                        r = random.Random(7)
                        return g, r
                """,
            },
            select=["RPR012"],
        )
        assert len(_active(findings)) == 1

    def test_rng_passed_to_executor_fires(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/sim/pool.py": """
                    import numpy as np

                    def fan_out(pool, work):
                        rng = np.random.default_rng(99)
                        return pool.submit(work, rng)
                """,
            },
            select=["RPR012"],
        )
        active = _active(findings)
        assert [f.rule for f in active] == ["RPR012"]
        assert "rng" in active[0].message

    def test_closure_capturing_rng_submitted_fires(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/sim/pool.py": """
                    import numpy as np

                    def fan_out(pool, items):
                        rng = np.random.default_rng(5)

                        def job(item):
                            return item + rng.normal()

                        return pool.map(job, items)
                """,
            },
            select=["RPR012"],
        )
        active = _active(findings)
        assert [f.rule for f in active] == ["RPR012"]

    def test_pragma_suppresses(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/sim/pool.py": """
                    import numpy as np

                    def fan_out(pool, work):
                        rng = np.random.default_rng(99)
                        return pool.submit(work, rng)  # reprolint: allow[seed-lineage]
                """,
            },
            select=["RPR012"],
        )
        assert _active(findings) == []
        assert [f.suppressed for f in findings] == [True]

    def test_distinct_and_nonliteral_seeds_negative(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/sim/a.py": """
                    import numpy as np

                    def make(seed):
                        first = np.random.default_rng(1)
                        second = np.random.default_rng(2)
                        derived = np.random.default_rng(seed)
                        also = np.random.default_rng(seed)
                        return first, second, derived, also
                """,
                # Submitting plain data to an executor is fine.
                "repro/sim/pool.py": """
                    def fan_out(pool, work):
                        return pool.submit(work, 1234)
                """,
            },
            select=["RPR012"],
        )
        assert findings == []

    def test_spawned_children_negative(self, tmp_path):
        """SeedSequence(literal) once + spawned children: the sanctioned
        idiom must not trip the duplicate detector."""
        findings = _run(
            tmp_path,
            {
                "repro/sim/spawn.py": """
                    import numpy as np

                    def shards(n):
                        root = np.random.SeedSequence(2024)
                        return [
                            np.random.default_rng(child)
                            for child in root.spawn(n)
                        ]
                """,
            },
            select=["RPR012"],
        )
        assert findings == []

    def test_shipped_tree_zero(self):
        findings, _scanned, _model = analyze_paths(
            [PKG_ROOT], select=["RPR012"]
        )
        assert _active(findings) == [], "\n".join(
            f.render() for f in _active(findings)
        )


# ----------------------------------------------------------------------
# RPR013 pubsub-flow
# ----------------------------------------------------------------------

_TOPICS = """
    TOPIC_ALPHA = "fixture/alpha"
    TOPIC_BETA = "fixture/beta"
    TOPIC_SPARE = "fixture/spare"
"""


class TestRPR013PubsubFlow:
    def test_publish_without_subscriber_fires(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/network/topics.py": _TOPICS,
                "repro/middleware/pub.py": """
                    from repro.network.topics import TOPIC_ALPHA

                    def emit(bus, msg):
                        bus.publish(TOPIC_ALPHA, msg)
                """,
            },
            select=["RPR013"],
        )
        active = _active(findings)
        assert [f.rule for f in active] == ["RPR013"]
        assert "TOPIC_ALPHA" in active[0].message
        assert active[0].path.endswith("pub.py")

    def test_subscribe_without_publisher_fires(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/network/topics.py": _TOPICS,
                "repro/middleware/sub.py": """
                    from repro.network.topics import TOPIC_BETA

                    def listen(bus, addr):
                        bus.subscribe(addr, TOPIC_BETA)
                """,
            },
            select=["RPR013"],
        )
        active = _active(findings)
        assert [f.rule for f in active] == ["RPR013"]
        assert "TOPIC_BETA" in active[0].message

    def test_matched_pair_and_unused_topic_negative(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/network/topics.py": _TOPICS,
                # Publisher and subscriber in *different* files; the
                # subscriber resolves the constant through a package
                # re-export.  TOPIC_SPARE is used by nobody: reserving
                # a constant is not a violation.
                "repro/network/__init__.py": """
                    from .topics import TOPIC_ALPHA
                """,
                "repro/middleware/pub.py": """
                    from repro.network.topics import TOPIC_ALPHA

                    def emit(bus, msg):
                        bus.publish(TOPIC_ALPHA, msg)
                """,
                "repro/middleware/sub.py": """
                    from repro.network import TOPIC_ALPHA

                    def listen(bus, addr):
                        bus.subscribe(addr, TOPIC_ALPHA)
                """,
            },
            select=["RPR013"],
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/network/topics.py": _TOPICS,
                "repro/middleware/pub.py": """
                    from repro.network.topics import TOPIC_ALPHA

                    def emit(bus, msg):
                        bus.publish(TOPIC_ALPHA, msg)  # reprolint: allow[pubsub-flow]
                """,
            },
            select=["RPR013"],
        )
        assert _active(findings) == []
        assert [f.suppressed for f in findings] == [True]

    def test_shipped_tree_zero(self):
        findings, _scanned, _model = analyze_paths(
            [PKG_ROOT], select=["RPR013"]
        )
        assert _active(findings) == [], "\n".join(
            f.render() for f in _active(findings)
        )


# ----------------------------------------------------------------------
# The four planted violations from the acceptance criteria — each must
# produce exactly one finding against a realistic mini-tree.
# ----------------------------------------------------------------------


class TestPlantedViolations:
    def test_planted_sleep_in_gateway_coroutine(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/gateway/server.py": """
                    import time

                    async def _serve_device(reader, writer):
                        time.sleep(0.05)
                        return reader, writer
                """,
            },
            select=["RPR010"],
        )
        assert len(_active(findings)) == 1

    def test_planted_deep_impure_call_in_solve_phase(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/middleware/broker.py": """
                    from repro.core.stats import tally

                    class Broker:
                        def solve_round(self, pending):
                            tally(pending)
                            return pending
                """,
                "repro/core/stats.py": """
                    _COUNTS = {}

                    def tally(x):
                        _COUNTS[type(x).__name__] = 1
                """,
            },
            select=["RPR011"],
        )
        assert len(_active(findings)) == 1

    def test_planted_duplicate_seed(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/sim/seeds.py": """
                    import numpy as np

                    def streams():
                        truth = np.random.default_rng(42)
                        noise = np.random.default_rng(42)
                        return truth, noise
                """,
            },
            select=["RPR012"],
        )
        assert len(_active(findings)) == 1

    def test_planted_subscriberless_topic(self, tmp_path):
        findings = _run(
            tmp_path,
            {
                "repro/network/topics.py": """
                    TOPIC_ORPHAN = "fixture/orphan"
                """,
                "repro/middleware/pub.py": """
                    from repro.network.topics import TOPIC_ORPHAN

                    def emit(bus, msg):
                        bus.publish(TOPIC_ORPHAN, msg)
                """,
            },
            select=["RPR013"],
        )
        assert len(_active(findings)) == 1


# ----------------------------------------------------------------------
# Whole-tree gates
# ----------------------------------------------------------------------


class TestShippedTreeGates:
    def test_zero_unsuppressed_findings_all_rules(self):
        """PR 10's acceptance gate: the full pass (per-file + whole-
        program) is clean on the shipped package."""
        findings, scanned, _model = analyze_paths([PKG_ROOT])
        active = _active(findings)
        assert scanned > 50
        assert active == [], "\n".join(f.render() for f in active)

    def test_whole_program_pass_stays_under_time_budget(self):
        """The call-graph layer must not quietly make lint 10x slower.

        The budget is deliberately generous (shared CI runners): the
        full pass takes ~4s locally; 60s means an order-of-magnitude
        regression still fails loudly.
        """
        start = time.perf_counter()
        analyze_paths([PKG_ROOT])
        elapsed = time.perf_counter() - start
        assert elapsed < 60.0, f"full reprolint pass took {elapsed:.1f}s"

    def test_model_reuse_caches_parses(self):
        findings, _scanned, model = analyze_paths([PKG_ROOT])
        assert model.files_parsed > 50
        again, _scanned2, model2 = analyze_paths([PKG_ROOT], model=model)
        assert model2 is model
        assert model.files_cached > 50
        assert model.files_parsed == 0
        assert [f.render() for f in again] == [
            f.render() for f in findings
        ]
