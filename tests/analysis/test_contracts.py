"""Runtime-sanitizer tests (repro.analysis.contracts).

Covers the acceptance scenarios: an injected NaN is caught at the
solver boundary with a useful error, an attempted mutation of a
registry-shared basis raises, and thread-ownership asserts trip when a
driver transition runs off its owning thread.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis import contracts
from repro.core.basis import dct_basis
from repro.core.reconstruction import reconstruct
from repro.core.registry import clear_registry, shared_basis
from repro.core.robust import robust_reconstruct


@pytest.fixture
def sanitize():
    """Arm the sanitizer for one test, restoring the prior state after.

    Guards are reset on entry as well: under ``REPRO_SANITIZE=1`` the
    registry tests above guard arrays without using this fixture.
    """
    prior = contracts.enabled()
    contracts.reset_guards()
    clear_registry()
    contracts.enable(True)
    yield
    contracts.enable(prior)
    contracts.reset_guards()
    clear_registry()


class TestValueContracts:
    def test_check_finite_passes_clean(self, sanitize):
        contracts.check_finite("x", np.arange(4, dtype=float))

    def test_check_finite_names_offender_and_index(self, sanitize):
        bad = np.array([0.0, 1.0, np.nan, np.inf])
        with pytest.raises(contracts.ContractViolation) as err:
            contracts.check_finite("measurements", bad, context="reconstruct")
        message = str(err.value)
        assert "measurements" in message
        assert "reconstruct" in message
        assert "2 non-finite" in message
        assert "flat index 2" in message

    def test_check_finite_ignores_integer_arrays(self, sanitize):
        contracts.check_finite("locations", np.arange(5))

    def test_check_vector_shape_mismatch(self, sanitize):
        with pytest.raises(contracts.ContractViolation, match="shape"):
            contracts.check_vector("x_hat", np.zeros((2, 2)), 4)

    def test_check_shape_wildcards(self, sanitize):
        contracts.check_shape("rows", np.zeros((3, 7)), (3, None))
        with pytest.raises(contracts.ContractViolation):
            contracts.check_shape("rows", np.zeros((3, 7)), (4, None))

    def test_contract_violation_is_assertion_error(self):
        assert issubclass(contracts.ContractViolation, AssertionError)


class TestSolverBoundary:
    def test_nan_measurement_caught_at_reconstruct(self, sanitize):
        phi = dct_basis(32)
        values = np.ones(8)
        values[3] = np.nan
        locations = np.arange(8)
        with pytest.raises(contracts.ContractViolation) as err:
            reconstruct(values, locations, phi, solver="chs")
        assert "measurements" in str(err.value)

    def test_nan_caught_at_robust_reconstruct(self, sanitize):
        def fit(values, locations, covariance):  # pragma: no cover
            raise AssertionError("must fail before any fit")

        values = np.ones(12)
        values[0] = np.inf
        with pytest.raises(contracts.ContractViolation, match="values"):
            robust_reconstruct(fit, values, np.arange(12))

    def test_covariance_shape_checked(self, sanitize):
        phi = dct_basis(16)
        with pytest.raises(contracts.ContractViolation, match="covariance"):
            reconstruct(
                np.ones(4),
                np.arange(4),
                phi,
                solver="ols",
                covariance=np.eye(5),
            )

    def test_clean_solve_unaffected(self, sanitize):
        phi = dct_basis(32)
        rng = np.random.default_rng(7)
        alpha = np.zeros(32)
        alpha[[0, 3]] = [2.0, -1.0]
        x = phi @ alpha
        loc = np.sort(rng.choice(32, size=16, replace=False))
        result = reconstruct(x[loc], loc, phi, solver="chs")
        assert np.allclose(result.x_hat, x, atol=1e-6)

    def test_disabled_sanitizer_lets_nan_through_boundary(self):
        prior = contracts.enabled()
        contracts.enable(False)
        try:
            phi = dct_basis(16)
            values = np.ones(6)
            values[2] = np.nan
            # No ContractViolation: the check is off.  (The solver
            # output is garbage — that is exactly the failure mode the
            # sanitizer exists to catch early.)
            result = reconstruct(values, np.arange(6), phi, solver="ols")
            assert result.x_hat.shape == (16,)
        finally:
            contracts.enable(prior)


class TestSharedArrayGuard:
    def test_registry_array_is_read_only(self):
        clear_registry()
        phi = shared_basis("dct", 32)
        assert not phi.flags.writeable
        with pytest.raises(ValueError):
            phi[0, 0] = 123.0

    def test_guarded_view_cannot_be_made_writeable(self):
        clear_registry()
        phi = shared_basis("dct", 32)
        with pytest.raises(ValueError):
            phi.setflags(write=True)

    def test_mutation_behind_guard_detected(self, sanitize):
        owner = np.arange(6, dtype=float)
        view = contracts.guard_shared_array(owner)
        assert contracts.guarded_array_count() == 1
        assert contracts.verify_shared_arrays() == 1
        # Bypass the write flag the way a buggy extension (or a saved
        # pre-freeze buffer reference) could.
        owner.flags.writeable = True
        owner[0] = 999.0
        with pytest.raises(contracts.ContractViolation, match="mutated"):
            contracts.verify_shared_arrays()
        assert view[0] == 999.0  # same memory: corruption is shared

    def test_reset_guards(self, sanitize):
        contracts.guard_shared_array(np.ones(3))
        contracts.reset_guards()
        assert contracts.guarded_array_count() == 0
        assert contracts.verify_shared_arrays() == 0


class TestThreadOwnership:
    def test_same_thread_passes(self, sanitize):
        contracts.assert_thread(threading.get_ident(), "driver")

    def test_foreign_thread_raises(self, sanitize):
        owner = threading.get_ident()
        caught: list[BaseException] = []

        def worker():
            try:
                contracts.assert_thread(owner, "ZoneRoundDriver._finish")
            except BaseException as exc:  # noqa: BLE001
                caught.append(exc)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert len(caught) == 1
        assert isinstance(caught[0], contracts.ContractViolation)
        assert "ZoneRoundDriver._finish" in str(caught[0])

    def test_noop_when_disabled(self):
        prior = contracts.enabled()
        contracts.enable(False)
        try:
            contracts.assert_thread(-1, "driver")  # wrong owner, no raise
        finally:
            contracts.enable(prior)
