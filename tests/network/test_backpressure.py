"""Bounded-inbox backpressure: drop policies and loss accounting.

The overload tentpole's transport layer: endpoints may carry a capacity
bound, overflow is shed by a configurable drop policy, and every shed
message is charged to the distinct ``backpressure`` loss reason so queue
overflow and injected channel faults can never be conflated.
"""

import pytest

from repro.network.bus import BACKPRESSURE_REASON, DROP_POLICIES, MessageBus
from repro.network.faults import FaultInjector, GilbertElliottLoss
from repro.network.message import Message, MessageKind


def _msg(src, dst, kind=MessageKind.SENSE_REPORT, tag=None):
    return Message(
        kind=kind,
        source=src,
        destination=dst,
        payload={"tag": tag} if tag is not None else {},
    )


def _tags(endpoint):
    return [m.payload.get("tag") for m in endpoint.inbox]


class TestBoundedInbox:
    def test_default_is_unbounded(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        for i in range(500):
            bus.send(_msg("a", "b", tag=i))
        assert bus.endpoint("b").pending() == 500
        assert bus.messages_lost == 0
        assert bus.losses_by_reason[BACKPRESSURE_REASON] == 0

    def test_drop_newest_refuses_arrivals(self):
        bus = MessageBus(inbox_capacity=3, drop_policy="drop-newest")
        bus.register("a")
        bus.register("b")
        for i in range(5):
            bus.send(_msg("a", "b", tag=i))
        endpoint = bus.endpoint("b")
        assert _tags(endpoint) == [0, 1, 2]
        assert endpoint.dropped_backpressure == 2
        assert bus.losses_by_reason[BACKPRESSURE_REASON] == 2
        assert bus.messages_lost == 2

    def test_drop_oldest_evicts_head(self):
        bus = MessageBus(inbox_capacity=3, drop_policy="drop-oldest")
        bus.register("a")
        bus.register("b")
        for i in range(5):
            bus.send(_msg("a", "b", tag=i))
        assert _tags(bus.endpoint("b")) == [2, 3, 4]
        assert bus.losses_by_reason[BACKPRESSURE_REASON] == 2

    def test_priority_command_outlives_bulk_reports(self):
        bus = MessageBus(inbox_capacity=3, drop_policy="priority")
        bus.register("a")
        bus.register("b")
        for i in range(3):
            bus.send(_msg("a", "b", tag=i))
        bus.send(_msg("a", "b", kind=MessageKind.SENSE_COMMAND, tag="cmd"))
        endpoint = bus.endpoint("b")
        kinds = [m.kind for m in endpoint.inbox]
        assert MessageKind.SENSE_COMMAND in kinds
        # The newest bulk report was the one evicted.
        assert _tags(endpoint) == [0, 1, "cmd"]
        assert endpoint.dropped_backpressure == 1

    def test_priority_refuses_arrival_that_does_not_outrank(self):
        bus = MessageBus(inbox_capacity=2, drop_policy="priority")
        bus.register("a")
        bus.register("b")
        for i in range(2):
            bus.send(_msg("a", "b", kind=MessageKind.SENSE_COMMAND, tag=i))
        bus.send(_msg("a", "b", kind=MessageKind.CONTEXT_SHARE, tag="ctx"))
        endpoint = bus.endpoint("b")
        assert _tags(endpoint) == [0, 1]  # commands untouched
        assert endpoint.dropped_backpressure == 1

    def test_inbox_peak_high_water_mark(self):
        bus = MessageBus(inbox_capacity=4)
        bus.register("a")
        bus.register("b")
        for i in range(10):
            bus.send(_msg("a", "b", tag=i))
        endpoint = bus.endpoint("b")
        assert endpoint.inbox_peak == 4
        endpoint.drain()
        assert endpoint.inbox_peak == 4  # peak survives the drain

    def test_conservation_with_bound(self):
        bus = MessageBus(inbox_capacity=7)
        bus.register("a")
        bus.register("b")
        for i in range(30):
            bus.send(_msg("a", "b", tag=i))
        assert bus.endpoint("b").pending() + bus.messages_lost == 30
        assert bus.stats.messages == 30  # every send fully metered

    def test_backpressure_does_not_rebill_radio(self):
        unbounded = MessageBus()
        unbounded.register("a")
        unbounded.register("b")
        bounded = MessageBus(inbox_capacity=1)
        bounded.register("a")
        bounded.register("b")
        for i in range(10):
            unbounded.send(_msg("a", "b", tag=i))
            bounded.send(_msg("a", "b", tag=i))
        # The shed deliveries were already metered once; shedding them
        # must not change bytes or energy relative to the unbounded run.
        assert bounded.stats.bytes == unbounded.stats.bytes
        assert (
            bounded.stats.transmit_energy_mj
            == unbounded.stats.transmit_energy_mj
        )

    def test_per_endpoint_override(self):
        bus = MessageBus(inbox_capacity=2)
        bus.register("a")
        bus.register("roomy", inbox_capacity=100)
        bus.register("b")
        for i in range(5):
            bus.send(_msg("a", "roomy", tag=i))
            bus.send(_msg("a", "b", tag=i))
        assert bus.endpoint("roomy").pending() == 5
        assert bus.endpoint("b").pending() == 2

    def test_requeue_respects_bound(self):
        bus = MessageBus(inbox_capacity=2)
        bus.register("a")
        bus.register("b")
        for i in range(2):
            bus.send(_msg("a", "b", tag=i))
        drained = bus.endpoint("b").drain()
        extra = _msg("a", "b", tag="late")
        bus.send(extra)
        bus.send(_msg("a", "b", tag="later"))
        # Re-enqueueing the drained traffic on a now-full queue sheds.
        assert not bus.requeue(drained[0])
        assert bus.losses_by_reason[BACKPRESSURE_REASON] == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MessageBus(inbox_capacity=0)
        with pytest.raises(ValueError):
            MessageBus(drop_policy="drop-sideways")
        assert "priority" in DROP_POLICIES


class TestDropAccountingSplit:
    """Satellite: injected faults and backpressure keep distinct books."""

    def test_loss_injection_and_full_inbox_count_separately(self):
        bus = MessageBus(loss_rate=0.4, seed=7, inbox_capacity=5)
        bus.register("a")
        bus.register("b")
        sent = 60
        for i in range(sent):
            bus.send(_msg("a", "b", tag=i))
        iid = bus.losses_by_reason["iid-loss"]
        backpressure = bus.losses_by_reason[BACKPRESSURE_REASON]
        assert iid > 0
        assert backpressure > 0
        # Every channel survivor either sits in the queue or was shed.
        assert bus.endpoint("b").pending() + backpressure == sent - iid
        # The two reasons partition the total; no double counting.
        assert iid + backpressure == bus.messages_lost

    def test_fault_injector_reason_distinct_from_backpressure(self):
        injector = FaultInjector(
            GilbertElliottLoss(
                p_enter_bad=0.3, p_exit_bad=0.3, loss_bad=0.9, seed=3
            )
        )
        bus = MessageBus(fault_injector=injector, inbox_capacity=3)
        bus.register("a")
        bus.register("b")
        for i in range(40):
            bus.send(_msg("a", "b", tag=i))
        reasons = set(bus.losses_by_reason)
        assert BACKPRESSURE_REASON in reasons
        assert bus.losses_by_reason[BACKPRESSURE_REASON] > 0
        # Whatever the injector charged, it never used our reason.
        injected = bus.messages_lost - bus.losses_by_reason[
            BACKPRESSURE_REASON
        ]
        assert injected == sum(
            count
            for reason, count in bus.losses_by_reason.items()
            if reason != BACKPRESSURE_REASON
        )

    def test_channel_loss_does_not_touch_backpressure_counter(self):
        bus = MessageBus(loss_rate=0.5, seed=11)
        bus.register("a")
        bus.register("b")
        for i in range(50):
            bus.send(_msg("a", "b", tag=i))
        assert bus.messages_lost > 0
        assert bus.losses_by_reason[BACKPRESSURE_REASON] == 0
        assert bus.endpoint("b").dropped_backpressure == 0
