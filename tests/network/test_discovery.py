"""Tests for service discovery."""

import pytest

from repro.network.discovery import DiscoveryRegistry, ServiceAnnouncement


def _offer(address, service="sensor:temperature", quality=1.0, expires=float("inf")):
    return ServiceAnnouncement(
        address=address, service=service, quality=quality, expires_at=expires
    )


class TestAnnouncement:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceAnnouncement(address="", service="x")
        with pytest.raises(ValueError):
            ServiceAnnouncement(address="a", service="")
        with pytest.raises(ValueError):
            ServiceAnnouncement(address="a", service="x", quality=-1.0)


class TestRegistry:
    def test_announce_and_lookup(self):
        reg = DiscoveryRegistry()
        reg.announce(_offer("n1"))
        reg.announce(_offer("n2", quality=2.0))
        offers = reg.lookup("sensor:temperature")
        assert [o.address for o in offers] == ["n2", "n1"]  # quality order

    def test_reannounce_replaces(self):
        reg = DiscoveryRegistry()
        reg.announce(_offer("n1", quality=1.0))
        reg.announce(_offer("n1", quality=5.0))
        offers = reg.lookup("sensor:temperature")
        assert len(offers) == 1
        assert offers[0].quality == 5.0

    def test_min_quality_filter(self):
        reg = DiscoveryRegistry()
        reg.announce(_offer("cheap", quality=0.2))
        reg.announce(_offer("good", quality=2.0))
        offers = reg.lookup("sensor:temperature", min_quality=1.0)
        assert [o.address for o in offers] == ["good"]

    def test_expiry_respected_in_lookup(self):
        reg = DiscoveryRegistry()
        reg.announce(_offer("n1", expires=10.0))
        assert len(reg.lookup("sensor:temperature", now=5.0)) == 1
        assert len(reg.lookup("sensor:temperature", now=10.0)) == 0

    def test_withdraw_one_service(self):
        reg = DiscoveryRegistry()
        reg.announce(_offer("n1", service="sensor:temperature"))
        reg.announce(_offer("n1", service="sensor:humidity"))
        reg.withdraw("n1", "sensor:temperature")
        assert reg.lookup("sensor:temperature") == []
        assert len(reg.lookup("sensor:humidity")) == 1

    def test_withdraw_all(self):
        reg = DiscoveryRegistry()
        reg.announce(_offer("n1", service="a"))
        reg.announce(_offer("n1", service="b"))
        reg.withdraw("n1")
        assert reg.services() == []

    def test_services_listing(self):
        reg = DiscoveryRegistry()
        reg.announce(_offer("n1", service="sensor:temperature"))
        reg.announce(_offer("n2", service="compute:fft"))
        assert reg.services() == ["compute:fft", "sensor:temperature"]

    def test_prune(self):
        reg = DiscoveryRegistry()
        reg.announce(_offer("n1", expires=5.0))
        reg.announce(_offer("n2", expires=50.0))
        removed = reg.prune(now=10.0)
        assert removed == 1
        assert [o.address for o in reg.lookup("sensor:temperature", now=10.0)] == ["n2"]
