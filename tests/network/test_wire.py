"""Wire codec tests: length-prefixed JSON frames for socket transports.

The codec (:mod:`repro.network.frames`) carries :class:`Message` objects
— numpy arrays and :class:`ZoneReportFrame` payloads included — across
real TCP streams via ``encode_wire`` / :class:`WireDecoder`.
"""

import struct

import numpy as np
import pytest

from repro.network.frames import (
    MAX_WIRE_FRAME_BYTES,
    WireDecoder,
    ZoneReportFrame,
    decode_wire_body,
    encode_wire,
)
from repro.network.message import Message, MessageKind


def _msg(payload, *, kind=MessageKind.SENSE_REPORT, payload_values=3):
    return Message(
        kind=kind,
        source="nc0/node1",
        destination="nc0/broker",
        payload=payload,
        payload_values=payload_values,
        timestamp=12.5,
    )


def _round_trip(message):
    frame = encode_wire(message)
    (decoded,) = WireDecoder().feed(frame)
    return decoded


class TestRoundTrip:
    def test_scalar_payload(self):
        message = _msg({"value": 21.5, "noise_std": 0.5, "ok": True,
                        "grid_index": 7, "name": "temperature",
                        "missing": None})
        decoded = _round_trip(message)
        assert decoded.kind is message.kind
        assert decoded.source == message.source
        assert decoded.destination == message.destination
        assert decoded.timestamp == message.timestamp
        assert decoded.payload_values == message.payload_values
        assert decoded.payload == message.payload
        assert decoded.payload["ok"] is True

    def test_fresh_message_id_on_decode(self):
        message = _msg({"v": 1})
        decoded = _round_trip(message)
        assert decoded.message_id != message.message_id

    def test_ndarray_payload_bit_exact_and_readonly(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4) * np.pi
        decoded = _round_trip(_msg({"grid": arr}))
        out = decoded.payload["grid"]
        assert out.dtype == arr.dtype
        assert np.array_equal(out, arr)
        assert not out.flags.writeable

    def test_nested_structures(self):
        payload = {
            "rows": [np.array([1, 2, 3], dtype=np.int32), "x", 4],
            "meta": {"inner": {"arr": np.zeros(2)}},
        }
        decoded = _round_trip(_msg(payload))
        assert np.array_equal(
            decoded.payload["rows"][0], np.array([1, 2, 3])
        )
        assert decoded.payload["rows"][1:] == ["x", 4]
        assert np.array_equal(
            decoded.payload["meta"]["inner"]["arr"], np.zeros(2)
        )

    def test_numpy_scalars_lowered(self):
        decoded = _round_trip(
            _msg({"f": np.float64(1.5), "i": np.int64(3),
                  "b": np.bool_(True)})
        )
        assert decoded.payload == {"f": 1.5, "i": 3, "b": True}
        assert type(decoded.payload["i"]) is int
        assert type(decoded.payload["b"]) is bool

    def test_zone_report_frame_payload(self):
        frame = ZoneReportFrame(
            zone_id=2,
            round_index=9,
            node_ids=np.array([4, 7, 11], dtype=np.int64),
            values=np.array([20.5, 21.0, 19.75]),
            noise_stds=np.array([0.5, 0.5, 0.25]),
        )
        decoded = _round_trip(
            _msg({"frame": frame}, kind=MessageKind.AGGREGATE)
        )
        out = decoded.payload["frame"]
        assert isinstance(out, ZoneReportFrame)
        assert out.zone_id == 2 and out.round_index == 9
        assert np.array_equal(out.node_ids, frame.node_ids)
        assert np.array_equal(out.values, frame.values)
        assert np.array_equal(out.noise_stds, frame.noise_stds)
        assert not out.values.flags.writeable


class TestWireDecoder:
    def test_byte_at_a_time_feed(self):
        message = _msg({"grid": np.arange(6.0)})
        frame = encode_wire(message)
        decoder = WireDecoder()
        out = []
        for i in range(len(frame)):
            out.extend(decoder.feed(frame[i : i + 1]))
        assert len(out) == 1
        assert np.array_equal(out[0].payload["grid"], np.arange(6.0))
        assert decoder.buffered == 0

    def test_multiple_frames_in_one_feed(self):
        frames = b"".join(
            encode_wire(_msg({"i": i})) for i in range(5)
        )
        decoded = WireDecoder().feed(frames)
        assert [m.payload["i"] for m in decoded] == list(range(5))

    def test_partial_frame_stays_buffered(self):
        frame = encode_wire(_msg({"i": 1}))
        decoder = WireDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.buffered == len(frame) - 1
        (message,) = decoder.feed(frame[-1:])
        assert message.payload == {"i": 1}

    def test_oversized_header_rejected(self):
        decoder = WireDecoder()
        bogus = struct.pack(">I", MAX_WIRE_FRAME_BYTES + 1)
        with pytest.raises(ValueError, match="exceeds"):
            decoder.feed(bogus)

    def test_decode_wire_body_defaults(self):
        body = (
            b'{"kind":"sense_command","source":"a","destination":"b"}'
        )
        message = decode_wire_body(body)
        assert message.kind is MessageKind.SENSE_COMMAND
        assert message.payload == {}
        assert message.payload_values == 1
        assert message.timestamp == 0.0
