"""Tests for radio link models."""

import pytest

from repro.network.links import BLUETOOTH, GSM, LINKS_BY_NAME, LTE, WIFI, LinkModel
from repro.network.message import Message, MessageKind


def _msg(values):
    return Message(
        kind=MessageKind.SENSE_REPORT,
        source="a",
        destination="b",
        payload_values=values,
    )


class TestLinkModel:
    def test_latency_monotone_in_size(self):
        small = WIFI.transfer_latency_s(_msg(1))
        large = WIFI.transfer_latency_s(_msg(1000))
        assert large > small

    def test_energy_monotone_in_size(self):
        small = WIFI.transfer_energy_mj(_msg(1))
        large = WIFI.transfer_energy_mj(_msg(1000))
        assert large > small

    def test_receive_cheaper_than_transmit(self):
        msg = _msg(10)
        for link in (WIFI, BLUETOOTH, GSM, LTE):
            assert link.receive_energy_mj(msg) < link.transfer_energy_mj(msg)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel("x", 0, 0.1, 1.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            LinkModel("x", 1e6, -0.1, 1.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            LinkModel("x", 1e6, 0.1, -1.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            LinkModel("x", 1e6, 0.1, 1.0, 1.0, 0.0)


class TestCalibration:
    def test_cellular_wake_costs_more_than_wifi(self):
        """The key ratio for collaboration: cellular per-message energy
        dwarfs local WiFi/BT."""
        msg = _msg(2)
        assert GSM.transfer_energy_mj(msg) > 10 * WIFI.transfer_energy_mj(msg)
        assert LTE.transfer_energy_mj(msg) > WIFI.transfer_energy_mj(msg)

    def test_bluetooth_cheapest_per_message(self):
        msg = _msg(2)
        assert BLUETOOTH.transfer_energy_mj(msg) < WIFI.transfer_energy_mj(msg)

    def test_ranges_ordered(self):
        assert BLUETOOTH.range_m < WIFI.range_m < LTE.range_m <= GSM.range_m

    def test_registry(self):
        assert set(LINKS_BY_NAME) == {"wifi", "bluetooth", "gsm", "lte"}
        assert LINKS_BY_NAME["wifi"] is WIFI
