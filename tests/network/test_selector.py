"""Tests for multi-network interface selection."""

import pytest

from repro.network.links import BLUETOOTH, GSM, LTE, WIFI
from repro.network.message import Message, MessageKind
from repro.network.selector import NetworkSelector, SelectionPolicy


def _msg(values=4):
    return Message(
        kind=MessageKind.SENSE_REPORT,
        source="n",
        destination="b",
        payload_values=values,
    )


class TestPolicy:
    def test_battery_aware_shifts_toward_energy(self):
        policy = SelectionPolicy(energy_weight=0.3, battery_aware=True)
        assert policy.effective_energy_weight(1.0) == pytest.approx(0.3)
        assert policy.effective_energy_weight(0.0) == pytest.approx(1.0)
        mid = policy.effective_energy_weight(0.5)
        assert 0.3 < mid < 1.0

    def test_not_battery_aware(self):
        policy = SelectionPolicy(energy_weight=0.3, battery_aware=False)
        assert policy.effective_energy_weight(0.1) == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectionPolicy(energy_weight=1.5)
        with pytest.raises(ValueError):
            SelectionPolicy().effective_energy_weight(2.0)


class TestSelection:
    def test_energy_policy_prefers_bluetooth_in_range(self):
        selector = NetworkSelector(
            SelectionPolicy(energy_weight=1.0, battery_aware=False)
        )
        result = selector.select(
            _msg(), [WIFI, BLUETOOTH, GSM], distance_m=10.0
        )
        assert result.link is BLUETOOTH

    def test_range_filters_bluetooth_out(self):
        selector = NetworkSelector(
            SelectionPolicy(energy_weight=1.0, battery_aware=False)
        )
        result = selector.select(
            _msg(), [WIFI, BLUETOOTH], distance_m=60.0
        )
        assert result.link is WIFI

    def test_latency_policy_prefers_wifi_over_gsm(self):
        selector = NetworkSelector(
            SelectionPolicy(energy_weight=0.0, battery_aware=False)
        )
        result = selector.select(_msg(), [WIFI, GSM], distance_m=50.0)
        assert result.link is WIFI

    def test_long_range_forces_cellular(self):
        selector = NetworkSelector()
        result = selector.select(
            _msg(), [WIFI, BLUETOOTH, LTE, GSM], distance_m=1500.0
        )
        assert result.link in (LTE, GSM)

    def test_draining_battery_switches_to_cheaper_radio(self):
        """At full battery a latency-leaning node picks LTE for a distant
        peer; nearly empty, the same node accepts GSM's latency for its
        lower... no — GSM is pricier. Check the WiFi/LTE pair instead."""
        selector = NetworkSelector(
            SelectionPolicy(energy_weight=0.1, battery_aware=True)
        )
        # Within WiFi range both WiFi and LTE are candidates; WiFi is
        # cheaper AND faster here, so use BT-vs-WiFi to create tension:
        # BT cheaper but slower.
        full = selector.select(
            _msg(values=400), [WIFI, BLUETOOTH], battery_level=1.0,
            distance_m=10.0,
        )
        empty = selector.select(
            _msg(values=400), [WIFI, BLUETOOTH], battery_level=0.05,
            distance_m=10.0,
        )
        assert full.link is WIFI  # latency-leaning at full charge
        assert empty.link is BLUETOOTH  # energy dominates when draining

    def test_no_link_available(self):
        with pytest.raises(ValueError):
            NetworkSelector().select(_msg(), [])

    def test_no_link_in_range(self):
        with pytest.raises(ValueError, match="covers"):
            NetworkSelector().select(
                _msg(), [BLUETOOTH], distance_m=100.0
            )

    def test_result_costs_match_link_model(self):
        selector = NetworkSelector()
        message = _msg()
        result = selector.select(message, [WIFI], distance_m=1.0)
        assert result.energy_mj == pytest.approx(
            WIFI.transfer_energy_mj(message)
        )
        assert result.latency_s == pytest.approx(
            WIFI.transfer_latency_s(message)
        )
