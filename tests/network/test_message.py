"""Tests for protocol messages."""

import pytest

from repro.network.message import HEADER_BYTES, VALUE_BYTES, Message, MessageKind


class TestMessage:
    def test_size_accounting(self):
        msg = Message(
            kind=MessageKind.SENSE_REPORT,
            source="node1",
            destination="broker",
            payload_values=5,
        )
        assert msg.size_bytes == HEADER_BYTES + 5 * VALUE_BYTES

    def test_ids_are_unique(self):
        a = Message(MessageKind.QUERY, "a", "b")
        b = Message(MessageKind.QUERY, "a", "b")
        assert a.message_id != b.message_id

    def test_reply_swaps_endpoints(self):
        cmd = Message(
            MessageKind.SENSE_COMMAND, "broker", "node1", timestamp=3.0
        )
        rep = cmd.reply(MessageKind.SENSE_REPORT, {"v": 1.0}, 2)
        assert rep.source == "node1"
        assert rep.destination == "broker"
        assert rep.timestamp == 3.0
        assert rep.payload_values == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Message(MessageKind.QUERY, "", "b")
        with pytest.raises(ValueError):
            Message(MessageKind.QUERY, "a", "")
        with pytest.raises(ValueError):
            Message(MessageKind.QUERY, "a", "b", payload_values=-1)

    def test_kinds_cover_protocol(self):
        names = {k.name for k in MessageKind}
        assert {
            "SENSE_COMMAND",
            "SENSE_REPORT",
            "AGGREGATE",
            "DISSEMINATE",
            "QUERY",
            "QUERY_RESULT",
            "DISCOVERY",
            "CONTEXT_SHARE",
        } <= names
