"""Unit tests for the composable fault-injection substrate."""

import pytest

from repro.network.bus import MessageBus
from repro.network.faults import (
    CrashSchedule,
    DegradationWindow,
    FaultInjector,
    GilbertElliottLoss,
    IIDLoss,
    Partition,
)
from repro.network.message import Message, MessageKind


def _msg(src="a", dst="b", t=0.0):
    return Message(
        kind=MessageKind.SENSE_REPORT,
        source=src,
        destination=dst,
        timestamp=t,
    )


def _bus_with(*faults, clock=None):
    bus = MessageBus(fault_injector=FaultInjector(*faults, clock=clock))
    bus.register("a")
    bus.register("b")
    bus.register("c")
    return bus


class TestIIDLoss:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            IIDLoss(rate=1.0)
        with pytest.raises(ValueError):
            IIDLoss(rate=-0.1)

    def test_drops_at_roughly_the_rate(self):
        bus = _bus_with(IIDLoss(rate=0.5, seed=1))
        for _ in range(200):
            bus.send(_msg())
        assert 50 < bus.messages_lost < 150
        assert bus.losses_by_reason["iid-loss"] == bus.messages_lost

    def test_zero_rate_never_drops(self):
        bus = _bus_with(IIDLoss(rate=0.0, seed=1))
        for _ in range(50):
            bus.send(_msg())
        assert bus.messages_lost == 0


class TestGilbertElliott:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_enter_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliottLoss(loss_bad=-0.2)

    def test_never_leaves_good_state_without_transitions(self):
        fault = GilbertElliottLoss(
            p_enter_bad=0.0, p_exit_bad=0.0, loss_good=0.0, loss_bad=1.0,
            seed=1,
        )
        bus = _bus_with(fault)
        for _ in range(100):
            bus.send(_msg())
        assert bus.messages_lost == 0
        assert fault.state == "good"

    def test_absorbs_into_bad_state(self):
        # Guaranteed transition to bad on the first evaluation, no exit:
        # every delivery from then on is lost.
        fault = GilbertElliottLoss(
            p_enter_bad=1.0, p_exit_bad=0.0, loss_good=0.0, loss_bad=1.0,
            seed=1,
        )
        bus = _bus_with(fault)
        for _ in range(20):
            bus.send(_msg())
        assert bus.messages_lost == 20
        assert fault.state == "bad"

    def test_losses_are_bursty(self):
        # Compare mean loss-run length against an i.i.d. channel of the
        # same average rate: bursts should make runs markedly longer.
        def run_lengths(outcomes):
            lengths, current = [], 0
            for lost in outcomes:
                if lost:
                    current += 1
                elif current:
                    lengths.append(current)
                    current = 0
            if current:
                lengths.append(current)
            return lengths

        ge = GilbertElliottLoss(
            p_enter_bad=0.05, p_exit_bad=0.15, loss_good=0.0, loss_bad=0.8,
            seed=7,
        )
        iid = IIDLoss(rate=ge.stationary_loss_rate, seed=7)
        n = 4000
        ge_outcomes = [ge.evaluate(_msg(), 0.0)[0] for _ in range(n)]
        iid_outcomes = [iid.evaluate(_msg(), 0.0)[0] for _ in range(n)]
        ge_runs = run_lengths(ge_outcomes)
        iid_runs = run_lengths(iid_outcomes)
        assert sum(ge_runs) / len(ge_runs) > 1.5 * (
            sum(iid_runs) / len(iid_runs)
        )

    def test_stationary_rate_matches_empirical(self):
        ge = GilbertElliottLoss(
            p_enter_bad=0.1, p_exit_bad=0.3, loss_good=0.0, loss_bad=0.8,
            seed=3,
        )
        n = 8000
        losses = sum(ge.evaluate(_msg(), 0.0)[0] for _ in range(n))
        assert abs(losses / n - ge.stationary_loss_rate) < 0.05


class TestDegradationWindow:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            DegradationWindow(start=5.0, end=5.0)
        with pytest.raises(ValueError):
            DegradationWindow(start=0.0, end=1.0, extra_loss=1.5)

    def test_total_loss_only_inside_window(self):
        bus = _bus_with(
            DegradationWindow(start=10.0, end=20.0, extra_loss=1.0, seed=1)
        )
        assert bus.send(_msg(t=5.0))
        assert not bus.send(_msg(t=10.0))
        assert not bus.send(_msg(t=19.9))
        assert bus.send(_msg(t=20.0))
        assert bus.losses_by_reason["degraded-window"] == 2

    def test_latency_spike_inside_window(self):
        bus = _bus_with(
            DegradationWindow(start=0.0, end=10.0, extra_latency_s=2.0)
        )
        bus.send(_msg(t=1.0))
        spiked = bus.stats.latency_sum_s
        bus_clean = MessageBus()
        bus_clean.register("a")
        bus_clean.register("b")
        bus_clean.send(_msg(t=1.0))
        assert spiked == pytest.approx(bus_clean.stats.latency_sum_s + 2.0)


class TestPartition:
    def test_groups_must_be_disjoint(self):
        with pytest.raises(ValueError):
            Partition({"a"}, {"a", "b"})

    def test_cut_blocks_both_directions(self):
        bus = _bus_with(Partition({"a"}, {"b"}))
        assert not bus.send(_msg("a", "b"))
        assert not bus.send(_msg("b", "a"))
        assert bus.send(_msg("a", "c"))  # c is in neither group
        assert bus.losses_by_reason["partition"] == 2

    def test_partition_heals_after_end(self):
        bus = _bus_with(Partition({"a"}, {"b"}, start=0.0, end=10.0))
        assert not bus.send(_msg("a", "b", t=5.0))
        assert bus.send(_msg("a", "b", t=10.0))


class TestCrashSchedule:
    def test_rejoin_validation(self):
        with pytest.raises(ValueError):
            CrashSchedule().crash("a", at=5.0, rejoin=5.0)

    def test_is_down_windows(self):
        crash = CrashSchedule().crash("a", at=5.0, rejoin=15.0)
        assert not crash.is_down("a", 0.0)
        assert crash.is_down("a", 5.0)
        assert crash.is_down("a", 14.9)
        assert not crash.is_down("a", 15.0)
        assert not crash.is_down("b", 5.0)

    def test_down_node_neither_sends_nor_receives(self):
        crash = CrashSchedule().crash("b", at=0.0)
        bus = _bus_with(crash)
        assert not bus.send(_msg("a", "b", t=1.0))
        assert not bus.send(_msg("b", "a", t=1.0))
        assert bus.send(_msg("a", "c", t=1.0))
        assert bus.losses_by_reason["crash"] == 2

    def test_injector_reports_liveness(self):
        crash = CrashSchedule().crash("broker", at=10.0)
        injector = FaultInjector(crash)
        assert not injector.is_down("broker", 0.0)
        assert injector.is_down("broker", 10.0)


class TestFaultInjector:
    def test_first_drop_wins_and_is_attributed(self):
        injector = FaultInjector(
            Partition({"a"}, {"b"}),
            IIDLoss(rate=0.9, seed=1),
        )
        verdict = injector.evaluate(_msg("a", "b"))
        assert not verdict.delivered
        assert verdict.reason == "partition"
        assert injector.drops_by_reason == {"partition": 1}

    def test_reset_replays_identically(self):
        injector = FaultInjector(
            IIDLoss(rate=0.4, seed=11),
            GilbertElliottLoss(seed=12),
        )

        def run():
            return [
                injector.evaluate(_msg(t=float(i))).delivered
                for i in range(100)
            ]

        first = run()
        injector.reset()
        assert run() == first
        assert any(not delivered for delivered in first)

    def test_clock_takes_precedence_over_timestamps(self):
        class _Clock:
            now = 50.0

        injector = FaultInjector(
            DegradationWindow(start=40.0, end=60.0, extra_loss=1.0),
            clock=_Clock(),
        )
        # The message claims t=0 but the clock says 50: inside the window.
        assert not injector.evaluate(_msg(t=0.0)).delivered


class TestBusIntegration:
    def test_loss_rate_api_unchanged(self):
        # The legacy constructor path must behave exactly as before.
        bus = MessageBus(loss_rate=0.3, seed=7)
        bus.register("a")
        bus.register("b")
        for _ in range(50):
            bus.send(_msg())
        reference = MessageBus(loss_rate=0.3, seed=7)
        reference.register("a")
        reference.register("b")
        for _ in range(50):
            reference.send(_msg())
        assert bus.messages_lost == reference.messages_lost

    def test_per_endpoint_loss_counters(self):
        bus = _bus_with(IIDLoss(rate=0.5, seed=5))
        for _ in range(100):
            bus.send(_msg("a", "b"))
        assert bus.endpoint("a").outbound_lost == bus.messages_lost
        assert bus.endpoint("b").inbound_lost == bus.messages_lost
        assert bus.endpoint("a").outbound_lost > 0

    def test_nonstrict_send_to_unregistered_counts_and_meters(self):
        bus = MessageBus()
        bus.register("a")
        assert not bus.send(_msg("a", "ghost"), strict=False)
        assert bus.messages_lost == 1
        assert bus.losses_by_reason["unreachable"] == 1
        # The sender still paid for the transmission.
        assert bus.endpoint("a").stats.transmit_energy_mj > 0
        with pytest.raises(KeyError):
            bus.send(_msg("a", "ghost"))

    def test_request_reply_suppressed_when_request_lost(self):
        bus = _bus_with(Partition({"a"}, {"b"}))
        request = Message(
            kind=MessageKind.SENSE_COMMAND, source="a", destination="b"
        )
        reply = bus.request_reply(
            request, MessageKind.SENSE_REPORT, {"value": 1.0}
        )
        assert reply is None
        # Only the request leg was (attempted and) metered; no phantom
        # reply ever crossed the bus.
        assert bus.stats.messages == 1
        assert bus.endpoint("a").pending() == 0
        assert bus.endpoint("b").pending() == 0

    def test_request_reply_returns_none_when_reply_lost(self):
        class _DropReports:
            """Directional fault: only report-kind messages are eaten."""

            name = "drop-reports"

            def evaluate(self, message, now):
                return message.kind is MessageKind.SENSE_REPORT, 0.0

            def reset(self):
                return None

        bus = _bus_with(_DropReports())
        request = Message(
            kind=MessageKind.SENSE_COMMAND, source="a", destination="b"
        )
        reply = bus.request_reply(
            request, MessageKind.SENSE_REPORT, {"value": 2.0}
        )
        assert reply is None
        assert bus.endpoint("b").pending() == 1  # the request arrived
        assert bus.endpoint("a").pending() == 0  # the reply was eaten

    def test_publish_counts_only_delivered(self):
        bus = _bus_with(Partition({"pub"}, {"s1"}))
        bus.register("pub")
        bus.register("s1")
        bus.subscribe("s1", "t")
        bus.subscribe("c", "t")
        count = bus.publish("t", _msg("pub", "t"))
        assert count == 1  # s1 is cut off, c gets it
        assert bus.endpoint("c").pending() == 1
