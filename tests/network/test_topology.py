"""Tests for topology builders."""

import pytest

from repro.network.links import BLUETOOTH, WIFI
from repro.network.topology import (
    broker_load,
    hierarchy_topology,
    is_connected,
    mesh_topology,
    proximity_topology,
    star_topology,
)


class TestStar:
    def test_structure(self):
        g = star_topology("broker", ["n1", "n2", "n3"])
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3
        assert broker_load(g, "broker") == 3
        assert broker_load(g, "n1") == 1

    def test_centre_cannot_be_leaf(self):
        with pytest.raises(ValueError):
            star_topology("x", ["x"])

    def test_connected(self):
        assert is_connected(star_topology("b", ["n1", "n2"]))


class TestMesh:
    def test_all_pairs(self):
        g = mesh_topology(["a", "b", "c", "d"])
        assert g.number_of_edges() == 6

    def test_empty(self):
        assert is_connected(mesh_topology([]))


class TestProximity:
    def test_range_respected(self):
        positions = {
            "a": (0.0, 0.0),
            "b": (10.0, 0.0),
            "c": (500.0, 0.0),
        }
        g = proximity_topology(positions, BLUETOOTH)  # 20 m range
        assert g.has_edge("a", "b")
        assert not g.has_edge("a", "c")

    def test_wifi_reaches_farther(self):
        positions = {"a": (0.0, 0.0), "b": (60.0, 0.0)}
        assert not proximity_topology(positions, BLUETOOTH).has_edge("a", "b")
        assert proximity_topology(positions, WIFI).has_edge("a", "b")

    def test_distances_annotated(self):
        g = proximity_topology({"a": (0, 0), "b": (3, 4)}, WIFI)
        assert g.edges["a", "b"]["distance"] == pytest.approx(5.0)


class TestHierarchy:
    def _build(self):
        return hierarchy_topology(
            cloud="cloud",
            lc_heads=["lc0", "lc1"],
            nc_brokers={"lc0": ["nc0", "nc1"], "lc1": ["nc2"]},
            nodes={
                "nc0": ["a", "b"],
                "nc1": ["c"],
                "nc2": ["d", "e", "f"],
            },
        )

    def test_tiers(self):
        g = self._build()
        assert g.nodes["cloud"]["tier"] == 0
        assert g.nodes["lc0"]["tier"] == 1
        assert g.nodes["nc2"]["tier"] == 2
        assert g.nodes["f"]["tier"] == 3

    def test_tree_shape(self):
        g = self._build()
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == 11  # tree
        assert is_connected(g)

    def test_broker_load_bounded(self):
        """The point of the hierarchy: no node has degree O(total)."""
        g = self._build()
        assert broker_load(g, "cloud") == 2
        assert max(broker_load(g, n) for n in g) <= 3

    def test_orphan_brokers_rejected(self):
        with pytest.raises(ValueError):
            hierarchy_topology(
                "cloud", ["lc0"], {"lcX": ["nc0"]}, {"nc0": ["a"]}
            )

    def test_orphan_nodes_rejected(self):
        with pytest.raises(ValueError):
            hierarchy_topology(
                "cloud", ["lc0"], {"lc0": ["nc0"]}, {"ncX": ["a"]}
            )

    def test_broker_load_unknown_address(self):
        with pytest.raises(KeyError):
            broker_load(self._build(), "ghost")
