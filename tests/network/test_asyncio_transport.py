"""AsyncioTransport: the MessageBus contract over real sockets.

Covers the two attachment paths — :meth:`bind_remote` byte sinks and the
wire-frame TCP server/:func:`connect` client pair — plus the invariants
the backend inherits from the bus: metering, loss accounting for churned
peers, and always-deferred delivery.
"""

import asyncio

import numpy as np
import pytest

from repro.network.asyncio_transport import (
    LOOPBACK,
    AsyncioTransport,
    connect,
)
from repro.network.frames import WireDecoder
from repro.network.message import Message, MessageKind
from repro.network.transport import Transport


@pytest.fixture
def transport():
    t = AsyncioTransport()
    yield t
    t.wall_clock.run_until_complete(t.aclose())
    t.wall_clock.close()


def _msg(source, destination, payload=None):
    return Message(
        kind=MessageKind.SENSE_REPORT,
        source=source,
        destination=destination,
        payload=payload or {"value": 21.5},
    )


class TestBackendContract:
    def test_always_deferred_and_satisfies_protocol(self, transport):
        assert transport.deferred is True
        assert transport.latency_mode == "link"
        assert isinstance(transport, Transport)
        assert transport.default_link is LOOPBACK

    def test_bind_remote_encodes_arrivals_to_sink(self, transport):
        frames = []
        transport.bind_remote("dev1", frames.append)
        transport.register("hub")
        assert transport.remote_addresses == ["dev1"]
        assert transport.send(_msg("hub", "dev1"))
        transport.wall_clock.run_for(0.05)

        assert len(frames) == 1
        (decoded,) = WireDecoder().feed(frames[0])
        assert decoded.destination == "dev1"
        assert decoded.payload == {"value": 21.5}
        assert transport.stats.messages == 1

    def test_unbound_peer_counts_unreachable(self, transport):
        frames = []
        transport.bind_remote("dev1", frames.append)
        transport.register("hub")
        transport.unbind_remote("dev1")
        assert transport.remote_addresses == []
        assert not transport.inject(_msg("hub", "dev1"))
        assert transport.stats.losses_by_reason["unreachable"] == 1

    def test_ndarray_payload_survives_the_sink_path(self, transport):
        frames = []
        grid = np.linspace(0.0, 1.0, 8).reshape(2, 4)
        transport.bind_remote("dev1", frames.append)
        transport.register("hub")
        transport.send(_msg("hub", "dev1", {"grid": grid}))
        transport.wall_clock.run_for(0.05)
        (decoded,) = WireDecoder().feed(frames[0])
        assert np.array_equal(decoded.payload["grid"], grid)


class TestTcpRoundTrip:
    def test_serve_connect_bidirectional(self, transport):
        inbound = []
        transport.register("hub")
        transport.set_handler("hub", inbound.append)

        async def scenario():
            server = await transport.serve()
            port = server.sockets[0].getsockname()[1]
            client = await connect("127.0.0.1", port, "dev9")
            await asyncio.sleep(0.05)  # hello decoded, peer bound
            assert transport.remote_addresses == ["dev9"]

            # Inbound: client frame -> injected -> hub handler.
            await client.send(_msg("dev9", "hub", {"reading": 20.25}))
            await asyncio.sleep(0.05)
            assert len(inbound) == 1
            assert inbound[0].payload == {"reading": 20.25}

            # Outbound: bus send -> wire frame -> client recv.
            transport.send(_msg("hub", "dev9", {"cmd": 3}))
            reply = await asyncio.wait_for(client.recv(), timeout=2.0)
            assert reply.payload == {"cmd": 3}

            await client.close()
            await asyncio.sleep(0.05)  # churn unbinds the peer
            assert transport.remote_addresses == []

        transport.wall_clock.run_until_complete(scenario())

    def test_first_frame_must_be_hello(self, transport):
        transport.register("hub")

        async def scenario():
            server = await transport.serve()
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            # Skip the hello: the peer must be dropped, nothing bound.
            from repro.network.frames import encode_wire

            writer.write(encode_wire(_msg("rogue", "hub")))
            await writer.drain()
            await asyncio.sleep(0.05)
            assert transport.remote_addresses == []
            assert await reader.read() == b""  # server closed on us
            writer.close()

        transport.wall_clock.run_until_complete(scenario())
        assert transport.stats.messages == 0
