"""The transport refactor changes nothing: SimTransport == frozen bus.

PR 8 split transport out of ``repro.network.bus`` behind the
backend-agnostic :class:`repro.network.transport.Transport` protocol.
The sim backend, :class:`repro.network.transport.SimTransport`, must be
the pre-refactor bus *bit for bit*: this module property-tests paired
seeded deployments — one on the frozen pre-refactor oracle
(:class:`repro.network.reference.ReferenceMessageBus`), one on
``SimTransport`` — through full event-driven sensing rounds with link
latency, channel loss and bounded-inbox backpressure, and requires
identical estimates and identical loss accounting.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields.generators import smooth_field
from repro.middleware.api import SenseDroid
from repro.middleware.config import BrokerConfig, HierarchyConfig
from repro.network.bus import MessageBus
from repro.network.links import WIFI
from repro.network.message import Message, MessageKind
from repro.network.reference import ReferenceMessageBus
from repro.network.transport import SimTransport, Transport
from repro.sensors.base import Environment
from repro.sim.clock import SimClock


def _deployment(bus_cls, seed):
    """One seeded two-zone deployment on the given bus class; runs
    three event-driven rounds with latency, loss and backpressure."""
    gen = np.random.default_rng(seed)
    truth = smooth_field(
        16, 8, cutoff=0.2, amplitude=4.0, offset=20.0,
        rng=gen.integers(2**31),
    )
    env = Environment(fields={"temperature": truth})
    transport = bus_cls(
        loss_rate=0.05,
        seed=seed + 1,
        inbox_capacity=6,
        drop_policy="drop-newest",
    )
    system = SenseDroid(
        env,
        hierarchy_config=HierarchyConfig(
            zones_x=2, zones_y=1, nodes_per_nanocloud=10
        ),
        broker_config=BrokerConfig(),
        transport=transport,
        rng=gen.integers(2**31),
    )
    clock = SimClock()
    transport.attach_clock(clock, "link")
    outcomes = []
    drivers = system.hierarchy.async_drivers(
        env, clock, default_period_s=30.0, on_complete=outcomes.append
    )
    for zone_id in sorted(drivers):
        drivers[zone_id].start(until=90.0)
    clock.run_until(100.0)
    return transport, outcomes


def _outcomes_identical(a, b) -> bool:
    if (
        a.zone_id != b.zone_id
        or a.started_at != b.started_at
        or a.latency_s != b.latency_s
        or a.partial != b.partial
    ):
        return False
    if (a.result is None) != (b.result is None):
        return False
    if a.result is None:
        return True
    if not np.array_equal(a.result.field.grid, b.result.field.grid):
        return False
    for ea, eb in zip(a.result.nc_estimates, b.result.nc_estimates):
        if not np.array_equal(
            ea.reconstruction.x_hat, eb.reconstruction.x_hat
        ):
            return False
        if not np.array_equal(ea.plan.locations, eb.plan.locations):
            return False
        if (
            ea.planned_m != eb.planned_m
            or ea.reports_ok != eb.reports_ok
            or ea.reports_refused != eb.reports_refused
            or ea.commands_lost != eb.commands_lost
            or ea.reports_lost != eb.reports_lost
            or ea.retries_used != eb.retries_used
        ):
            return False
    return True


class TestSimTransportBitIdentity:
    """The Hypothesis pin: SimTransport == ReferenceMessageBus."""

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_paired_deployments_identical(self, seed):
        bus_ref, outcomes_ref = _deployment(ReferenceMessageBus, seed)
        bus_sim, outcomes_sim = _deployment(SimTransport, seed)

        assert len(outcomes_ref) == len(outcomes_sim) > 0
        for a, b in zip(outcomes_ref, outcomes_sim):
            assert _outcomes_identical(a, b)

        # Loss accounting identical per reason (channel loss and
        # bounded-inbox backpressure must both replay bit-exactly).
        assert dict(bus_ref.stats.losses_by_reason) == dict(
            bus_sim.stats.losses_by_reason
        )
        assert bus_ref.stats.messages == bus_sim.stats.messages
        assert bus_ref.stats.bytes == bus_sim.stats.bytes
        assert dict(bus_ref.stats.by_kind) == dict(bus_sim.stats.by_kind)
        assert bus_ref.stats.latency_sum_s == bus_sim.stats.latency_sum_s

    def test_channel_loss_exercised(self):
        # The pin above is only meaningful if the scenario actually
        # sheds messages; guard against a silently-too-gentle setup.
        bus, _ = _deployment(SimTransport, seed=3)
        losses = bus.stats.losses_by_reason
        assert losses.get("iid-loss", 0) > 0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_backpressure_accounting_identical(self, seed):
        # Bounded inboxes shed identically on both backends: blast a
        # 2-deep endpoint through a lossy channel and compare every
        # loss bucket, including the distinct "backpressure" reason.
        def blast(bus_cls):
            bus = bus_cls(loss_rate=0.2, seed=seed, inbox_capacity=2)
            bus.register("src", WIFI)
            bus.register("sink", WIFI)
            for i in range(25):
                bus.send(
                    Message(
                        kind=MessageKind.SENSE_REPORT,
                        source="src",
                        destination="sink",
                        payload={"i": i},
                    ),
                    strict=False,
                )
            return bus

        ref = blast(ReferenceMessageBus)
        sim = blast(SimTransport)
        assert ref.stats.losses_by_reason.get("backpressure", 0) > 0
        assert dict(ref.stats.losses_by_reason) == dict(
            sim.stats.losses_by_reason
        )
        assert ref.stats.messages == sim.stats.messages
        assert ref.endpoint("sink").pending() == sim.endpoint(
            "sink"
        ).pending()


class TestSimTransportIsPureAlias:
    def test_adds_no_behaviour(self):
        # A SimTransport that overrode anything could drift from the
        # bus it claims to be; the subclass must stay empty.
        assert SimTransport.__slots__ == ()
        assert SimTransport.__mro__[1] is MessageBus
        overridden = {
            name
            for name, value in vars(SimTransport).items()
            if callable(value) or isinstance(value, property)
        }
        assert overridden == set()

    def test_satisfies_transport_protocol(self):
        assert isinstance(SimTransport(), Transport)
        assert isinstance(MessageBus(), Transport)

    def test_send_and_stats_round_trip(self):
        transport = SimTransport()
        transport.register("a", WIFI)
        transport.register("b", WIFI)
        message = Message(
            kind=MessageKind.SENSE_COMMAND,
            source="a",
            destination="b",
            payload={"grid_index": 5},
        )
        assert transport.send(message)
        assert transport.endpoint("b").pending() == 1
        snapshot = transport.stats_snapshot()
        assert snapshot["messages"] == 1
        assert snapshot["endpoints"] == 2
