"""Tests for the metered pub/sub message bus."""

import pytest

from repro.network.bus import MessageBus
from repro.network.links import BLUETOOTH, WIFI
from repro.network.message import Message, MessageKind


def _msg(src, dst, values=1):
    return Message(
        kind=MessageKind.SENSE_REPORT,
        source=src,
        destination=dst,
        payload_values=values,
    )


class TestRegistration:
    def test_register_and_lookup(self):
        bus = MessageBus()
        endpoint = bus.register("a")
        assert bus.endpoint("a") is endpoint
        assert bus.addresses == ["a"]

    def test_register_is_idempotent(self):
        bus = MessageBus()
        assert bus.register("a") is bus.register("a")

    def test_unknown_endpoint(self):
        with pytest.raises(KeyError):
            MessageBus().endpoint("ghost")

    def test_unregister_cleans_subscriptions(self):
        bus = MessageBus()
        bus.register("a")
        bus.subscribe("a", "topic")
        bus.unregister("a")
        assert bus.subscribers("topic") == set()

    def test_custom_link(self):
        bus = MessageBus()
        endpoint = bus.register("bt-node", BLUETOOTH)
        assert endpoint.link is BLUETOOTH


class TestSend:
    def test_delivery_to_inbox(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.send(_msg("a", "b"))
        messages = bus.endpoint("b").drain()
        assert len(messages) == 1
        assert messages[0].source == "a"
        assert bus.endpoint("b").pending() == 0

    def test_unknown_destination_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(KeyError):
            bus.send(_msg("a", "nowhere"))

    def test_stats_accumulate(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        for _ in range(3):
            bus.send(_msg("a", "b", values=10))
        assert bus.stats.messages == 3
        assert bus.stats.bytes == 3 * (32 + 80)
        assert bus.stats.total_energy_mj > 0
        assert bus.stats.by_kind["sense_report"] == 3

    def test_both_parties_metered(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.send(_msg("a", "b"))
        assert bus.endpoint("a").stats.messages == 1
        assert bus.endpoint("b").stats.messages == 1

    def test_drain_is_fifo(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        first = _msg("a", "b")
        second = _msg("a", "b")
        bus.send(first)
        bus.send(second)
        ids = [m.message_id for m in bus.endpoint("b").drain()]
        assert ids == [first.message_id, second.message_id]


class TestPubSub:
    def test_publish_reaches_subscribers(self):
        bus = MessageBus()
        for name in ("pub", "s1", "s2", "other"):
            bus.register(name)
        bus.subscribe("s1", "temp")
        bus.subscribe("s2", "temp")
        count = bus.publish("temp", _msg("pub", "temp-topic"))
        assert count == 2
        assert bus.endpoint("s1").pending() == 1
        assert bus.endpoint("s2").pending() == 1
        assert bus.endpoint("other").pending() == 0

    def test_publisher_not_echoed(self):
        bus = MessageBus()
        bus.register("pub")
        bus.subscribe("pub", "temp")
        count = bus.publish("temp", _msg("pub", "temp-topic"))
        assert count == 0
        assert bus.endpoint("pub").pending() == 0

    def test_subscribe_requires_registration(self):
        with pytest.raises(KeyError):
            MessageBus().subscribe("ghost", "topic")

    def test_empty_topic_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(ValueError):
            bus.subscribe("a", "")

    def test_unsubscribe(self):
        bus = MessageBus()
        bus.register("a")
        bus.subscribe("a", "t")
        bus.unsubscribe("a", "t")
        assert bus.subscribers("t") == set()

    def test_each_delivery_metered(self):
        bus = MessageBus()
        for name in ("pub", "s1", "s2"):
            bus.register(name)
        bus.subscribe("s1", "t")
        bus.subscribe("s2", "t")
        bus.publish("t", _msg("pub", "t"))
        assert bus.stats.messages == 2  # one per receiver


class TestRequestReply:
    def test_round_trip(self):
        bus = MessageBus()
        bus.register("broker")
        bus.register("node")
        request = Message(
            kind=MessageKind.SENSE_COMMAND,
            source="broker",
            destination="node",
            payload={"sensor": "temperature"},
        )
        reply = bus.request_reply(
            request, MessageKind.SENSE_REPORT, {"value": 21.5}
        )
        assert reply.destination == "broker"
        assert bus.endpoint("broker").pending() == 1
        assert bus.endpoint("node").pending() == 1
        assert bus.stats.messages == 2
