"""Tests for the metered pub/sub message bus."""

import warnings

import pytest

from repro.network.bus import MessageBus, TrafficStats
from repro.network.links import BLUETOOTH, WIFI
from repro.network.message import Message, MessageKind


def _msg(src, dst, values=1):
    return Message(
        kind=MessageKind.SENSE_REPORT,
        source=src,
        destination=dst,
        payload_values=values,
    )


class TestRegistration:
    def test_register_and_lookup(self):
        bus = MessageBus()
        endpoint = bus.register("a")
        assert bus.endpoint("a") is endpoint
        assert bus.addresses == ["a"]

    def test_register_is_idempotent(self):
        bus = MessageBus()
        assert bus.register("a") is bus.register("a")

    def test_unknown_endpoint(self):
        with pytest.raises(KeyError):
            MessageBus().endpoint("ghost")

    def test_unregister_cleans_subscriptions(self):
        bus = MessageBus()
        bus.register("a")
        bus.subscribe("a", "topic")
        bus.unregister("a")
        assert bus.subscribers("topic") == set()

    def test_custom_link(self):
        bus = MessageBus()
        endpoint = bus.register("bt-node", BLUETOOTH)
        assert endpoint.link is BLUETOOTH


class TestSend:
    def test_delivery_to_inbox(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.send(_msg("a", "b"))
        messages = bus.endpoint("b").drain()
        assert len(messages) == 1
        assert messages[0].source == "a"
        assert bus.endpoint("b").pending() == 0

    def test_unknown_destination_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(KeyError):
            bus.send(_msg("a", "nowhere"))

    def test_stats_accumulate(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        for _ in range(3):
            bus.send(_msg("a", "b", values=10))
        assert bus.stats.messages == 3
        assert bus.stats.bytes == 3 * (32 + 80)
        assert bus.stats.total_energy_mj > 0
        assert bus.stats.by_kind["sense_report"] == 3

    def test_both_parties_metered(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        bus.send(_msg("a", "b"))
        assert bus.endpoint("a").stats.messages == 1
        assert bus.endpoint("b").stats.messages == 1

    def test_drain_is_fifo(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        first = _msg("a", "b")
        second = _msg("a", "b")
        bus.send(first)
        bus.send(second)
        ids = [m.message_id for m in bus.endpoint("b").drain()]
        assert ids == [first.message_id, second.message_id]


class TestPubSub:
    def test_publish_reaches_subscribers(self):
        bus = MessageBus()
        for name in ("pub", "s1", "s2", "other"):
            bus.register(name)
        bus.subscribe("s1", "temp")
        bus.subscribe("s2", "temp")
        count = bus.publish("temp", _msg("pub", "temp-topic"))
        assert count == 2
        assert bus.endpoint("s1").pending() == 1
        assert bus.endpoint("s2").pending() == 1
        assert bus.endpoint("other").pending() == 0

    def test_publisher_not_echoed(self):
        bus = MessageBus()
        bus.register("pub")
        bus.subscribe("pub", "temp")
        count = bus.publish("temp", _msg("pub", "temp-topic"))
        assert count == 0
        assert bus.endpoint("pub").pending() == 0

    def test_subscribe_requires_registration(self):
        with pytest.raises(KeyError):
            MessageBus().subscribe("ghost", "topic")

    def test_empty_topic_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(ValueError):
            bus.subscribe("a", "")

    def test_unsubscribe(self):
        bus = MessageBus()
        bus.register("a")
        bus.subscribe("a", "t")
        bus.unsubscribe("a", "t")
        assert bus.subscribers("t") == set()

    def test_each_delivery_metered(self):
        bus = MessageBus()
        for name in ("pub", "s1", "s2"):
            bus.register(name)
        bus.subscribe("s1", "t")
        bus.subscribe("s2", "t")
        bus.publish("t", _msg("pub", "t"))
        assert bus.stats.messages == 2  # one per receiver


class TestRequestReply:
    def test_round_trip(self):
        bus = MessageBus()
        bus.register("broker")
        bus.register("node")
        request = Message(
            kind=MessageKind.SENSE_COMMAND,
            source="broker",
            destination="node",
            payload={"sensor": "temperature"},
        )
        reply = bus.request_reply(
            request, MessageKind.SENSE_REPORT, {"value": 21.5}
        )
        assert reply.destination == "broker"
        assert bus.endpoint("broker").pending() == 1
        assert bus.endpoint("node").pending() == 1
        assert bus.stats.messages == 2


class TestTrafficStatsLatency:
    def test_mean_latency_empty(self):
        bus = MessageBus()
        assert bus.stats.mean_latency_s == 0.0

    def test_mean_latency_is_sum_over_messages(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        for _ in range(4):
            bus.send(_msg("a", "b"))
        stats = bus.stats
        assert stats.mean_latency_s == pytest.approx(
            stats.latency_sum_s / stats.messages
        )


class TestDeferredDelivery:
    """latency_mode="link": deliveries ride the sim clock."""

    def _clocked_bus(self, **kwargs):
        from repro.sim.clock import SimClock

        clock = SimClock()
        bus = MessageBus(**kwargs)
        bus.attach_clock(clock, "link")
        return bus, clock

    def test_send_defers_until_link_latency_elapses(self):
        bus, clock = self._clocked_bus()
        bus.register("a", WIFI)
        bus.register("b", WIFI)
        message = _msg("a", "b")
        assert bus.send(message) is True  # scheduled, not delivered
        assert bus.endpoint("b").pending() == 0
        latency = WIFI.transfer_latency_s(message)
        clock.run_until(latency / 2)
        assert bus.endpoint("b").pending() == 0
        clock.run_until(latency)
        assert bus.endpoint("b").pending() == 1
        assert message.arrived_at == pytest.approx(latency)

    def test_zero_mode_with_clock_stays_synchronous(self):
        from repro.sim.clock import SimClock

        bus = MessageBus()
        bus.attach_clock(SimClock(), "zero")
        bus.register("a")
        bus.register("b")
        bus.send(_msg("a", "b"))
        assert bus.endpoint("b").pending() == 1

    def test_arrivals_keep_clock_order_across_links(self):
        # A slow-link message sent first arrives after a fast-link
        # message sent second: latency faithfulness reorders arrivals.
        from repro.network.links import GSM

        bus, clock = self._clocked_bus()
        bus.register("src", WIFI)
        bus.register("slow", GSM)
        bus.register("fast", BLUETOOTH)
        first = _msg("src", "slow")
        second = _msg("src", "fast")
        bus.send(first)
        bus.send(second)
        clock.run_until(10.0)
        assert second.arrived_at < first.arrived_at

    def test_loss_applied_at_delivery_time(self):
        bus, clock = self._clocked_bus(loss_rate=0.5, seed=3)
        bus.register("a", WIFI)
        bus.register("b", WIFI)
        for _ in range(40):
            assert bus.send(_msg("a", "b")) is True  # sender can't know
        clock.run_until(10.0)
        delivered = bus.endpoint("b").pending()
        assert 0 < delivered < 40
        assert bus.messages_lost == 40 - delivered
        assert bus.losses_by_reason["iid-loss"] == 40 - delivered

    def test_destination_churn_mid_flight_is_unreachable_loss(self):
        bus, clock = self._clocked_bus()
        bus.register("a", WIFI)
        bus.register("b", WIFI)
        bus.send(_msg("a", "b"))
        bus.unregister("b")  # churns off while the message is in flight
        clock.run_until(10.0)
        assert bus.messages_lost == 1
        assert bus.losses_by_reason["unreachable"] == 1
        assert bus.endpoint("a").outbound_lost == 1

    def test_fault_extra_latency_delays_arrival(self):
        from repro.network.faults import DegradationWindow, FaultInjector

        injector = FaultInjector(
            DegradationWindow(start=0.0, end=50.0, extra_latency_s=2.0)
        )
        bus, clock = self._clocked_bus(fault_injector=injector)
        bus.register("a", WIFI)
        bus.register("b", WIFI)
        message = _msg("a", "b")
        bus.send(message)
        base = WIFI.transfer_latency_s(message)
        clock.run_until(base + 1.0)
        assert bus.endpoint("b").pending() == 0  # still degraded-delayed
        clock.run_until(base + 2.0)
        assert bus.endpoint("b").pending() == 1
        assert message.arrived_at == pytest.approx(base + 2.0)
        assert bus.stats.latency_sum_s == pytest.approx(base + 2.0)

    def test_handler_consumes_arrival_instead_of_inbox(self):
        bus, clock = self._clocked_bus()
        bus.register("a", WIFI)
        bus.register("b", WIFI)
        seen = []
        bus.set_handler("b", seen.append)
        message = _msg("a", "b")
        bus.send(message)
        clock.run_until(10.0)
        assert seen == [message]
        assert bus.endpoint("b").pending() == 0

    def test_request_reply_refused_in_deferred_mode(self):
        bus, _ = self._clocked_bus()
        bus.register("a")
        bus.register("b")
        request = Message(
            kind=MessageKind.SENSE_COMMAND,
            source="a",
            destination="b",
            payload={},
        )
        with pytest.raises(RuntimeError, match="synchronous"):
            bus.request_reply(request, MessageKind.SENSE_REPORT, {})

    def test_publish_schedules_one_delivery_per_subscriber(self):
        bus, clock = self._clocked_bus()
        for name in ("pub", "s1", "s2"):
            bus.register(name, WIFI)
        bus.subscribe("s1", "t")
        bus.subscribe("s2", "t")
        assert bus.publish("t", _msg("pub", "t")) == 2
        assert bus.endpoint("s1").pending() == 0
        clock.run_until(10.0)
        assert bus.endpoint("s1").pending() == 1
        assert bus.endpoint("s2").pending() == 1
        assert bus.stats.messages == 2


class TestLatencySTombstone:
    """``TrafficStats.latency_s`` is gone (deprecated PR 3, linter-gated
    PR 5, removed PR 8).  Accessing it must fail like any other unknown
    attribute — no alias, no warning machinery left behind."""

    def test_attribute_is_gone(self):
        stats = TrafficStats()
        stats.latency_sum_s = 1.25
        with pytest.raises(AttributeError):
            _ = stats.latency_s
        assert not hasattr(TrafficStats, "latency_s")

    def test_no_warning_machinery_left(self):
        import repro.network.bus as bus_mod

        assert not hasattr(bus_mod, "_LATENCY_S_WARNED")

    def test_replacements_survive(self):
        stats = TrafficStats()
        stats.latency_sum_s = 2.0
        stats.messages = 4
        assert stats.latency_sum_s == pytest.approx(2.0)
        assert stats.mean_latency_s == pytest.approx(0.5)

    def test_no_deprecation_warning_on_normal_use(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            stats = TrafficStats()
            stats.latency_sum_s += 0.75
            _ = stats.mean_latency_s


class TestStatsSnapshot:
    def test_snapshot_is_json_serializable(self):
        import json

        bus = MessageBus()
        bus.register("a", WIFI)
        bus.register("b", BLUETOOTH)
        bus.send(_msg("a", "b"))
        snapshot = bus.stats_snapshot()
        decoded = json.loads(json.dumps(snapshot))
        assert decoded["messages"] == 1
        assert decoded["endpoints"] == 2
        assert decoded["pending"] == 1
        assert decoded["latency_mode"] == "zero"
        assert decoded["deferred"] is False

    def test_snapshot_counts_backpressure_and_peaks(self):
        bus = MessageBus(inbox_capacity=1)
        bus.register("a")
        bus.register("b")
        bus.send(_msg("a", "b"))
        bus.send(_msg("a", "b"))  # overflows the 1-deep inbox
        snapshot = bus.stats_snapshot()
        assert snapshot["backpressure_drops"] == 1
        assert snapshot["inbox_peak"] == 1
        assert snapshot["losses_by_reason"] == {"backpressure": 1}
        assert snapshot["messages_lost"] == 1

    def test_snapshot_tracks_traffic_stats_verbatim(self):
        bus = MessageBus()
        bus.register("a", WIFI)
        bus.register("b", WIFI)
        for _ in range(3):
            bus.send(_msg("a", "b"))
        snapshot = bus.stats_snapshot()
        reference = bus.stats.snapshot()
        for key, value in reference.items():
            assert snapshot[key] == value
