"""Equivalence properties: the fast solver core vs the seed reference.

The PR's contract is that every fast path — matrix-free adjoint
correlation, operator bases, incremental QR refits, argpartition top-k —
is a pure performance change: same supports, same coefficients (to
1e-8), same reconstructions as the seed implementation kept verbatim in
:mod:`repro.core.reference`.  Hypothesis drives randomised problem
instances through both engines and compares.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import dct_basis
from repro.core.chs import (
    chs,
    linear_interpolate,
    nearest_interpolate,
    zero_fill_interpolate,
)
from repro.core.incremental import IncrementalQR, top_k_indices
from repro.core.omp import omp
from repro.core.operators import DCT2Operator, DCTOperator
from repro.core.reconstruction import reconstruct
from repro.core.reference import chs_reference, omp_reference


def _problem(n, m, k, seed, noise=0.0):
    """A compressible random instance: K-sparse DCT field sampled at M."""
    rng = np.random.default_rng(seed)
    phi = dct_basis(n)
    alpha = np.zeros(n)
    support = rng.choice(n, size=k, replace=False)
    alpha[support] = rng.standard_normal(k) * 3.0
    x = phi @ alpha
    locations = np.sort(rng.choice(n, size=m, replace=False))
    x_s = x[locations] + noise * rng.standard_normal(m)
    return phi, x, x_s, locations


class TestFastCHSEquivalence:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_fast_matches_reference_default_interpolator(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(24, 96))
        m = int(rng.integers(max(8, n // 4), max(10, n // 2)))
        k = int(rng.integers(2, max(3, m // 3)))
        phi, _, x_s, locations = _problem(n, m, k, seed, noise=0.01)
        fast = chs(phi, x_s, locations, max_sparsity=k + 2)
        ref = chs_reference(phi, x_s, locations, max_sparsity=k + 2)
        assert np.array_equal(fast.support, ref.support)
        assert np.allclose(fast.coefficients, ref.coefficients, atol=1e-8)
        assert np.allclose(fast.reconstruction, ref.reconstruction, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_fast_matches_reference_with_covariance(self, seed):
        rng = np.random.default_rng(seed)
        n, m, k = 48, 20, 5
        phi, _, x_s, locations = _problem(n, m, k, seed, noise=0.05)
        covariance = np.diag(rng.uniform(0.01, 0.3, size=m) ** 2)
        fast = chs(
            phi, x_s, locations, max_sparsity=k + 1, covariance=covariance
        )
        ref = chs_reference(
            phi, x_s, locations, max_sparsity=k + 1, covariance=covariance
        )
        assert np.array_equal(fast.support, ref.support)
        assert np.allclose(fast.coefficients, ref.coefficients, atol=1e-8)

    @pytest.mark.parametrize(
        "interpolator", [linear_interpolate, nearest_interpolate]
    )
    def test_fast_matches_reference_non_adjoint_interpolators(
        self, interpolator
    ):
        # Non-adjoint interpolators keep the dense analysis path; the
        # remaining fast machinery (top-k, incremental refit) must still
        # reproduce the reference exactly.
        for seed in range(8):
            phi, _, x_s, locations = _problem(64, 24, 5, seed, noise=0.02)
            fast = chs(
                phi, x_s, locations, max_sparsity=6,
                interpolator=interpolator,
            )
            ref = chs_reference(
                phi, x_s, locations, max_sparsity=6,
                interpolator=interpolator,
            )
            assert np.array_equal(fast.support, ref.support)
            assert np.allclose(fast.coefficients, ref.coefficients, atol=1e-8)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_operator_basis_matches_dense_basis(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(24, 96))
        m = int(rng.integers(max(8, n // 4), max(10, n // 2)))
        phi, _, x_s, locations = _problem(n, m, 4, seed, noise=0.01)
        dense = chs(phi, x_s, locations, max_sparsity=6)
        operator = chs(DCTOperator(n), x_s, locations, max_sparsity=6)
        assert np.array_equal(dense.support, operator.support)
        assert np.allclose(
            dense.reconstruction, operator.reconstruction, atol=1e-8
        )

    def test_batched_selection_matches_reference(self):
        for seed in range(6):
            phi, _, x_s, locations = _problem(80, 32, 8, seed, noise=0.02)
            fast = chs(phi, x_s, locations, max_sparsity=9, batch_size=3)
            ref = chs_reference(
                phi, x_s, locations, max_sparsity=9, batch_size=3
            )
            assert np.array_equal(fast.support, ref.support)
            assert np.allclose(fast.coefficients, ref.coefficients, atol=1e-8)


class TestFastOMPEquivalence:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_fast_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(24, 96))
        m = int(rng.integers(max(8, n // 4), max(10, n // 2)))
        k = int(rng.integers(2, max(3, m // 3)))
        phi, _, x_s, locations = _problem(n, m, k, seed, noise=0.02)
        phi_rows = phi[locations, :]
        fast = omp(phi_rows, x_s, sparsity=k)
        ref = omp_reference(phi_rows, x_s, k)
        assert np.array_equal(fast.support, ref.support)
        assert np.allclose(fast.coefficients, ref.coefficients, atol=1e-8)

    def test_fast_matches_reference_with_covariance(self):
        for seed in range(8):
            rng = np.random.default_rng(seed)
            phi, _, x_s, locations = _problem(48, 20, 5, seed, noise=0.05)
            covariance = np.diag(rng.uniform(0.01, 0.3, size=20) ** 2)
            fast = omp(
                phi[locations, :], x_s, sparsity=5, covariance=covariance
            )
            ref = omp_reference(
                phi[locations, :], x_s, 5, covariance=covariance
            )
            assert np.array_equal(fast.support, ref.support)
            assert np.allclose(fast.coefficients, ref.coefficients, atol=1e-8)


class TestTopKIndices:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_lexsort_reference(self, seed, n):
        rng = np.random.default_rng(seed)
        # Quantised scores force ties to exercise the tie-break path.
        scores = np.round(rng.standard_normal(n), 1)
        if n > 4:
            scores[rng.choice(n, size=n // 4, replace=False)] = -np.inf
        k = int(rng.integers(1, n + 1))
        order = np.lexsort((np.arange(n), -scores))
        expected = [int(i) for i in order if np.isfinite(scores[i])][:k]
        assert top_k_indices(scores, k).tolist() == expected

    def test_empty_when_all_masked(self):
        assert top_k_indices(np.full(5, -np.inf), 3).size == 0


class TestIncrementalQR:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_matches_lstsq_column_by_column(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(4, 40))
        k = int(rng.integers(1, m + 1))
        a = rng.standard_normal((m, k))
        y = rng.standard_normal(m)
        inc = IncrementalQR(m, capacity=k)
        for j in range(k):
            inc.add_column(a[:, j])
            direct, *_ = np.linalg.lstsq(a[:, : j + 1], y, rcond=None)
            assert np.allclose(inc.solve(y), direct, atol=1e-8)

    def test_degenerate_column_falls_back(self):
        rng = np.random.default_rng(0)
        m = 10
        a = rng.standard_normal((m, 2))
        inc = IncrementalQR(m, capacity=3)
        inc.add_column(a[:, 0])
        inc.add_column(a[:, 1])
        inc.add_column(a[:, 0] + a[:, 1])  # exactly dependent
        assert inc.degenerate
        y = rng.standard_normal(m)
        stacked = np.column_stack([a, a[:, 0] + a[:, 1]])
        direct, *_ = np.linalg.lstsq(stacked, y, rcond=None)
        assert np.allclose(stacked @ inc.solve(y), stacked @ direct, atol=1e-8)


class TestNearestInterpolate:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=60, deadline=None)
    def test_matches_dense_distance_scan(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 120))
        m = int(rng.integers(1, n + 1))
        locations = np.sort(rng.choice(n, size=m, replace=False))
        values = rng.standard_normal(m)
        fast = nearest_interpolate(values, locations, n)
        # Seed implementation: full |grid - locations| distance matrix,
        # argmin with ties going to the first (lowest-location) column.
        distance = np.abs(
            np.arange(n)[:, None] - locations[None, :]
        )
        expected = values[np.argmin(distance, axis=1)]
        assert np.array_equal(fast, expected)


class TestCenterHoist:
    def test_centered_equals_manual_baseline_split(self):
        # reconstruct(center=True) must equal: subtract mean, solve
        # uncentered, add mean back — the identity the hoist relies on.
        for seed in range(6):
            phi, _, x_s, locations = _problem(60, 24, 5, seed, noise=0.02)
            x_s = x_s + 21.5  # physical baseline
            centered = reconstruct(
                x_s, locations, phi, solver="chs", sparsity=6, center=True
            )
            baseline = float(x_s.mean())
            manual = reconstruct(
                x_s - baseline, locations, phi, solver="chs", sparsity=6
            )
            assert np.allclose(
                centered.x_hat, manual.x_hat + baseline, atol=1e-10
            )
            assert np.array_equal(centered.support, manual.support)

    def test_reconstruct_engines_agree(self):
        for solver in ("chs", "omp"):
            phi, _, x_s, locations = _problem(48, 20, 4, 11, noise=0.02)
            fast = reconstruct(
                x_s, locations, phi, solver=solver, sparsity=5, center=True
            )
            ref = reconstruct(
                x_s, locations, phi, solver=solver, sparsity=5, center=True,
                engine="reference",
            )
            assert np.allclose(fast.x_hat, ref.x_hat, atol=1e-8)

    def test_operator_reconstruct_2d(self):
        rng = np.random.default_rng(5)
        w, h = 8, 6
        op = DCT2Operator(w, h)
        phi = op.to_dense()
        alpha = np.zeros(w * h)
        alpha[[0, 3, 10]] = [40.0, 2.0, -1.5]
        x = phi @ alpha
        locations = np.sort(rng.choice(w * h, size=24, replace=False))
        dense = reconstruct(
            x[locations], locations, phi, solver="chs", sparsity=6,
            center=True,
        )
        operator = reconstruct(
            x[locations], locations, op, solver="chs", sparsity=6,
            center=True,
        )
        assert np.allclose(dense.x_hat, operator.x_hat, atol=1e-8)
