"""Tests for repro.core.sampling: location selection and sensing matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import (
    MeasurementPlan,
    bernoulli_sensing_matrix,
    gaussian_sensing_matrix,
    grid_locations,
    random_locations,
    selection_matrix,
    subsample_rows,
    weighted_locations,
)


class TestRandomLocations:
    @given(
        n=st.integers(min_value=1, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_distinct_sorted_in_range(self, n, data):
        m = data.draw(st.integers(min_value=1, max_value=n))
        loc = random_locations(n, m, rng=7)
        assert loc.size == m
        assert np.all(np.diff(loc) > 0)  # sorted & distinct
        assert loc.min() >= 0 and loc.max() < n

    def test_reproducible_by_seed(self):
        assert np.array_equal(
            random_locations(100, 20, 5), random_locations(100, 20, 5)
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            random_locations(10, 0)
        with pytest.raises(ValueError):
            random_locations(10, 11)
        with pytest.raises(ValueError):
            random_locations(0, 1)


class TestGridLocations:
    def test_even_spacing_endpoints(self):
        loc = grid_locations(100, 5)
        assert loc[0] == 0 and loc[-1] == 99

    def test_full_selection(self):
        assert np.array_equal(grid_locations(7, 7), np.arange(7))

    def test_deterministic(self):
        assert np.array_equal(grid_locations(64, 9), grid_locations(64, 9))


class TestWeightedLocations:
    def test_prefers_heavy_cells(self):
        weights = np.zeros(100)
        weights[:10] = 100.0
        weights[10:] = 0.01
        hits = np.zeros(100)
        for seed in range(50):
            loc = weighted_locations(weights, 5, rng=seed)
            hits[loc] += 1
        assert hits[:10].sum() > hits[10:].sum()

    def test_zero_weights_fall_back_to_uniform(self):
        loc = weighted_locations(np.zeros(20), 5, rng=1)
        assert loc.size == 5

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_locations(np.array([1.0, -1.0]), 1)


class TestSubsampleAndSelection:
    def test_subsample_rows(self):
        phi = np.arange(20).reshape(5, 4).astype(float)
        rows = subsample_rows(phi, np.array([0, 3]))
        assert np.array_equal(rows, phi[[0, 3]])

    def test_subsample_out_of_range(self):
        with pytest.raises(IndexError):
            subsample_rows(np.eye(4), np.array([4]))

    def test_selection_matrix_selects(self):
        x = np.arange(6, dtype=float)
        s = selection_matrix(6, np.array([1, 4]))
        assert np.array_equal(s @ x, np.array([1.0, 4.0]))


class TestDenseSensingMatrices:
    def test_gaussian_shape_and_scale(self):
        a = gaussian_sensing_matrix(30, 100, rng=0)
        assert a.shape == (30, 100)
        # Columns should have ~unit expected norm.
        norms = np.linalg.norm(a, axis=0)
        assert 0.5 < norms.mean() < 1.5

    def test_bernoulli_entries(self):
        a = bernoulli_sensing_matrix(10, 20, rng=0)
        expected = 1.0 / np.sqrt(10)
        assert np.all(np.isclose(np.abs(a), expected))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            gaussian_sensing_matrix(0, 10)
        with pytest.raises(ValueError):
            bernoulli_sensing_matrix(11, 10)


class TestMeasurementPlan:
    def test_random_plan_properties(self):
        plan = MeasurementPlan.random(100, 25, seed=3)
        assert plan.m == 25
        assert plan.n == 100
        assert plan.compression_ratio == 0.25

    def test_sorted_on_construction(self):
        plan = MeasurementPlan(n=10, locations=np.array([7, 2, 5]))
        assert np.array_equal(plan.locations, [2, 5, 7])

    def test_duplicate_locations_rejected(self):
        with pytest.raises(ValueError):
            MeasurementPlan(n=10, locations=np.array([1, 1, 2]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MeasurementPlan(n=5, locations=np.array([5]))
        with pytest.raises(ValueError):
            MeasurementPlan(n=5, locations=np.array([-1]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MeasurementPlan(n=5, locations=np.array([], dtype=int))

    def test_sensing_matrix_shape(self):
        plan = MeasurementPlan.random(16, 4, seed=0)
        phi = np.eye(16)
        mat = plan.sensing_matrix(phi)
        assert mat.shape == (4, 16)

    def test_sensing_matrix_size_mismatch(self):
        plan = MeasurementPlan.random(16, 4, seed=0)
        with pytest.raises(ValueError):
            plan.sensing_matrix(np.eye(8))

    def test_weighted_plan(self):
        weights = np.zeros(50)
        weights[40:] = 1.0
        plan = MeasurementPlan.weighted(weights, 5, seed=2)
        assert np.all(plan.locations >= 40)
