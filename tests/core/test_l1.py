"""Tests for L1 basis pursuit via LP (paper eqs. 9-10, noisy eq. 14)."""

import numpy as np
import pytest

from repro.core.basis import dct_basis
from repro.core.l1 import l1_solve, l1_solve_noisy
from repro.core.sampling import random_locations


def _problem(n=64, k=4, m=28, seed=0):
    rng = np.random.default_rng(seed)
    phi = dct_basis(n)
    support = rng.choice(n, size=k, replace=False)
    alpha = np.zeros(n)
    alpha[support] = rng.uniform(1.0, 3.0, k) * rng.choice([-1, 1], k)
    x = phi @ alpha
    loc = random_locations(n, m, rng)
    return phi, alpha, x, loc


class TestExactL1:
    def test_recovers_sparse_signal(self):
        phi, alpha, x, loc = _problem()
        result = l1_solve(phi[loc, :], x[loc])
        assert result.success
        assert np.allclose(result.coefficients, alpha, atol=1e-5)

    def test_support_extraction(self):
        phi, alpha, x, loc = _problem(seed=1)
        result = l1_solve(phi[loc, :], x[loc])
        true_support = set(np.flatnonzero(alpha).tolist())
        assert true_support <= set(result.support.tolist())

    def test_objective_equals_l1_norm(self):
        phi, alpha, x, loc = _problem(seed=2)
        result = l1_solve(phi[loc, :], x[loc])
        assert result.objective == pytest.approx(
            np.abs(result.coefficients).sum(), rel=1e-6
        )

    def test_l1_minimality(self):
        """The returned solution's L1 norm does not exceed the truth's
        (the truth is feasible, so BP must do at least as well)."""
        phi, alpha, x, loc = _problem(seed=3)
        result = l1_solve(phi[loc, :], x[loc])
        assert np.abs(result.coefficients).sum() <= np.abs(alpha).sum() + 1e-6

    def test_measurement_constraint_satisfied(self):
        phi, _, x, loc = _problem(seed=4)
        result = l1_solve(phi[loc, :], x[loc])
        assert np.allclose(
            phi[loc, :] @ result.coefficients, x[loc], atol=1e-6
        )

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            l1_solve(np.ones((3, 5)), np.ones(4))

    def test_non_2d(self):
        with pytest.raises(ValueError):
            l1_solve(np.ones(5), np.ones(5))


class TestNoisyL1:
    def test_tolerates_bounded_noise(self):
        phi, alpha, x, loc = _problem(seed=5)
        rng = np.random.default_rng(6)
        noise = rng.uniform(-0.05, 0.05, loc.size)
        result = l1_solve_noisy(phi[loc, :], x[loc] + noise, epsilon=0.06)
        assert result.success
        rel = np.linalg.norm(result.coefficients - alpha) / np.linalg.norm(alpha)
        assert rel < 0.2

    def test_zero_epsilon_matches_exact(self):
        phi, alpha, x, loc = _problem(seed=7)
        noisy = l1_solve_noisy(phi[loc, :], x[loc], epsilon=0.0)
        exact = l1_solve(phi[loc, :], x[loc])
        assert noisy.success and exact.success
        assert np.allclose(
            noisy.coefficients, exact.coefficients, atol=1e-4
        )

    def test_residual_within_budget(self):
        phi, _, x, loc = _problem(seed=8)
        epsilon = 0.1
        result = l1_solve_noisy(phi[loc, :], x[loc], epsilon=epsilon)
        residual = x[loc] - phi[loc, :] @ result.coefficients
        assert np.max(np.abs(residual)) <= epsilon + 1e-6

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            l1_solve_noisy(np.eye(3), np.ones(3), epsilon=-0.1)

    def test_larger_epsilon_never_increases_objective(self):
        phi, _, x, loc = _problem(seed=9)
        tight = l1_solve_noisy(phi[loc, :], x[loc], epsilon=0.01)
        loose = l1_solve_noisy(phi[loc, :], x[loc], epsilon=0.5)
        assert loose.objective <= tight.objective + 1e-9
