"""Tests for sparsity estimation, K selection and error decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import dct_basis
from repro.core.sampling import random_locations
from repro.core.sparsity import (
    best_k_term_error,
    effective_sparsity,
    energy_sparsity,
    error_decomposition,
    measurements_for_sparsity,
    select_optimal_k,
)


class TestEffectiveSparsity:
    def test_counts_large_coefficients(self):
        alpha = np.array([10.0, 0.0, 5.0, 1e-6, 0.0])
        assert effective_sparsity(alpha) == 2

    def test_zero_vector(self):
        assert effective_sparsity(np.zeros(8)) == 0

    def test_empty(self):
        assert effective_sparsity(np.array([])) == 0

    def test_threshold_is_relative(self):
        alpha = np.array([1000.0, 1.0])
        assert effective_sparsity(alpha, threshold=1e-2) == 1
        assert effective_sparsity(alpha, threshold=1e-4) == 2


class TestEnergySparsity:
    def test_single_spike(self):
        alpha = np.zeros(32)
        alpha[5] = 7.0
        assert energy_sparsity(alpha) == 1

    def test_uniform_energy(self):
        alpha = np.ones(10)
        assert energy_sparsity(alpha, energy=0.95) == 10  # ceil(9.5)

    def test_zero(self):
        assert energy_sparsity(np.zeros(5)) == 0

    def test_invalid_energy(self):
        with pytest.raises(ValueError):
            energy_sparsity(np.ones(3), energy=1.5)

    @given(st.floats(min_value=0.5, max_value=0.999))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_energy(self, e):
        rng = np.random.default_rng(17)
        alpha = rng.standard_normal(64)
        assert energy_sparsity(alpha, e) <= energy_sparsity(alpha, 0.9995)


class TestBestKTermError:
    def test_zero_for_full_k(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(16)
        phi = dct_basis(16)
        assert best_k_term_error(x, phi, 16) == pytest.approx(0.0, abs=1e-10)

    def test_one_for_k_zero(self):
        x = np.ones(8)
        phi = dct_basis(8)
        assert best_k_term_error(x, phi, 0) == pytest.approx(1.0)

    def test_monotone_non_increasing_in_k(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(32)
        phi = dct_basis(32)
        errs = [best_k_term_error(x, phi, k) for k in range(0, 33)]
        assert all(b <= a + 1e-12 for a, b in zip(errs, errs[1:]))

    def test_exactly_sparse_signal(self):
        phi = dct_basis(32)
        alpha = np.zeros(32)
        alpha[[2, 7, 19]] = [3.0, -1.0, 2.0]
        x = phi @ alpha
        assert best_k_term_error(x, phi, 3) == pytest.approx(0.0, abs=1e-10)
        assert best_k_term_error(x, phi, 2) > 0.1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            best_k_term_error(np.ones(4), dct_basis(4), 5)


class TestErrorDecomposition:
    def _setup(self, seed=0, n=64, m=32):
        rng = np.random.default_rng(seed)
        phi = dct_basis(n)
        # Compressible (not exactly sparse) field: decaying spectrum.
        alpha = rng.standard_normal(n) * np.exp(-np.arange(n) / 6.0)
        x = phi @ alpha
        loc = random_locations(n, m, rng)
        return x, phi, loc, rng

    def test_budget_fields_consistent(self):
        x, phi, loc, rng = self._setup()
        noise = rng.standard_normal(loc.size) * 0.05
        budget = error_decomposition(x, phi, loc, noise, k=8)
        assert budget.k == 8
        assert budget.approximation >= 0
        assert budget.conditioning >= 0
        assert budget.noise >= 0
        assert budget.total >= 0
        row = budget.as_row()
        assert row["K"] == 8 and row["eps_total"] == budget.total

    def test_noiseless_has_zero_noise_term(self):
        x, phi, loc, _ = self._setup(seed=1)
        budget = error_decomposition(x, phi, loc, None, k=6)
        assert budget.noise == 0.0

    def test_approximation_error_decreases_with_k(self):
        x, phi, loc, _ = self._setup(seed=2)
        budgets = [
            error_decomposition(x, phi, loc, None, k) for k in (2, 6, 12)
        ]
        eps_a = [b.approximation for b in budgets]
        assert eps_a[0] >= eps_a[1] >= eps_a[2]

    def test_conditioning_grows_as_k_approaches_m(self):
        x, phi, loc, _ = self._setup(seed=3, m=16)
        low_k = error_decomposition(x, phi, loc, None, k=4)
        high_k = error_decomposition(x, phi, loc, None, k=15)
        assert high_k.condition_number > low_k.condition_number


class TestSelectOptimalK:
    def test_interior_optimum_under_noise(self):
        """With measurement noise the error-vs-K curve is U-shaped, so
        the optimum is strictly below K=M (paper's K trade-off)."""
        rng = np.random.default_rng(4)
        n, m = 64, 24
        phi = dct_basis(n)
        alpha = rng.standard_normal(n) * np.exp(-np.arange(n) / 4.0)
        x = phi @ alpha
        loc = random_locations(n, m, rng)
        noise = rng.standard_normal(m) * 0.2
        best_k, budgets = select_optimal_k(x, phi, loc, noise)
        assert 1 <= best_k < m
        assert len(budgets) == m
        totals = [b.total for b in budgets]
        assert totals[best_k - 1] == min(totals)

    def test_respects_k_max(self):
        rng = np.random.default_rng(5)
        phi = dct_basis(32)
        x = phi @ rng.standard_normal(32)
        loc = random_locations(32, 16, rng)
        _, budgets = select_optimal_k(x, phi, loc, k_max=5)
        assert len(budgets) == 5


class TestMeasurementsForSparsity:
    def test_logarithmic_in_n(self):
        m1 = measurements_for_sparsity(5, 100)
        m2 = measurements_for_sparsity(5, 10000)
        assert m2 < 3 * m1  # log scaling, not linear

    def test_clamped_to_n(self):
        assert measurements_for_sparsity(50, 60) <= 60

    def test_at_least_k_plus_one(self):
        assert measurements_for_sparsity(1, 2, oversampling=0.01) >= 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            measurements_for_sparsity(0, 10)
        with pytest.raises(ValueError):
            measurements_for_sparsity(11, 10)
