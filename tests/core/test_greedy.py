"""Tests for the CoSaMP and IHT solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import dct_basis
from repro.core.greedy import cosamp, iht
from repro.core.sampling import gaussian_sensing_matrix, random_locations


def _sparse_problem(n=128, k=5, m=60, seed=0):
    rng = np.random.default_rng(seed)
    phi = dct_basis(n)
    support = rng.choice(n, size=k, replace=False)
    alpha = np.zeros(n)
    alpha[support] = rng.uniform(1.0, 3.0, k) * rng.choice([-1, 1], k)
    loc = random_locations(n, m, rng)
    return phi[loc, :], alpha, (phi @ alpha)[loc], support


class TestCoSaMP:
    def test_exact_recovery(self):
        a, alpha, y, support = _sparse_problem(seed=1)
        result = cosamp(a, y, sparsity=5)
        assert np.allclose(result.coefficients, alpha, atol=1e-6)
        assert set(result.support.tolist()) == set(support.tolist())
        assert result.converged

    def test_gaussian_operator(self):
        rng = np.random.default_rng(2)
        n, k, m = 200, 8, 80
        alpha = np.zeros(n)
        sup = rng.choice(n, k, replace=False)
        alpha[sup] = rng.standard_normal(k) * 3 + np.sign(rng.standard_normal(k))
        a = gaussian_sensing_matrix(m, n, rng)
        result = cosamp(a, a @ alpha, sparsity=k)
        assert np.allclose(result.coefficients, alpha, atol=1e-5)

    def test_self_correction_beats_wrong_early_choice(self):
        """CoSaMP prunes, so a transiently selected wrong atom is evicted;
        the final support is exactly K."""
        a, alpha, y, _ = _sparse_problem(k=6, m=50, seed=3)
        result = cosamp(a, y, sparsity=6)
        assert result.support.size <= 6

    def test_noise_robustness(self):
        a, alpha, y, _ = _sparse_problem(seed=4)
        rng = np.random.default_rng(5)
        noisy = y + rng.standard_normal(y.size) * 0.05
        result = cosamp(a, noisy, sparsity=5)
        rel = np.linalg.norm(result.coefficients - alpha) / np.linalg.norm(alpha)
        assert rel < 0.1

    def test_residual_history_recorded(self):
        a, _, y, _ = _sparse_problem(seed=6)
        result = cosamp(a, y, sparsity=5)
        assert len(result.residual_history) == result.iterations

    def test_validation(self):
        with pytest.raises(ValueError):
            cosamp(np.ones((4, 8)), np.ones(3), sparsity=2)
        with pytest.raises(ValueError):
            cosamp(np.ones((4, 8)), np.ones(4), sparsity=0)
        with pytest.raises(ValueError):
            cosamp(np.ones(8), np.ones(8), sparsity=2)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=12, deadline=None)
    def test_recovery_across_sparsities(self, k):
        a, alpha, y, _ = _sparse_problem(k=k, m=60, seed=100 + k)
        result = cosamp(a, y, sparsity=k)
        rel = np.linalg.norm(result.coefficients - alpha) / np.linalg.norm(alpha)
        assert rel < 1e-5


class TestIHT:
    def test_recovery_with_gaussian_operator(self):
        rng = np.random.default_rng(7)
        n, k, m = 128, 4, 64
        alpha = np.zeros(n)
        sup = rng.choice(n, k, replace=False)
        alpha[sup] = rng.uniform(1.0, 2.0, k) * rng.choice([-1, 1], k)
        a = gaussian_sensing_matrix(m, n, rng)
        result = iht(a, a @ alpha, sparsity=k, max_iterations=500)
        rel = np.linalg.norm(result.coefficients - alpha) / np.linalg.norm(alpha)
        assert rel < 1e-3

    def test_residual_non_increasing(self):
        a, _, y, _ = _sparse_problem(seed=8)
        result = iht(a, y, sparsity=5, max_iterations=100)
        history = result.residual_history
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(history, history[1:])
        )

    def test_support_size_bounded(self):
        a, _, y, _ = _sparse_problem(seed=9)
        result = iht(a, y, sparsity=5)
        assert result.support.size <= 5

    def test_custom_step_validation(self):
        a, _, y, _ = _sparse_problem(seed=10)
        with pytest.raises(ValueError):
            iht(a, y, sparsity=3, step=0.0)

    def test_zero_measurements(self):
        a, _, _, _ = _sparse_problem(seed=11)
        result = iht(a, np.zeros(a.shape[0]), sparsity=3)
        assert np.allclose(result.coefficients, 0.0)
