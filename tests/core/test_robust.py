"""Tests for the robust reconstruction wrappers (repro.core.robust)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import dct_basis
from repro.core.reconstruction import reconstruct
from repro.core.robust import (
    ROBUST_MODES,
    RobustFit,
    robust_reconstruct,
    robust_scales,
)


def _problem(seed=0, n=64, m=32, k=4, noise=0.0, noise_std=0.3):
    """A sparse low-frequency field, sampled at m points with bounded
    uniform noise (bounded so honest rows can never look like outliers)."""
    rng = np.random.default_rng(seed)
    phi = dct_basis(n)
    alpha = np.zeros(n)
    support = rng.choice(12, size=k, replace=False)
    alpha[support] = rng.uniform(1.0, 3.0, k) * rng.choice([-1, 1], k)
    x = phi @ alpha
    loc = np.sort(rng.choice(n, size=m, replace=False))
    y = x[loc] + rng.uniform(-noise, noise, m)
    stds = np.full(m, noise_std)
    return phi, x, loc, y, stds


def _make_fit(phi, sparsity=6):
    def fit(values, locations, covariance):
        result = reconstruct(
            values,
            locations,
            phi,
            solver="chs",
            sparsity=min(sparsity, values.size),
            covariance=covariance,
        )
        return result, result.x_hat

    return fit


class TestRobustScales:
    def test_mad_floor_defeats_understated_std(self):
        residual = np.array([0.1, -0.2, 0.15, -0.1, 5.0])
        stds = np.array([0.3, 0.3, 0.3, 0.3, 0.01])  # liar claims 0.01
        scales = robust_scales(residual, stds)
        # The liar is judged against the bulk spread, not its claim.
        assert scales[-1] > 0.01
        assert np.all(scales >= stds)

    def test_claimed_std_kept_when_larger_than_mad(self):
        residual = np.array([0.01, -0.01, 0.02, 0.0])
        stds = np.full(4, 0.5)
        assert np.allclose(robust_scales(residual, stds), 0.5)

    def test_no_stds_uses_pure_mad(self):
        residual = np.array([1.0, -1.0, 1.0, -1.0])
        scales = robust_scales(residual, None)
        assert np.allclose(scales, scales[0])
        assert scales[0] > 0

    def test_empty_residual(self):
        assert robust_scales(np.empty(0), None).size == 0


class TestTrim:
    def test_rejects_planted_outliers(self):
        phi, x, loc, y, stds = _problem(seed=3, noise=0.05)
        bad = np.array([2, 11, 25])
        y = y.copy()
        y[bad] += 40.0  # wildly wrong
        fit = _make_fit(phi)
        cov = np.diag(stds**2)
        naive, _ = fit(y, loc, cov)
        robust = robust_reconstruct(
            fit, y, loc, covariance=cov, noise_stds=stds, mode="trim"
        )
        assert set(bad) <= set(robust.rejected_rows)
        clean_err = fit(_problem(seed=3, noise=0.05)[3], loc, cov)[
            0
        ].relative_error(x)
        assert robust.result.relative_error(x) < 1.5 * clean_err
        assert naive.relative_error(x) > 5 * robust.result.relative_error(x)
        assert robust.rounds >= 1

    def test_clean_data_bit_identical_to_naive(self):
        phi, x, loc, y, stds = _problem(seed=1, noise=0.05)
        fit = _make_fit(phi)
        cov = np.diag(stds**2)
        naive_result, naive_x = fit(y, loc, cov)
        robust = robust_reconstruct(
            fit, y, loc, covariance=cov, noise_stds=stds, mode="trim"
        )
        assert robust.rounds == 0
        assert bool(robust.kept.all())
        # Same fit call, same inputs: the arrays are byte-identical.
        assert np.array_equal(robust.x_hat, naive_x)
        assert np.array_equal(robust.result.x_hat, naive_result.x_hat)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_zero_faults_bit_identity_property(self, seed):
        # Bounded noise at a fraction of the claimed std: a standardised
        # residual can never reach the 3.5 threshold, so trim must take
        # the rounds==0 path and return the naive fit untouched.
        phi, x, loc, y, stds = _problem(
            seed=seed, noise=0.1, noise_std=0.5
        )
        fit = _make_fit(phi)
        cov = np.diag(stds**2)
        naive_result, naive_x = fit(y, loc, cov)
        robust = robust_reconstruct(
            fit, y, loc, covariance=cov, noise_stds=stds, mode="trim"
        )
        assert robust.rounds == 0
        assert np.array_equal(robust.x_hat, naive_x)

    def test_min_keep_floor_holds(self):
        phi, x, loc, y, stds = _problem(seed=5, noise=0.05)
        y = y.copy()
        y[:20] += 50.0  # more offenders than the floor allows dropping
        robust = robust_reconstruct(
            _make_fit(phi),
            y,
            loc,
            covariance=np.diag(stds**2),
            noise_stds=stds,
            mode="trim",
        )
        assert int(robust.kept.sum()) >= max(4, y.size // 2)

    def test_deterministic_across_calls(self):
        phi, x, loc, y, stds = _problem(seed=7, noise=0.05)
        y = y.copy()
        y[4] += 30.0
        kwargs = dict(
            covariance=np.diag(stds**2), noise_stds=stds, mode="trim"
        )
        a = robust_reconstruct(_make_fit(phi), y, loc, **kwargs)
        b = robust_reconstruct(_make_fit(phi), y, loc, **kwargs)
        assert np.array_equal(a.x_hat, b.x_hat)
        assert np.array_equal(a.kept, b.kept)
        assert a.rounds == b.rounds

    def test_noise_stds_default_from_covariance(self):
        phi, x, loc, y, stds = _problem(seed=2, noise=0.05)
        y = y.copy()
        y[9] += 30.0
        robust = robust_reconstruct(
            _make_fit(phi), y, loc, covariance=np.diag(stds**2), mode="trim"
        )
        assert 9 in robust.rejected_rows


class TestHuber:
    def test_downweights_planted_outlier(self):
        phi, x, loc, y, stds = _problem(seed=3, noise=0.05)
        y = y.copy()
        y[6] += 40.0
        fit = _make_fit(phi)
        cov = np.diag(stds**2)
        naive, _ = fit(y, loc, cov)
        robust = robust_reconstruct(
            fit, y, loc, covariance=cov, noise_stds=stds, mode="huber"
        )
        assert robust.weights[6] < 0.5
        honest = np.delete(robust.weights, 6)
        assert np.median(honest) > 0.9
        assert robust.result.relative_error(x) < naive.relative_error(x)

    def test_rejected_rows_are_low_weight_rows(self):
        phi, x, loc, y, stds = _problem(seed=4, noise=0.05)
        y = y.copy()
        y[3] += 40.0
        robust = robust_reconstruct(
            _make_fit(phi),
            y,
            loc,
            covariance=np.diag(stds**2),
            noise_stds=stds,
            mode="huber",
        )
        assert np.array_equal(
            robust.rejected_rows, np.flatnonzero(robust.weights < 0.5)
        )
        mask = robust.row_rejected()
        assert mask.dtype == bool and mask.size == y.size
        assert bool(mask[3])

    def test_huber_keeps_every_row(self):
        phi, x, loc, y, stds = _problem(seed=8, noise=0.05)
        y = y.copy()
        y[0] += 40.0
        robust = robust_reconstruct(
            _make_fit(phi),
            y,
            loc,
            covariance=np.diag(stds**2),
            noise_stds=stds,
            mode="huber",
        )
        assert bool(robust.kept.all())  # soft mode never hard-drops


class TestValidation:
    def test_modes_tuple(self):
        assert ROBUST_MODES == ("none", "trim", "huber")

    def test_unknown_mode(self):
        phi, x, loc, y, stds = _problem()
        with pytest.raises(ValueError, match="mode"):
            robust_reconstruct(_make_fit(phi), y, loc, mode="median")

    def test_bad_threshold(self):
        phi, x, loc, y, stds = _problem()
        with pytest.raises(ValueError, match="threshold"):
            robust_reconstruct(_make_fit(phi), y, loc, threshold=0.0)

    def test_bad_max_rounds(self):
        phi, x, loc, y, stds = _problem()
        with pytest.raises(ValueError, match="max_rounds"):
            robust_reconstruct(_make_fit(phi), y, loc, max_rounds=0)

    def test_robustfit_dataclass_roundtrip(self):
        phi, x, loc, y, stds = _problem(seed=6, noise=0.05)
        robust = robust_reconstruct(
            _make_fit(phi),
            y,
            loc,
            covariance=np.diag(stds**2),
            noise_stds=stds,
            mode="trim",
        )
        assert isinstance(robust, RobustFit)
        assert robust.mode == "trim"
        assert robust.scales.shape == y.shape
