"""Tests for repro.core.basis: orthonormality and synthesis semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import (
    BASIS_NAMES,
    basis_by_name,
    dct_basis,
    dct_vector,
    dft_basis,
    haar_basis,
    idct_vector,
    identity_basis,
    pca_basis,
)


class TestDCTBasis:
    def test_orthonormal(self):
        phi = dct_basis(32)
        assert np.allclose(phi.T @ phi, np.eye(32), atol=1e-10)

    def test_synthesis_matches_fast_path(self):
        rng = np.random.default_rng(0)
        alpha = rng.standard_normal(48)
        phi = dct_basis(48)
        assert np.allclose(phi @ alpha, idct_vector(alpha), atol=1e-10)

    def test_analysis_matches_fast_path(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(48)
        phi = dct_basis(48)
        assert np.allclose(phi.T @ x, dct_vector(x), atol=1e-10)

    def test_first_column_is_constant(self):
        phi = dct_basis(16)
        first = phi[:, 0]
        assert np.allclose(first, first[0])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            dct_basis(0)
        with pytest.raises(ValueError):
            dct_basis(-4)

    @given(st.integers(min_value=2, max_value=96))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_any_size(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        phi = dct_basis(n)
        assert np.allclose(phi @ (phi.T @ x), x, atol=1e-9)


class TestDFTBasis:
    def test_unitary(self):
        phi = dft_basis(16)
        assert np.allclose(phi @ phi.conj().T, np.eye(16), atol=1e-10)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            dft_basis(0)


class TestHaarBasis:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32, 64])
    def test_orthonormal(self, n):
        phi = haar_basis(n)
        assert np.allclose(phi.T @ phi, np.eye(n), atol=1e-10)

    def test_rejects_non_power_of_two(self):
        for bad in (3, 5, 6, 12, 100):
            with pytest.raises(ValueError):
                haar_basis(bad)

    def test_step_function_is_sparse(self):
        """A single step is K=O(log N)-sparse in Haar."""
        n = 32
        x = np.zeros(n)
        x[16:] = 1.0
        phi = haar_basis(n)
        alpha = phi.T @ x
        nonzero = np.count_nonzero(np.abs(alpha) > 1e-9)
        assert nonzero <= 2 + int(np.log2(n))


class TestIdentityBasis:
    def test_is_identity(self):
        assert np.array_equal(identity_basis(5), np.eye(5))


class TestPCABasis:
    def test_full_basis_is_orthogonal(self):
        rng = np.random.default_rng(7)
        traces = rng.standard_normal((10, 12))
        phi = pca_basis(traces)
        assert phi.shape == (12, 12)
        assert np.allclose(phi.T @ phi, np.eye(12), atol=1e-8)

    def test_leading_component_captures_dominant_direction(self):
        rng = np.random.default_rng(8)
        direction = np.ones(16) / 4.0
        traces = (
            np.outer(rng.standard_normal(40) * 10.0, direction)
            + rng.standard_normal((40, 16)) * 0.01
        )
        phi = pca_basis(traces)
        overlap = abs(phi[:, 0] @ direction)
        assert overlap > 0.99

    def test_traces_are_sparse_in_learned_basis(self):
        """Fields from a low-rank process need few PCA coefficients."""
        rng = np.random.default_rng(9)
        factors = rng.standard_normal((3, 20))
        weights = rng.standard_normal((30, 3))
        traces = weights @ factors
        phi = pca_basis(traces)
        sample = traces[0] - traces.mean(axis=0)
        alpha = phi.T @ sample
        energy = np.cumsum(np.sort(alpha**2)[::-1]) / np.sum(alpha**2)
        assert energy[2] > 0.999  # 3 components capture ~everything

    def test_energy_truncation_still_square(self):
        rng = np.random.default_rng(10)
        traces = rng.standard_normal((6, 10))
        phi = pca_basis(traces, energy=0.5)
        assert phi.shape == (10, 10)
        assert np.allclose(phi.T @ phi, np.eye(10), atol=1e-8)

    def test_invalid_energy(self):
        traces = np.ones((3, 4))
        with pytest.raises(ValueError):
            pca_basis(traces, energy=0.0)
        with pytest.raises(ValueError):
            pca_basis(traces, energy=1.5)


class TestBasisByName:
    @pytest.mark.parametrize("name", BASIS_NAMES)
    def test_known_names(self, name):
        n = 16  # power of two so haar works too
        phi = basis_by_name(name, n)
        assert phi.shape == (n, n)

    def test_case_insensitive(self):
        assert np.allclose(basis_by_name("DCT", 8), dct_basis(8))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown basis"):
            basis_by_name("fourier-bessel", 8)
