"""Tests for reconstruction metrics (identities and edge cases)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.metrics import (
    max_abs_error,
    mse,
    nmse,
    psnr_db,
    relative_error,
    rmse,
    snr_db,
    support_recovery_rate,
)

finite_arrays = arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=32),
    elements=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


class TestIdentities:
    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_zero_error_on_identical(self, x):
        assert mse(x, x) == 0.0
        assert nmse(x, x) == 0.0
        assert max_abs_error(x, x) == 0.0

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_rmse_is_sqrt_mse(self, x):
        y = x + 1.0
        assert rmse(x, y) == pytest.approx(np.sqrt(mse(x, y)))

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_relative_error_is_sqrt_nmse(self, x):
        y = x * 0.5
        assert relative_error(x, y) == pytest.approx(np.sqrt(nmse(x, y)))

    def test_snr_inverse_of_nmse(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.1, 2.0, 3.0])
        assert snr_db(x, y) == pytest.approx(-10 * np.log10(nmse(x, y)))


class TestEdgeCases:
    def test_zero_reference_nonzero_estimate(self):
        assert nmse(np.zeros(4), np.ones(4)) == float("inf")

    def test_zero_reference_zero_estimate(self):
        assert nmse(np.zeros(4), np.zeros(4)) == 0.0

    def test_perfect_snr_is_infinite(self):
        x = np.arange(5, dtype=float)
        assert snr_db(x, x) == float("inf")
        assert psnr_db(x, x) == float("inf")

    def test_flat_reference_psnr(self):
        x = np.ones(4)
        assert psnr_db(x, x + 0.1) == float("-inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.ones(3), np.ones(4))

    def test_empty_signals_rejected(self):
        with pytest.raises(ValueError):
            mse(np.array([]), np.array([]))

    def test_matrices_are_flattened(self):
        a = np.arange(6, dtype=float).reshape(2, 3)
        assert mse(a, a.copy()) == 0.0


class TestSupportRecovery:
    def test_full_recovery(self):
        assert support_recovery_rate(np.array([1, 5, 9]), np.array([9, 1, 5])) == 1.0

    def test_partial(self):
        assert support_recovery_rate(np.array([1, 2, 3, 4]), np.array([1, 2])) == 0.5

    def test_empty_truth_is_trivially_recovered(self):
        assert support_recovery_rate(np.array([]), np.array([3])) == 1.0

    def test_extra_estimates_do_not_help(self):
        rate = support_recovery_rate(np.array([1]), np.arange(100))
        assert rate == 1.0
