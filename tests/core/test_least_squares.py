"""Tests for OLS (eq. 11) and GLS (eq. 12) estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.least_squares import (
    condition_number,
    gls_solve,
    ols_solve,
    whiten,
)


class TestOLS:
    def test_exact_on_noiseless_system(self):
        rng = np.random.default_rng(0)
        phi = rng.standard_normal((20, 5))
        alpha_true = rng.standard_normal(5)
        alpha = ols_solve(phi, phi @ alpha_true)
        assert np.allclose(alpha, alpha_true, atol=1e-10)

    def test_square_system(self):
        rng = np.random.default_rng(1)
        phi = rng.standard_normal((5, 5)) + 2 * np.eye(5)
        alpha_true = rng.standard_normal(5)
        assert np.allclose(
            ols_solve(phi, phi @ alpha_true), alpha_true, atol=1e-8
        )

    def test_minimises_residual(self):
        rng = np.random.default_rng(2)
        phi = rng.standard_normal((30, 4))
        y = rng.standard_normal(30)
        alpha = ols_solve(phi, y)
        base = np.linalg.norm(y - phi @ alpha)
        for _ in range(10):
            perturbed = alpha + rng.standard_normal(4) * 0.1
            assert np.linalg.norm(y - phi @ perturbed) >= base - 1e-12

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ols_solve(np.ones((3, 2)), np.ones(4))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ols_solve(np.ones(3), np.ones(3))

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_projection_idempotent(self, k):
        """Refitting the OLS reconstruction returns the same coefficients."""
        rng = np.random.default_rng(k)
        phi = rng.standard_normal((20, k))
        y = rng.standard_normal(20)
        alpha = ols_solve(phi, y)
        alpha2 = ols_solve(phi, phi @ alpha)
        assert np.allclose(alpha, alpha2, atol=1e-8)


class TestWhiten:
    def test_scalar_variance(self):
        phi = np.ones((3, 2))
        y = np.ones(3)
        phi_w, y_w = whiten(phi, y, np.asarray(4.0))
        assert np.allclose(phi_w, phi / 2.0)
        assert np.allclose(y_w, y / 2.0)

    def test_vector_variance(self):
        phi = np.ones((2, 1))
        y = np.array([1.0, 2.0])
        phi_w, y_w = whiten(phi, y, np.array([1.0, 4.0]))
        assert np.allclose(y_w, [1.0, 1.0])

    def test_full_matrix_reduces_to_diag(self):
        rng = np.random.default_rng(3)
        phi = rng.standard_normal((4, 2))
        y = rng.standard_normal(4)
        variances = np.array([1.0, 2.0, 3.0, 4.0])
        via_vector = whiten(phi, y, variances)
        via_matrix = whiten(phi, y, np.diag(variances))
        assert np.allclose(via_vector[0], via_matrix[0], atol=1e-10)
        assert np.allclose(via_vector[1], via_matrix[1], atol=1e-10)

    def test_invalid_variances(self):
        phi, y = np.ones((2, 1)), np.ones(2)
        with pytest.raises(ValueError):
            whiten(phi, y, np.asarray(0.0))
        with pytest.raises(ValueError):
            whiten(phi, y, np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            whiten(phi, y, np.array([1.0, 1.0, 1.0]))


class TestGLS:
    def test_identity_covariance_equals_ols(self):
        rng = np.random.default_rng(4)
        phi = rng.standard_normal((15, 3))
        y = rng.standard_normal(15)
        assert np.allclose(
            gls_solve(phi, y, np.eye(15)), ols_solve(phi, y), atol=1e-10
        )

    def test_beats_ols_under_heteroscedastic_noise(self):
        """Statistical test: with wildly different sensor noise, GLS's
        estimate error is smaller than OLS's on average (eq. 12's point)."""
        rng = np.random.default_rng(5)
        m, k = 40, 4
        stds = np.where(np.arange(m) < m // 2, 0.01, 5.0)
        gls_err = ols_err = 0.0
        for _ in range(30):
            phi = rng.standard_normal((m, k))
            alpha_true = rng.standard_normal(k)
            y = phi @ alpha_true + rng.standard_normal(m) * stds
            gls_err += np.linalg.norm(
                gls_solve(phi, y, stds**2) - alpha_true
            )
            ols_err += np.linalg.norm(ols_solve(phi, y) - alpha_true)
        assert gls_err < ols_err

    def test_downweights_noisy_sensor(self):
        """One wildly-off noisy sensor barely moves the GLS estimate."""
        phi = np.ones((3, 1))
        y = np.array([1.0, 1.0, 100.0])
        variances = np.array([1.0, 1.0, 1e6])
        alpha = gls_solve(phi, y, variances)
        assert abs(alpha[0] - 1.0) < 0.1


class TestConditionNumber:
    def test_orthonormal_is_one(self):
        q, _ = np.linalg.qr(np.random.default_rng(6).standard_normal((8, 4)))
        assert condition_number(q) == pytest.approx(1.0, abs=1e-8)

    def test_grows_with_near_dependence(self):
        base = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1e-8]])
        nearly = np.array([[1.0, 1.0], [1.0, 1.0 + 1e-8], [1.0, 1.0]])
        assert condition_number(nearly) > condition_number(base)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            condition_number(np.zeros((0, 0)))
