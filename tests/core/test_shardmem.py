"""Shared-memory segment lifecycle and the cross-process checksum.

Covers the ownership rules in :mod:`repro.core.shardmem`'s docstring:
the exporting parent is the only unlinker, workers only close, a
crashed worker never leaks ``/dev/shm``, and the sanitizer's checksum
invariant survives a multiprocess fan-out.  Also pins the
:func:`repro.core.registry.spawn_shard_seeds` / ``shard_rng`` stream
hygiene that reprolint rule RPR009 exists to enforce.
"""

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context, shared_memory

import numpy as np
import pytest

from repro.analysis import contracts
from repro.core.registry import shard_rng, spawn_shard_seeds
from repro.core.shardmem import (
    attach_shared_array,
    attached_segment_names,
    close_attachments,
    export_shared_array,
    exported_segment_names,
    release_shared_arrays,
    verify_spec,
)


def _shm_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


@pytest.fixture
def payload():
    rng = np.random.default_rng(42)
    return rng.normal(size=(16, 16))


# -- worker entry points (module-level so fork workers can unpickle) ----


def _worker_row_sum(args):
    spec, row = args
    view = attach_shared_array(spec)
    return float(view[row].sum())


def _worker_die(_):
    os._exit(1)


def _worker_verify(spec):
    attach_shared_array(spec)
    verify_spec(spec, context="worker-side verify")
    return True


class TestExportAttach:
    def test_roundtrip_and_read_only(self, payload):
        spec = export_shared_array("roundtrip", payload)
        try:
            assert spec.shape == (16, 16)
            assert spec.nbytes == payload.nbytes
            assert _shm_exists(spec.name)
            view = attach_shared_array(spec)
            assert np.array_equal(view, payload)
            with pytest.raises(ValueError):
                view[0, 0] = 1.0
            # Attachments are cached per segment name.
            assert attach_shared_array(spec) is view
            assert spec.name in attached_segment_names()
        finally:
            close_attachments()
            release_shared_arrays([spec.name])

    def test_same_tag_exports_distinct_segments(self, payload):
        a = export_shared_array("dup", payload)
        b = export_shared_array("dup", payload)
        try:
            assert a.name != b.name
            assert a.sha1 == b.sha1  # same bytes, same digest
        finally:
            release_shared_arrays([a.name, b.name])

    def test_attach_rejects_tampered_segment_under_sanitizer(self, payload):
        spec = export_shared_array("tamper-attach", payload)
        was_enabled = contracts.enabled()
        handle = shared_memory.SharedMemory(name=spec.name)
        try:
            handle.buf[0] ^= 0xFF
            contracts.enable()
            with pytest.raises(contracts.ContractViolation):
                attach_shared_array(spec)
        finally:
            contracts.enable(was_enabled)
            handle.close()
            release_shared_arrays([spec.name])


class TestVerifySpec:
    def test_verify_passes_then_catches_mutation(self, payload):
        spec = export_shared_array("tamper-verify", payload)
        handle = shared_memory.SharedMemory(name=spec.name)
        try:
            verify_spec(spec)  # clean bytes: no complaint
            handle.buf[-1] ^= 0x01
            with pytest.raises(contracts.ContractViolation):
                verify_spec(spec, context="after tamper")
        finally:
            handle.close()
            release_shared_arrays([spec.name])

    def test_verify_unmapped_segment_raises(self, payload):
        spec = export_shared_array("gone", payload)
        release_shared_arrays([spec.name])
        with pytest.raises(KeyError):
            verify_spec(spec)


class TestRelease:
    def test_release_unlinks_and_is_idempotent(self, payload):
        spec = export_shared_array("release", payload)
        assert _shm_exists(spec.name)
        assert release_shared_arrays([spec.name]) == 1
        assert not _shm_exists(spec.name)
        assert spec.name not in exported_segment_names()
        assert release_shared_arrays([spec.name]) == 0

    def test_selective_release_spares_other_segments(self, payload):
        a = export_shared_array("keep", payload)
        b = export_shared_array("drop", payload)
        try:
            assert release_shared_arrays([b.name]) == 1
            assert _shm_exists(a.name)
            assert not _shm_exists(b.name)
        finally:
            release_shared_arrays([a.name])


class TestMultiprocess:
    def test_fanout_then_parent_verify(self, payload):
        spec = export_shared_array("fanout", payload)
        try:
            with ProcessPoolExecutor(
                max_workers=2, mp_context=get_context("fork")
            ) as pool:
                sums = list(
                    pool.map(_worker_row_sum, [(spec, r) for r in range(16)])
                )
            assert np.allclose(sums, payload.sum(axis=1))
            # Workers attached and read; nothing may have mutated the
            # segment — the cross-process checksum invariant.
            verify_spec(spec, context="after fan-out")
        finally:
            release_shared_arrays([spec.name])
        assert not _shm_exists(spec.name)

    def test_worker_side_verify_spec(self, payload):
        spec = export_shared_array("worker-verify", payload)
        try:
            with ProcessPoolExecutor(
                max_workers=1, mp_context=get_context("fork")
            ) as pool:
                assert pool.submit(_worker_verify, spec).result()
        finally:
            release_shared_arrays([spec.name])

    def test_worker_crash_does_not_leak_segments(self, payload):
        spec = export_shared_array("crashy", payload)
        try:
            with pytest.raises(BrokenProcessPool):
                with ProcessPoolExecutor(
                    max_workers=1, mp_context=get_context("fork")
                ) as pool:
                    pool.submit(_worker_die, spec).result()
        finally:
            # The parent owns the segment and survives the worker: the
            # unlink must still succeed and /dev/shm must come up clean.
            assert release_shared_arrays([spec.name]) == 1
        assert not _shm_exists(spec.name)

    def test_guarded_attachment_feeds_verify_shared_arrays(self, payload):
        was_enabled = contracts.enabled()
        contracts.enable()
        spec = export_shared_array("guarded", payload)
        try:
            view = attach_shared_array(spec)
            assert np.array_equal(view, payload)
            # attach registered the view with the in-process guard
            # table, so the generic sweep re-checksums it too.
            contracts.verify_shared_arrays(context="shardmem test")
        finally:
            contracts.enable(was_enabled)
            contracts.reset_guards()
            close_attachments()
            release_shared_arrays([spec.name])


class TestShardSeedHelpers:
    def test_spawn_shard_seeds_deterministic_and_distinct(self):
        a = spawn_shard_seeds(1234, 8)
        b = spawn_shard_seeds(1234, 8)
        assert len(a) == len(b) == 8
        for seq_a, seq_b in zip(a, b):
            assert np.array_equal(
                seq_a.generate_state(4), seq_b.generate_state(4)
            )
        states = {tuple(seq.generate_state(4)) for seq in a}
        assert len(states) == 8  # streams do not collide

    def test_spawn_accepts_seed_sequence_root(self):
        root = np.random.SeedSequence(77)
        a = spawn_shard_seeds(root, 3)
        b = np.random.SeedSequence(77).spawn(3)
        for seq_a, seq_b in zip(a, b):
            assert np.array_equal(
                seq_a.generate_state(4), seq_b.generate_state(4)
            )

    def test_shard_rng_matches_spawned_stream(self):
        direct = np.random.default_rng(spawn_shard_seeds(5, 4)[2])
        shard = shard_rng(5, 2, 4)
        assert np.array_equal(
            direct.standard_normal(16), shard.standard_normal(16)
        )

    def test_shard_rng_validates_index(self):
        with pytest.raises(ValueError):
            shard_rng(5, 4, 4)
        with pytest.raises(ValueError):
            shard_rng(5, -1, 4)
        with pytest.raises(ValueError):
            spawn_shard_seeds(5, -1)
