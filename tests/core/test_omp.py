"""Tests for orthogonal matching pursuit (paper eq. 13)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import dct_basis
from repro.core.omp import omp
from repro.core.sampling import gaussian_sensing_matrix, random_locations


def _sparse_problem(n, k, m, seed, low_freq=True):
    rng = np.random.default_rng(seed)
    phi = dct_basis(n)
    pool = n // 4 if low_freq else n
    support = rng.choice(pool, size=k, replace=False)
    alpha = np.zeros(n)
    alpha[support] = (rng.uniform(1.0, 3.0, k)) * rng.choice([-1, 1], k)
    x = phi @ alpha
    loc = random_locations(n, m, rng)
    return phi, alpha, x, loc, support


class TestExactRecovery:
    def test_recovers_sparse_signal(self):
        phi, alpha, x, loc, support = _sparse_problem(64, 4, 24, seed=0)
        result = omp(phi[loc, :], x[loc], sparsity=4)
        assert np.allclose(result.coefficients, alpha, atol=1e-6)
        assert set(result.support.tolist()) == set(support.tolist())

    def test_gaussian_measurements(self):
        rng = np.random.default_rng(1)
        n, k, m = 128, 6, 48
        alpha = np.zeros(n)
        support = rng.choice(n, k, replace=False)
        alpha[support] = rng.standard_normal(k) * 4 + np.sign(
            rng.standard_normal(k)
        )
        a = gaussian_sensing_matrix(m, n, rng)
        result = omp(a, a @ alpha, sparsity=k)
        assert np.allclose(result.coefficients, alpha, atol=1e-5)

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_recovery_across_sparsities(self, k):
        phi, alpha, x, loc, _ = _sparse_problem(64, k, 40, seed=100 + k)
        result = omp(phi[loc, :], x[loc], sparsity=k)
        rel = np.linalg.norm(result.coefficients - alpha) / np.linalg.norm(alpha)
        assert rel < 1e-5


class TestBehaviour:
    def test_residual_history_non_increasing(self):
        phi, _, x, loc, _ = _sparse_problem(64, 8, 30, seed=2)
        noisy = x[loc] + np.random.default_rng(3).standard_normal(30) * 0.1
        result = omp(phi[loc, :], noisy, sparsity=10)
        history = result.residual_history
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(history, history[1:])
        )

    def test_early_stop_on_tolerance(self):
        phi, alpha, x, loc, _ = _sparse_problem(64, 2, 30, seed=4)
        result = omp(phi[loc, :], x[loc], sparsity=20, tol=1e-8)
        assert result.iterations <= 4  # stops far before 20

    def test_support_has_no_duplicates(self):
        phi, _, x, loc, _ = _sparse_problem(64, 6, 30, seed=5)
        result = omp(phi[loc, :], x[loc], sparsity=15)
        assert len(set(result.support.tolist())) == result.support.size

    def test_zero_signal(self):
        phi = dct_basis(32)
        result = omp(phi[:10, :], np.zeros(10), sparsity=3)
        assert np.allclose(result.coefficients, 0.0)
        assert result.residual_norm == pytest.approx(0.0)

    def test_gls_covariance_path(self):
        """With one garbage-noise measurement, the GLS refit stays close
        to the truth while OLS drifts."""
        rng = np.random.default_rng(6)
        phi, alpha, x, loc, _ = _sparse_problem(64, 3, 20, seed=6)
        noise = np.zeros(20)
        noise[0] = 25.0  # a broken sensor
        stds = np.full(20, 1e-3)
        stds[0] = 50.0
        y = x[loc] + noise
        clean = omp(phi[loc, :], y, sparsity=3, covariance=np.diag(stds**2))
        dirty = omp(phi[loc, :], y, sparsity=3)
        err_gls = np.linalg.norm(clean.coefficients - alpha)
        err_ols = np.linalg.norm(dirty.coefficients - alpha)
        assert err_gls < err_ols


class TestValidation:
    def test_bad_sparsity(self):
        phi = dct_basis(16)
        with pytest.raises(ValueError):
            omp(phi[:8, :], np.ones(8), sparsity=0)
        with pytest.raises(ValueError):
            omp(phi[:8, :], np.ones(8), sparsity=9)  # > M

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            omp(np.ones((4, 8)), np.ones(5), sparsity=2)

    def test_non_2d_dictionary(self):
        with pytest.raises(ValueError):
            omp(np.ones(8), np.ones(8), sparsity=2)
