"""Tests for repro.core.operators and the shared basis registry.

The matrix-free operators must be *exact* stand-ins for the dense
synthesis matrices — synthesis, analysis and sampled rows all agree to
floating-point round-off — or the fast solver path would silently drift
from the reference algorithm.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import dct2_basis, dct_basis
from repro.core.operators import (
    BasisOperator,
    DCT2Operator,
    DCTOperator,
    dct_sampled_rows,
)
from repro.core.registry import (
    clear_registry,
    has_operator,
    registry_info,
    shared_basis,
    shared_dct2_basis,
    shared_dct2_operator,
    shared_operator,
)


class TestDCTOperator:
    @pytest.mark.parametrize("n", [1, 2, 7, 16, 33, 128])
    def test_to_dense_matches_basis(self, n):
        assert np.allclose(
            DCTOperator(n).to_dense(), dct_basis(n), atol=1e-12
        )

    def test_synthesize_matches_dense(self):
        rng = np.random.default_rng(0)
        n = 64
        op = DCTOperator(n)
        phi = dct_basis(n)
        alpha = rng.standard_normal(n)
        assert np.allclose(op.synthesize(alpha), phi @ alpha, atol=1e-12)

    def test_analyze_matches_dense(self):
        rng = np.random.default_rng(1)
        n = 64
        op = DCTOperator(n)
        phi = dct_basis(n)
        x = rng.standard_normal(n)
        assert np.allclose(op.analyze(x), phi.T @ x, atol=1e-12)

    def test_round_trip_identity(self):
        rng = np.random.default_rng(2)
        op = DCTOperator(50)
        x = rng.standard_normal(50)
        assert np.allclose(op.synthesize(op.analyze(x)), x, atol=1e-10)

    @given(
        n=st.integers(min_value=1, max_value=96),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_sampled_rows_match_dense_rows(self, n, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, n + 1))
        rows = rng.choice(n, size=m, replace=False)
        assert np.allclose(
            dct_sampled_rows(n, rows), dct_basis(n)[rows, :], atol=1e-12
        )

    def test_shape_attribute(self):
        op = DCTOperator(12)
        assert op.n == 12 and op.shape == (12, 12)
        assert isinstance(op, BasisOperator)


class TestDCT2Operator:
    @pytest.mark.parametrize("w,h", [(1, 1), (3, 5), (8, 8), (6, 11)])
    def test_to_dense_matches_kron(self, w, h):
        assert np.allclose(
            DCT2Operator(w, h).to_dense(), dct2_basis(w, h), atol=1e-12
        )

    def test_synthesize_matches_dense(self):
        rng = np.random.default_rng(3)
        w, h = 7, 9
        op = DCT2Operator(w, h)
        phi = dct2_basis(w, h)
        alpha = rng.standard_normal(w * h)
        assert np.allclose(op.synthesize(alpha), phi @ alpha, atol=1e-12)

    def test_analyze_matches_dense(self):
        rng = np.random.default_rng(4)
        w, h = 7, 9
        op = DCT2Operator(w, h)
        phi = dct2_basis(w, h)
        x = rng.standard_normal(w * h)
        assert np.allclose(op.analyze(x), phi.T @ x, atol=1e-12)

    @given(
        w=st.integers(min_value=1, max_value=9),
        h=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_sampled_rows_match_dense_rows(self, w, h, seed):
        rng = np.random.default_rng(seed)
        n = w * h
        m = int(rng.integers(1, n + 1))
        rows = rng.choice(n, size=m, replace=False)
        assert np.allclose(
            DCT2Operator(w, h).rows(rows),
            dct2_basis(w, h)[rows, :],
            atol=1e-12,
        )

    def test_never_materialises_dense_in_rows(self):
        # Sampled rows of a large field must stay O(M*N): with
        # N = 128*128 = 16384 the dense basis would be 2 GiB, so simply
        # succeeding here demonstrates the matrix-free path.
        op = DCT2Operator(128, 128)
        rows = op.rows(np.array([0, 5000, 16383]))
        assert rows.shape == (3, 16384)
        alpha = np.zeros(16384)
        alpha[3] = 1.0
        x = op.synthesize(alpha)
        assert np.isclose(float(alpha @ op.analyze(x)), 1.0, atol=1e-9)


class TestRegistry:
    def test_shared_basis_is_memoised_and_readonly(self):
        a = shared_basis("dct", 24)
        b = shared_basis("dct", 24)
        assert a is b
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0, 0] = 1.0

    def test_shared_dct2_basis_is_memoised(self):
        assert shared_dct2_basis(4, 6) is shared_dct2_basis(4, 6)
        assert shared_dct2_basis(4, 6) is not shared_dct2_basis(6, 4)

    def test_shared_operators_are_memoised(self):
        assert shared_operator("dct", 32) is shared_operator("dct", 32)
        assert shared_dct2_operator(5, 7) is shared_dct2_operator(5, 7)

    def test_has_operator(self):
        assert has_operator("dct")
        assert not has_operator("haar")
        with pytest.raises(ValueError):
            shared_operator("haar", 16)

    def test_registry_info_and_clear(self):
        clear_registry()
        shared_basis("identity", 8)
        info = registry_info()
        assert info["basis"].misses >= 1
        shared_basis("identity", 8)
        assert registry_info()["basis"].hits >= 1
        clear_registry()
        assert registry_info()["basis"].currsize == 0
