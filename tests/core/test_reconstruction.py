"""Tests for the high-level reconstruct() dispatch API."""

import numpy as np
import pytest

from repro.core.basis import dct_basis
from repro.core.reconstruction import SOLVERS, reconstruct
from repro.core.sampling import random_locations


@pytest.fixture
def problem():
    rng = np.random.default_rng(0)
    n = 64
    phi = dct_basis(n)
    alpha = np.zeros(n)
    support = rng.choice(12, size=4, replace=False)  # low-frequency
    alpha[support] = rng.uniform(1.0, 3.0, 4) * rng.choice([-1, 1], 4)
    x = phi @ alpha
    loc = random_locations(n, 32, rng)
    return phi, x, loc


class TestDispatch:
    @pytest.mark.parametrize("solver", ["chs", "omp", "cosamp", "iht", "l1"])
    def test_sparse_solvers_recover(self, problem, solver):
        phi, x, loc = problem
        result = reconstruct(x[loc], loc, phi, solver=solver, sparsity=6)
        assert result.relative_error(x) < 1e-4
        assert result.solver == solver
        assert result.m == 32 and result.n == 64

    def test_l1_noisy(self, problem):
        phi, x, loc = problem
        rng = np.random.default_rng(1)
        y = x[loc] + rng.uniform(-0.02, 0.02, loc.size)
        result = reconstruct(
            y, loc, phi, solver="l1-noisy", noise_budget=0.03
        )
        assert result.relative_error(x) < 0.05

    def test_ols_low_frequency_model(self, problem):
        phi, x, loc = problem
        # The signal lives in the first 12 DCT columns, so OLS on the
        # leading K=16 columns is exact.
        result = reconstruct(x[loc], loc, phi, solver="ols", sparsity=16)
        assert result.relative_error(x) < 1e-8

    def test_gls_requires_covariance(self, problem):
        phi, x, loc = problem
        with pytest.raises(ValueError, match="covariance"):
            reconstruct(x[loc], loc, phi, solver="gls", sparsity=8)

    def test_gls_with_covariance(self, problem):
        phi, x, loc = problem
        cov = np.eye(loc.size) * 0.01
        result = reconstruct(
            x[loc], loc, phi, solver="gls", sparsity=16, covariance=cov
        )
        assert result.relative_error(x) < 1e-6

    def test_unknown_solver(self, problem):
        phi, x, loc = problem
        with pytest.raises(ValueError, match="unknown solver"):
            reconstruct(x[loc], loc, phi, solver="magic")

    def test_solver_list_is_complete(self):
        assert set(SOLVERS) == {
            "chs", "omp", "cosamp", "iht", "l1", "l1-noisy", "ols", "gls",
        }


class TestResultRecord:
    def test_compression_ratio(self, problem):
        phi, x, loc = problem
        result = reconstruct(x[loc], loc, phi, solver="omp", sparsity=4)
        assert result.compression_ratio == pytest.approx(0.5)

    def test_metrics_accessors(self, problem):
        phi, x, loc = problem
        result = reconstruct(x[loc], loc, phi, solver="omp", sparsity=4)
        assert result.nmse(x) == pytest.approx(result.relative_error(x) ** 2)
        assert result.snr_db(x) > 40

    def test_default_sparsity_is_half_m(self, problem):
        phi, x, loc = problem
        result = reconstruct(x[loc], loc, phi, solver="omp")
        assert result.support.size <= loc.size // 2


class TestValidation:
    def test_rectangular_phi_rejected(self):
        with pytest.raises(ValueError):
            reconstruct(np.ones(2), np.array([0, 1]), np.ones((4, 3)))

    def test_measurement_count_mismatch(self):
        with pytest.raises(ValueError):
            reconstruct(np.ones(3), np.array([0, 1]), np.eye(8))

    def test_empty_measurements(self):
        with pytest.raises(ValueError):
            reconstruct(np.array([]), np.array([], dtype=int), np.eye(8))
