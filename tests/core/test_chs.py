"""Tests for the Compressive Heterogeneous Sensing algorithm (Fig. 6)."""

import numpy as np
import pytest

from repro.core.basis import dct_basis
from repro.core.chs import (
    chs,
    linear_interpolate,
    nearest_interpolate,
    zero_fill_interpolate,
)
from repro.core.sampling import random_locations


def _smooth_problem(n=64, k=4, m=28, seed=0):
    """K-sparse in the low-frequency DCT band — the paper's field regime."""
    rng = np.random.default_rng(seed)
    phi = dct_basis(n)
    support = rng.choice(n // 6, size=k, replace=False)
    alpha = np.zeros(n)
    alpha[support] = rng.uniform(1.0, 3.0, k) * rng.choice([-1, 1], k)
    x = phi @ alpha
    loc = random_locations(n, m, rng)
    return phi, alpha, x, loc


class TestInterpolators:
    def test_zero_fill_places_values(self):
        out = zero_fill_interpolate(np.array([2.0, 3.0]), np.array([1, 4]), 6)
        assert np.array_equal(out, [0, 2, 0, 0, 3, 0])

    def test_linear_passes_through_samples(self):
        loc = np.array([0, 5, 9])
        vals = np.array([1.0, -1.0, 4.0])
        out = linear_interpolate(vals, loc, 10)
        assert np.allclose(out[loc], vals)

    def test_nearest_is_piecewise_constant(self):
        out = nearest_interpolate(np.array([1.0, 9.0]), np.array([0, 9]), 10)
        assert set(np.unique(out).tolist()) == {1.0, 9.0}


class TestReconstruction:
    def test_recovers_smooth_sparse_field(self):
        phi, alpha, x, loc = _smooth_problem()
        result = chs(phi, x[loc], loc, max_sparsity=10)
        rel = np.linalg.norm(result.reconstruction - x) / np.linalg.norm(x)
        assert rel < 1e-6

    def test_linear_interpolator_works_on_smooth_fields(self):
        phi, alpha, x, loc = _smooth_problem(m=36, seed=1)
        result = chs(
            phi, x[loc], loc, max_sparsity=12,
            interpolator=linear_interpolate,
        )
        rel = np.linalg.norm(result.reconstruction - x) / np.linalg.norm(x)
        assert rel < 0.1

    def test_outputs_are_consistent(self):
        """x_hat == Phi[:, J] @ alpha_K == Phi @ coefficients (Fig. 6 step 4)."""
        phi, _, x, loc = _smooth_problem(seed=2)
        result = chs(phi, x[loc], loc, max_sparsity=8)
        assert np.allclose(
            result.reconstruction, phi @ result.coefficients, atol=1e-8
        )

    def test_sensing_matrix_shape(self):
        phi, _, x, loc = _smooth_problem(seed=3)
        result = chs(phi, x[loc], loc, max_sparsity=8)
        assert result.sensing_matrix.shape == (loc.size, result.support.size)

    def test_respects_max_sparsity(self):
        phi, _, x, loc = _smooth_problem(k=8, seed=4)
        result = chs(phi, x[loc], loc, max_sparsity=5, batch_size=2)
        assert result.support.size <= 5

    def test_default_sparsity_keeps_system_overdetermined(self):
        phi, _, x, loc = _smooth_problem(m=12, seed=5)
        result = chs(phi, x[loc], loc)
        assert result.support.size < loc.size  # K < M (paper requirement)

    def test_batch_size_one_mimics_omp_style_growth(self):
        phi, _, x, loc = _smooth_problem(seed=6)
        result = chs(phi, x[loc], loc, max_sparsity=6, batch_size=1)
        assert result.iterations == len(result.residual_history)
        assert result.support.size <= 6

    def test_residual_tolerance_stop(self):
        phi, _, x, loc = _smooth_problem(k=2, seed=7)
        result = chs(phi, x[loc], loc, max_sparsity=20, batch_size=2, tol=1e-8)
        assert result.support.size <= 8  # stopped well before the cap

    def test_gls_refit_with_heterogeneous_noise(self):
        phi, alpha, x, loc = _smooth_problem(m=32, seed=8)
        rng = np.random.default_rng(9)
        stds = np.where(np.arange(loc.size) % 2 == 0, 0.01, 2.0)
        y = x[loc] + rng.standard_normal(loc.size) * stds
        with_gls = chs(
            phi, y, loc, max_sparsity=6, covariance=np.diag(stds**2)
        )
        without = chs(phi, y, loc, max_sparsity=6)
        err_gls = np.linalg.norm(with_gls.reconstruction - x)
        err_ols = np.linalg.norm(without.reconstruction - x)
        assert err_gls < err_ols


class TestValidation:
    def test_requires_square_basis(self):
        with pytest.raises(ValueError):
            chs(np.ones((4, 3)), np.ones(2), np.array([0, 1]))

    def test_measurement_location_mismatch(self):
        with pytest.raises(ValueError):
            chs(np.eye(8), np.ones(3), np.array([0, 1]))

    def test_location_out_of_range(self):
        with pytest.raises(IndexError):
            chs(np.eye(8), np.ones(2), np.array([0, 8]))

    def test_empty_measurements(self):
        with pytest.raises(ValueError):
            chs(np.eye(8), np.array([]), np.array([], dtype=int))

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            chs(np.eye(8), np.ones(2), np.array([0, 1]), batch_size=0)
