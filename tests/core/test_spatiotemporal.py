"""Tests for joint spatio-temporal compressive sensing."""

import numpy as np
import pytest

from repro.core import metrics
from repro.core.basis import dct2_basis
from repro.core.spatiotemporal import (
    SpaceTimeSample,
    reconstruct_spacetime,
    spacetime_index,
)
from repro.fields.generators import smooth_field
from repro.fields.temporal import ar1_evolution, evolve_field


def _block(w=8, h=8, t=8, rho=0.97, seed=0):
    initial = smooth_field(w, h, cutoff=0.2, amplitude=4.0, offset=20.0, rng=seed)
    trace = evolve_field(
        initial, ar1_evolution(rho=rho, innovation_std=0.05),
        steps=t - 1, rng=seed + 1,
    )
    return trace.matrix()  # (T, N)


def _scatter_samples(block, m, seed):
    t, n = block.shape
    rng = np.random.default_rng(seed)
    pairs = set()
    while len(pairs) < m:
        pairs.add((int(rng.integers(t)), int(rng.integers(n))))
    return [SpaceTimeSample(ts, k, block[ts, k]) for ts, k in sorted(pairs)]


class TestSpacetimeIndex:
    def test_layout(self):
        assert spacetime_index(0, 0, n=10) == 0
        assert spacetime_index(2, 3, n=10) == 23

    def test_bounds(self):
        with pytest.raises(IndexError):
            spacetime_index(0, 10, n=10)
        with pytest.raises(IndexError):
            spacetime_index(-1, 0, n=10)


class TestJointReconstruction:
    def test_recovers_correlated_block(self):
        block = _block()
        samples = _scatter_samples(block, 96, seed=2)
        result = reconstruct_spacetime(
            samples, *block.shape, phi_space=dct2_basis(8, 8), sparsity=24
        )
        err = metrics.relative_error(block.ravel(), result.block.ravel())
        assert err < 0.02
        assert result.m == 96

    def test_beats_per_snapshot_at_equal_budget(self):
        """The paper's joint spatio-temporal claim: exploiting temporal
        correlation beats snapshot-by-snapshot reconstruction."""
        from repro.core.reconstruction import reconstruct
        from repro.core.sampling import random_locations

        block = _block(seed=3)
        t, n = block.shape
        budget = 96
        phi_space = dct2_basis(8, 8)

        samples = _scatter_samples(block, budget, seed=4)
        joint = reconstruct_spacetime(
            samples, t, n, phi_space=phi_space, sparsity=24
        )
        joint_err = metrics.relative_error(block.ravel(), joint.block.ravel())

        per = []
        for ts in range(t):
            loc = random_locations(n, budget // t, 100 + ts)
            r = reconstruct(
                block[ts, loc], loc, phi_space, solver="chs",
                sparsity=6, center=True,
            )
            per.append(r.x_hat)
        per_err = metrics.relative_error(
            block.ravel(), np.asarray(per).ravel()
        )
        assert joint_err < per_err

    def test_handles_snapshots_with_zero_samples(self):
        """Temporal modes fill in a snapshot nobody sampled at all."""
        block = _block(seed=5)
        t, n = block.shape
        rng = np.random.default_rng(6)
        samples = []
        for ts in range(t):
            if ts == 3:
                continue  # nobody reported during snapshot 3
            for k in rng.choice(n, size=14, replace=False).tolist():
                samples.append(SpaceTimeSample(ts, int(k), block[ts, int(k)]))
        result = reconstruct_spacetime(
            samples, t, n, phi_space=dct2_basis(8, 8), sparsity=20
        )
        missing_err = metrics.relative_error(block[3], result.block[3])
        assert missing_err < 0.05

    def test_duplicate_samples_rejected(self):
        block = _block(seed=7)
        s = SpaceTimeSample(0, 0, block[0, 0])
        with pytest.raises(ValueError, match="duplicate"):
            reconstruct_spacetime([s, s], *block.shape)

    def test_out_of_range_samples(self):
        block = _block(seed=8)
        t, n = block.shape
        with pytest.raises(IndexError):
            reconstruct_spacetime(
                [SpaceTimeSample(t, 0, 1.0)], t, n
            )
        with pytest.raises(IndexError):
            reconstruct_spacetime(
                [SpaceTimeSample(0, n, 1.0)], t, n
            )

    def test_empty_samples(self):
        with pytest.raises(ValueError):
            reconstruct_spacetime([], 4, 16)

    def test_default_spatial_basis(self):
        block = _block(seed=9)
        samples = _scatter_samples(block, 80, seed=10)
        result = reconstruct_spacetime(samples, *block.shape, sparsity=20)
        assert result.block.shape == block.shape
