"""Scale and reproducibility system tests.

The paper's pitch is scalability; these tests pin down that (a) a
2048-phone deployment builds and senses in well under a second of
wall-clock per round, and (b) the entire stochastic pipeline is
bit-reproducible from its seeds.
"""

import time

import numpy as np

from repro import (
    Environment,
    HierarchyConfig,
    SenseDroid,
    urban_temperature_field,
)


def _build(seed=42):
    truth = urban_temperature_field(64, 32, n_heat_islands=5, rng=3)
    env = Environment(fields={"temperature": truth})
    return truth, SenseDroid(
        env,
        hierarchy_config=HierarchyConfig(
            zones_x=8, zones_y=4, nodes_per_nanocloud=64
        ),
        rng=seed,
    )


class TestScale:
    def test_two_thousand_node_deployment(self):
        truth, system = _build()
        assert system.hierarchy.n_nodes == 2048
        start = time.perf_counter()
        system.sense_field()
        estimate = system.sense_field()
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0  # generous CI bound; ~0.2 s locally
        assert system.estimate_error(estimate) < 0.05
        # Compression is real at scale.
        assert estimate.total_measurements < 0.6 * truth.n

    def test_busiest_endpoint_stays_bounded(self):
        _, system = _build()
        system.sense_field()
        system.sense_field()
        busiest = max(
            system.hierarchy.bus.endpoint(a).stats.messages
            for a in system.hierarchy.bus.addresses
        )
        # 32 zone brokers, 2048 nodes: no endpoint near O(total traffic).
        assert busiest < system.hierarchy.bus.stats.messages / 8


class TestReproducibility:
    def test_identical_seeds_identical_estimates(self):
        _, a = _build(seed=7)
        _, b = _build(seed=7)
        est_a = a.sense_field()
        est_b = b.sense_field()
        assert np.array_equal(est_a.field.grid, est_b.field.grid)
        assert est_a.total_measurements == est_b.total_measurements
        assert a.hierarchy.bus.stats.messages == b.hierarchy.bus.stats.messages

    def test_different_seeds_differ(self):
        _, a = _build(seed=7)
        _, b = _build(seed=8)
        est_a = a.sense_field()
        est_b = b.sense_field()
        assert not np.array_equal(est_a.field.grid, est_b.field.grid)
