"""Tests for energy-efficient upload strategies ([16]-style)."""

import numpy as np
import pytest

from repro.middleware.upload import (
    BatchedUpload,
    ImmediateUpload,
    OpportunisticUpload,
    UploadItem,
)
from repro.network.links import GSM, WIFI


def _trace(count=20, period=10.0):
    return [UploadItem(timestamp=i * period) for i in range(count)]


class TestImmediate:
    def test_one_transmission_per_item(self):
        stats = ImmediateUpload(WIFI).run(_trace())
        assert stats.transmissions == 20
        assert stats.items_sent == 20
        assert stats.mean_staleness_s == 0.0


class TestBatched:
    def test_batches_amortise_wakeups(self):
        immediate = ImmediateUpload(GSM).run(_trace())
        batched = BatchedUpload(GSM, batch_size=5).run(_trace())
        assert batched.transmissions == 4
        assert batched.energy_mj < immediate.energy_mj
        # The saving comes from per-message wake-up cost amortisation.
        assert batched.energy_mj < 0.5 * immediate.energy_mj

    def test_staleness_grows_with_batch(self):
        small = BatchedUpload(GSM, batch_size=2).run(_trace())
        large = BatchedUpload(GSM, batch_size=10).run(_trace())
        assert large.mean_staleness_s > small.mean_staleness_s

    def test_partial_batch_needs_flush(self):
        items = _trace(count=7)
        unflushed = BatchedUpload(GSM, batch_size=5).run(items)
        assert unflushed.items_sent == 5
        assert unflushed.items_pending == 2
        flushed = BatchedUpload(GSM, batch_size=5).run(items, flush_at=100.0)
        assert flushed.items_sent == 7
        assert flushed.items_pending == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchedUpload(GSM, batch_size=0)


class TestOpportunistic:
    def test_uses_cheap_window_when_available(self):
        strategy = OpportunisticUpload(
            cheap_link=WIFI,
            expensive_link=GSM,
            cheap_windows=[(0.0, 1000.0)],  # WiFi always reachable
            max_staleness_s=60.0,
        )
        stats = strategy.run(_trace(), flush_at=200.0)
        assert stats.items_sent == 20
        # Everything went over WiFi: much cheaper than any GSM plan.
        gsm_batched = BatchedUpload(GSM, batch_size=5).run(
            _trace(), flush_at=200.0
        )
        assert stats.energy_mj < gsm_batched.energy_mj

    def test_deadline_forces_expensive_send(self):
        strategy = OpportunisticUpload(
            cheap_link=WIFI,
            expensive_link=GSM,
            cheap_windows=[(1e6, 1e6 + 1)],  # WiFi effectively never
            max_staleness_s=35.0,
        )
        stats = strategy.run(_trace(count=10), flush_at=100.0)
        assert stats.items_sent == 10
        # Deadline (35 s) bounds staleness even on the expensive path.
        assert stats.mean_staleness_s <= 35.0 + 1e-9

    def test_waits_for_imminent_cheap_window(self):
        """Items produced shortly before a WiFi window ride it for free."""
        strategy = OpportunisticUpload(
            cheap_link=WIFI,
            expensive_link=GSM,
            cheap_windows=[(50.0, 60.0)],
            max_staleness_s=100.0,
        )
        items = [UploadItem(timestamp=float(t)) for t in (10.0, 20.0, 55.0)]
        stats = strategy.run(items, flush_at=70.0)
        # All three go over WiFi at t=55: energy far below one GSM send.
        assert stats.transmissions <= 2
        single_gsm = ImmediateUpload(GSM).run([items[0]])
        assert stats.energy_mj < single_gsm.energy_mj

    def test_validation(self):
        with pytest.raises(ValueError):
            OpportunisticUpload(WIFI, GSM, [(0.0, 1.0)], max_staleness_s=0.0)
        with pytest.raises(ValueError):
            OpportunisticUpload(WIFI, GSM, [(5.0, 1.0)], max_staleness_s=10.0)

    def test_energy_ordering_immediate_batched_opportunistic(self):
        """The [16] frontier: immediate > batched > opportunistic energy
        when WiFi windows exist, with staleness moving the other way."""
        items = _trace(count=30, period=10.0)
        immediate = ImmediateUpload(GSM).run(items)
        batched = BatchedUpload(GSM, batch_size=6).run(items, flush_at=310.0)
        opportunistic = OpportunisticUpload(
            WIFI, GSM, cheap_windows=[(100.0, 110.0), (250.0, 260.0)],
            max_staleness_s=200.0,
        ).run(items, flush_at=310.0)
        assert immediate.energy_mj > batched.energy_mj > opportunistic.energy_mj
        assert immediate.mean_staleness_s <= batched.mean_staleness_s
