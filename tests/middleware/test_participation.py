"""Tests for participatory/opportunistic participation models."""

import numpy as np
import pytest

from repro.middleware.participation import (
    MixedCrowd,
    ParticipationModel,
    opportunistic,
    participatory,
)


class TestOpportunistic:
    def test_always_answers_within_duty(self):
        model = opportunistic(duty_budget=3)
        rng = np.random.default_rng(0)
        outcomes = [model.request(rng) for _ in range(5)]
        assert [o.answered for o in outcomes] == [True] * 3 + [False] * 2
        assert outcomes[3].reason == "duty-exhausted"

    def test_zero_delay(self):
        model = opportunistic()
        assert model.request(np.random.default_rng(1)).delay_s == 0.0

    def test_unlimited_budget(self):
        model = opportunistic(duty_budget=None)
        rng = np.random.default_rng(2)
        assert all(model.request(rng).answered for _ in range(200))

    def test_epoch_reset(self):
        model = opportunistic(duty_budget=1)
        rng = np.random.default_rng(3)
        assert model.request(rng).answered
        assert not model.request(rng).answered
        model.reset_epoch()
        assert model.request(rng).answered


class TestParticipatory:
    def test_acceptance_rate_statistics(self):
        model = participatory(acceptance_probability=0.3)
        rng = np.random.default_rng(4)
        answered = sum(model.request(rng).answered for _ in range(1000))
        assert 250 < answered < 350

    def test_delays_are_positive_and_humanlike(self):
        model = participatory(
            acceptance_probability=1.0, response_delay_s=(20.0, 5.0)
        )
        rng = np.random.default_rng(5)
        delays = [model.request(rng).delay_s for _ in range(200)]
        assert min(delays) >= 0.0
        assert 15.0 < np.mean(delays) < 25.0

    def test_declines_labelled(self):
        model = participatory(acceptance_probability=0.0)
        outcome = model.request(np.random.default_rng(6))
        assert not outcome.answered
        assert outcome.reason == "user-declined"


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError):
            ParticipationModel(mode="telepathic")

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            ParticipationModel(mode="participatory", acceptance_probability=1.5)

    def test_bad_delay(self):
        with pytest.raises(ValueError):
            ParticipationModel(
                mode="participatory", response_delay_s=(-1.0, 0.0)
            )


class TestMixedCrowd:
    def test_share_respected(self):
        crowd = MixedCrowd(
            [f"n{i}" for i in range(500)], opportunistic_share=0.7, rng=7
        )
        auto = sum(
            1 for m in crowd.models.values() if m.mode == "opportunistic"
        )
        assert 300 < auto < 400

    def test_opportunistic_crowd_answers_fast(self):
        crowd = MixedCrowd(
            [f"n{i}" for i in range(60)], opportunistic_share=1.0, rng=8
        )
        answers, worst_delay, issued = crowd.gather(40)
        assert answers == 40
        assert worst_delay == 0.0
        assert issued == 40

    def test_participatory_crowd_needs_more_requests(self):
        crowd = MixedCrowd(
            [f"n{i}" for i in range(200)],
            opportunistic_share=0.0,
            acceptance_probability=0.5,
            rng=9,
        )
        answers, worst_delay, issued = crowd.gather(40)
        assert answers == 40
        assert issued > 50  # declines force extra asks
        assert worst_delay > 0.0

    def test_exhausted_crowd_returns_partial(self):
        crowd = MixedCrowd(
            ["a", "b", "c"], opportunistic_share=0.0,
            acceptance_probability=0.0, rng=10,
        )
        answers, _, issued = crowd.gather(2)
        assert answers == 0
        assert issued == 3

    def test_unknown_node(self):
        crowd = MixedCrowd(["a"], opportunistic_share=1.0, rng=11)
        with pytest.raises(KeyError):
            crowd.request("ghost")

    def test_validation(self):
        with pytest.raises(ValueError):
            MixedCrowd([], opportunistic_share=0.5)
        with pytest.raises(ValueError):
            MixedCrowd(["a"], opportunistic_share=2.0)
        crowd = MixedCrowd(["a"], opportunistic_share=1.0, rng=12)
        with pytest.raises(ValueError):
            crowd.gather(0)
