"""Tests for NanoCloud assembly and membership tracking."""

import numpy as np
import pytest

from repro.core import metrics
from repro.fields.generators import smooth_field
from repro.middleware.config import BrokerConfig
from repro.middleware.nanocloud import NanoCloud
from repro.network.bus import MessageBus
from repro.sensors.base import Environment


@pytest.fixture
def env():
    return Environment(
        fields={"temperature": smooth_field(8, 8, offset=20.0, rng=0)}
    )


class TestBuild:
    def test_nodes_on_distinct_cells(self):
        bus = MessageBus()
        nc = NanoCloud.build("nc0", bus, 8, 8, n_nodes=20, rng=1)
        cells = list(nc.broker.members.values())
        assert len(cells) == len(set(cells)) == 20
        assert nc.n_nodes == 20

    def test_all_registered_on_bus(self):
        bus = MessageBus()
        nc = NanoCloud.build("nc0", bus, 4, 4, n_nodes=5, rng=2)
        assert nc.broker.broker_id in bus.addresses
        for node_id in nc.nodes:
            assert node_id in bus.addresses

    def test_node_states_in_global_coordinates(self):
        bus = MessageBus()
        nc = NanoCloud.build("nc0", bus, 4, 4, n_nodes=4, origin=(10, 20), rng=3)
        for node_id, cell in nc.broker.members.items():
            node = nc.nodes[node_id]
            i, j = cell // 4, cell % 4
            assert node.state.x == 10 + i
            assert node.state.y == 20 + j

    def test_dense_crowds_share_cells(self):
        bus = MessageBus()
        nc = NanoCloud.build("nc0", bus, 2, 2, n_nodes=9, rng=0)
        cells = list(nc.broker.members.values())
        assert len(cells) == 9
        assert set(cells) == {0, 1, 2, 3}  # every cell covered first

    def test_zero_nodes_rejected(self):
        bus = MessageBus()
        with pytest.raises(ValueError):
            NanoCloud.build("nc0", bus, 2, 2, n_nodes=0)

    def test_heterogeneous_tiers_drawn(self):
        bus = MessageBus()
        nc = NanoCloud.build("nc0", bus, 8, 8, n_nodes=60, rng=4)
        tiers = {node.tier.name for node in nc.nodes.values()}
        assert len(tiers) >= 2

    def test_homogeneous_option(self):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc0", bus, 8, 8, n_nodes=10, heterogeneous=False, rng=5
        )
        assert {node.tier.name for node in nc.nodes.values()} == {"midrange"}


class TestRounds:
    def test_round_reconstructs(self, env):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc0", bus, 8, 8, n_nodes=60,
            config=BrokerConfig(seed=6), rng=6,
        )
        truth = env.fields["temperature"]
        nc.run_round(env, measurements=30)  # warm up sparsity estimate
        estimate = nc.run_round(env, timestamp=1.0, measurements=30)
        err = metrics.relative_error(truth.vector(), estimate.field.vector())
        assert err < 0.1

    def test_refresh_membership_tracks_movement(self):
        bus = MessageBus()
        nc = NanoCloud.build("nc0", bus, 8, 8, n_nodes=4, rng=7)
        node = next(iter(nc.nodes.values()))
        node.state.x, node.state.y = 5.0, 3.0
        nc.refresh_membership()
        assert nc.broker.members[node.node_id] == 5 * 8 + 3

    def test_refresh_clamps_wanderers(self):
        bus = MessageBus()
        nc = NanoCloud.build("nc0", bus, 4, 4, n_nodes=3, origin=(0, 0), rng=8)
        node = next(iter(nc.nodes.values()))
        node.state.x, node.state.y = 100.0, -5.0
        nc.refresh_membership()
        cell = nc.broker.members[node.node_id]
        assert 0 <= cell < 16

    def test_node_energy_rollup(self, env):
        bus = MessageBus()
        nc = NanoCloud.build("nc0", bus, 8, 8, n_nodes=40, rng=9)
        assert nc.total_node_energy_mj() == 0.0
        nc.run_round(env, measurements=20)
        assert nc.total_node_energy_mj() > 0.0
