"""Tests for battery-fair duty rotation among co-located nodes ([24])."""

import numpy as np
import pytest

from repro.energy.model import Battery
from repro.fields.generators import smooth_field
from repro.middleware.broker import Broker
from repro.middleware.config import BrokerConfig
from repro.middleware.node import MobileNode
from repro.network.bus import MessageBus
from repro.sensors.base import Environment, NodeState
from repro.sensors.physical import TemperatureSensor

W, H = 4, 4
N = W * H


def _colocated_fleet(bus, broker, per_cell=3, seed=1):
    """``per_cell`` nodes on every cell, each with its own battery."""
    rng = np.random.default_rng(seed)
    nodes = {}
    for cell in range(N):
        for copy in range(per_cell):
            node_id = f"n{cell}-{copy}"
            i, j = cell // H, cell % H
            node = MobileNode(
                node_id,
                sensors={"temperature": TemperatureSensor(rng=rng.integers(2**31))},
                state=NodeState(x=float(i), y=float(j)),
                battery=Battery(capacity_mj=1000.0),
                rng=rng.integers(2**31),
            )
            nodes[node_id] = node
            bus.register(node_id)
            broker.join(node_id, cell)
    return nodes


@pytest.fixture
def env():
    return Environment(
        fields={"temperature": smooth_field(W, H, offset=20.0, rng=0)}
    )


class TestFairRotation:
    def test_burden_spreads_across_copies(self, env):
        bus = MessageBus()
        broker = Broker(
            "b", W, H, config=BrokerConfig(seed=2, fair_rotation=True)
        )
        bus.register("b")
        nodes = _colocated_fleet(bus, broker)
        for r in range(30):
            broker.run_round(bus, nodes, env, timestamp=float(r), measurements=N)
        # Every copy of every cell should have carried some duty.
        sampled = [n.sensors["temperature"].samples_taken for n in nodes.values()]
        assert min(sampled) > 0
        assert max(sampled) - min(sampled) <= 2

    def test_without_rotation_first_copy_burns(self, env):
        bus = MessageBus()
        broker = Broker(
            "b", W, H, config=BrokerConfig(seed=2, fair_rotation=False)
        )
        bus.register("b")
        nodes = _colocated_fleet(bus, broker)
        for r in range(30):
            broker.run_round(bus, nodes, env, timestamp=float(r), measurements=N)
        sampled = [n.sensors["temperature"].samples_taken for n in nodes.values()]
        # The fixed ordering leaves some copies completely idle while
        # others carry every round.
        assert min(sampled) == 0
        assert max(sampled) >= 25

    def test_rotation_extends_worst_battery(self, env):
        def worst_level(fair):
            bus = MessageBus()
            broker = Broker(
                "b", W, H, config=BrokerConfig(seed=3, fair_rotation=fair)
            )
            bus.register("b")
            nodes = _colocated_fleet(bus, broker, seed=3)
            for r in range(40):
                broker.run_round(
                    bus, nodes, env, timestamp=float(r), measurements=N
                )
            return min(
                n.ledger.battery.level for n in nodes.values()
            )

        assert worst_level(fair=True) > worst_level(fair=False)

    def test_nodes_without_batteries_still_work(self, env):
        bus = MessageBus()
        broker = Broker("b", W, H, config=BrokerConfig(seed=4))
        bus.register("b")
        rng = np.random.default_rng(5)
        nodes = {}
        for cell in range(N):
            node_id = f"n{cell}"
            i, j = cell // H, cell % H
            node = MobileNode(
                node_id,
                sensors={"temperature": TemperatureSensor(rng=rng.integers(2**31))},
                state=NodeState(x=float(i), y=float(j)),
                rng=rng.integers(2**31),
            )
            nodes[node_id] = node
            bus.register(node_id)
            broker.join(node_id, cell)
        estimate = broker.run_round(bus, nodes, env, measurements=8)
        assert estimate.m == 8
