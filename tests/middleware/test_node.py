"""Tests for the mobile node (thin client of Fig. 2)."""

import numpy as np
import pytest

from repro.fields.generators import urban_temperature_field
from repro.middleware.config import NodeConfig
from repro.middleware.node import MobileNode
from repro.middleware.privacy import PrivacyPolicy
from repro.network.bus import MessageBus
from repro.network.message import Message, MessageKind
from repro.sensors.base import Environment, NodeState
from repro.sensors.noise import STANDARD_TIERS
from repro.sensors.physical import TemperatureSensor, accelerometer_window


@pytest.fixture
def env():
    return Environment(
        fields={"temperature": urban_temperature_field(16, 8, rng=0)}
    )


def _node(node_id="n1", policy=None, tier=None, rng=0):
    return MobileNode(
        node_id,
        sensors={"temperature": TemperatureSensor(rng=1)},
        state=NodeState(x=3, y=3),
        policy=policy,
        tier=tier,
        rng=rng,
    )


def _command(node_id, sensor="temperature", grid_index=7):
    return Message(
        kind=MessageKind.SENSE_COMMAND,
        source="broker",
        destination=node_id,
        payload={"sensor": sensor, "grid_index": grid_index},
        timestamp=2.0,
    )


class TestReadSensor:
    def test_reads_and_accounts_energy(self, env):
        node = _node()
        reading = node.read_sensor("temperature", env, 0.0)
        assert reading.node_id == "n1"
        assert node.ledger.category_mj("sensing") > 0

    def test_missing_sensor(self, env):
        with pytest.raises(KeyError, match="available"):
            _node().read_sensor("barometer", env, 0.0)

    def test_tier_scales_reported_noise(self, env):
        budget_tier = STANDARD_TIERS[2]  # 2.5x noise
        node = _node(tier=budget_tier)
        reading = node.read_sensor("temperature", env, 0.0)
        base = TemperatureSensor().spec.noise_std
        assert reading.noise_std == pytest.approx(base * 2.5)

    def test_budget_tier_noisier_in_practice(self, env):
        flagship = _node("a", tier=STANDARD_TIERS[0], rng=1)
        budget = _node("b", tier=STANDARD_TIERS[2], rng=1)
        truth = env.field_value("temperature", 3, 3)
        err_flagship = np.std(
            [flagship.read_sensor("temperature", env, t).value - truth for t in range(100)]
        )
        err_budget = np.std(
            [budget.read_sensor("temperature", env, t).value - truth for t in range(100)]
        )
        assert err_budget > err_flagship


class TestHandleCommand:
    def _bus(self, node):
        bus = MessageBus()
        bus.register("broker")
        bus.register(node.node_id)
        return bus

    def test_ok_report(self, env):
        node = _node()
        bus = self._bus(node)
        reply = node.handle_command(_command("n1"), env, bus)
        assert reply.payload["ok"] is True
        assert reply.payload["grid_index"] == 7
        assert "value" in reply.payload
        assert bus.endpoint("broker").pending() == 1

    def test_privacy_refusal(self, env):
        node = _node(policy=PrivacyPolicy(blocked_sensors={"temperature"}))
        bus = self._bus(node)
        reply = node.handle_command(_command("n1"), env, bus)
        assert reply.payload["ok"] is False
        assert node.audit.total_withheld() == 1
        assert node.ledger.category_mj("sensing") == 0.0  # never sampled

    def test_missing_sensor_refusal(self, env):
        node = _node()
        bus = self._bus(node)
        reply = node.handle_command(
            _command("n1", sensor="microphone"), env, bus
        )
        assert reply.payload["ok"] is False

    def test_wrong_kind_rejected(self, env):
        node = _node()
        bus = self._bus(node)
        bad = Message(MessageKind.QUERY, "broker", "n1")
        with pytest.raises(ValueError):
            node.handle_command(bad, env, bus)


class TestContextSensing:
    def test_compressive_detection_correct_and_cheaper(self):
        config = NodeConfig(temporal_duty_cycle=0.125)
        window = accelerometer_window("driving", 256, rng=3)
        node_compressive = MobileNode("a", config=config, rng=4)
        node_compressive.state.mode = "driving"
        det = node_compressive.sense_activity_context(0.0, window=window)
        assert det.estimate.mode == "driving"
        assert det.m == 32

        node_uniform = MobileNode("b", config=config, rng=4)
        node_uniform.state.mode = "driving"
        node_uniform.sense_activity_context(
            0.0, window=window, compressive=False
        )
        assert (
            node_compressive.ledger.category_mj("sensing")
            < node_uniform.ledger.category_mj("sensing")
        )

    def test_cpu_energy_accounted(self):
        node = MobileNode("a", rng=5)
        node.sense_activity_context(0.0)
        assert node.ledger.category_mj("cpu") > 0

    def test_window_length_checked(self):
        node = MobileNode("a", rng=6)
        with pytest.raises(ValueError):
            node.sense_activity_context(0.0, window=np.zeros(100))

    def test_contexts_recorded_for_sharing(self):
        node = MobileNode("a", rng=7)
        node.state.mode = "walking"
        node.sense_activity_context(1.0)
        assert node.shared_contexts
        assert node.shared_contexts[-1].kind == "activity"

    def test_share_context_respects_policy(self):
        node = MobileNode(
            "a", policy=PrivacyPolicy(share_contexts=False), rng=8
        )
        node.sense_activity_context(0.0)
        bus = MessageBus()
        bus.register("broker")
        bus.register("a")
        node.share_context(bus, "broker", node.shared_contexts[-1] if node.shared_contexts else None)
        # With share_contexts=False the node never even records them.
        assert bus.endpoint("broker").pending() == 0


class TestShareContext:
    def test_share_sends_message(self):
        node = MobileNode("a", rng=9)
        node.state.mode = "idle"
        node.sense_activity_context(3.0)
        bus = MessageBus()
        bus.register("broker")
        bus.register("a")
        node.share_context(bus, "broker", node.shared_contexts[-1])
        messages = bus.endpoint("broker").drain()
        assert len(messages) == 1
        assert messages[0].kind is MessageKind.CONTEXT_SHARE
        assert messages[0].payload["kind"] == "activity"
