"""Failure-injection tests: message loss and node churn.

Mobile crowdsensing lives on lossy radios with churning participants;
the broker must degrade gracefully — fewer collected measurements, not
crashes or corrupt fields.
"""

import numpy as np
import pytest

from repro.core import metrics
from repro.fields.generators import smooth_field
from repro.middleware.config import BrokerConfig
from repro.middleware.nanocloud import NanoCloud
from repro.network.bus import MessageBus
from repro.network.message import Message, MessageKind
from repro.sensors.base import Environment


@pytest.fixture
def env():
    return Environment(
        fields={
            "temperature": smooth_field(
                12, 8, cutoff=0.15, amplitude=4.0, offset=20.0, rng=0
            )
        }
    )


class TestLossyBus:
    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            MessageBus(loss_rate=1.0)
        with pytest.raises(ValueError):
            MessageBus(loss_rate=-0.1)

    def test_losses_are_counted_and_sender_still_pays(self):
        bus = MessageBus(loss_rate=0.5, seed=1)
        bus.register("a")
        bus.register("b")
        for _ in range(200):
            bus.send(
                Message(
                    kind=MessageKind.SENSE_REPORT,
                    source="a",
                    destination="b",
                )
            )
        assert 50 < bus.messages_lost < 150
        delivered = bus.endpoint("b").pending()
        assert delivered == 200 - bus.messages_lost
        # Sender metered every attempt; receiver only deliveries.
        assert bus.endpoint("a").stats.messages == 200
        assert bus.endpoint("b").stats.messages == delivered
        assert bus.endpoint("b").stats.receive_energy_mj < (
            bus.endpoint("a").stats.transmit_energy_mj
        )

    def test_losses_reproducible_by_seed(self):
        def run(seed):
            bus = MessageBus(loss_rate=0.3, seed=seed)
            bus.register("a")
            bus.register("b")
            for _ in range(50):
                bus.send(
                    Message(
                        kind=MessageKind.QUERY, source="a", destination="b"
                    )
                )
            return bus.messages_lost

        assert run(7) == run(7)


class TestBrokerUnderLoss:
    def _nanocloud(self, loss_rate, env, seed=3):
        bus = MessageBus(loss_rate=loss_rate, seed=seed)
        return NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=seed), heterogeneous=False, rng=seed,
        )

    def test_round_survives_heavy_loss(self, env):
        nc = self._nanocloud(0.4, env)
        estimate = nc.run_round(env, measurements=48)
        # Some commands/reports vanished, so fewer than 48 collected —
        # but the round completes and the field is sane.
        assert estimate.m < 48
        assert estimate.m > 5
        truth = env.fields["temperature"]
        err = metrics.relative_error(truth.vector(), estimate.field.vector())
        assert err < 0.5

    def test_loss_costs_accuracy_not_correctness(self, env):
        truth = env.fields["temperature"]

        def error_at(loss):
            nc = self._nanocloud(loss, env, seed=5)
            nc.run_round(env, measurements=48)
            estimate = nc.run_round(env, timestamp=1.0, measurements=48)
            return metrics.relative_error(
                truth.vector(), estimate.field.vector()
            ), estimate.m

        clean_err, clean_m = error_at(0.0)
        lossy_err, lossy_m = error_at(0.5)
        assert lossy_m < clean_m
        assert np.isfinite(lossy_err)

    def test_total_loss_raises_cleanly(self, env):
        nc = self._nanocloud(0.0, env, seed=7)
        # Make every command vanish from now on.
        nc.bus.loss_rate = 0.99999
        with pytest.raises(RuntimeError, match="no measurements"):
            nc.run_round(env, measurements=24)


class TestNodeChurn:
    def test_departed_nodes_are_skipped(self, env):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=9), heterogeneous=False, rng=9,
        )
        # Half the fleet walks away: gone from the node table but the
        # broker's membership list is stale (it hasn't noticed yet).
        departed = list(nc.nodes)[::2]
        for node_id in departed:
            del nc.nodes[node_id]
        estimate = nc.broker.run_round(bus, nc.nodes, env, measurements=48)
        assert estimate.m <= 48
        truth = env.fields["temperature"]
        err = metrics.relative_error(truth.vector(), estimate.field.vector())
        assert np.isfinite(err)

    def test_leave_then_round(self, env):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=11), heterogeneous=False, rng=11,
        )
        for node_id in list(nc.nodes)[:48]:
            nc.broker.leave(node_id)
            del nc.nodes[node_id]
            bus.unregister(node_id)
        estimate = nc.broker.run_round(bus, nc.nodes, env, measurements=40)
        assert estimate.m <= 40
        assert estimate.reports_ok > 0
