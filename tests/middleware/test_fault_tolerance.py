"""Failure-injection tests: message loss, bursts, partitions, churn and
broker failover.

Mobile crowdsensing lives on lossy radios with churning participants;
the broker must degrade gracefully — fewer collected measurements, not
crashes or corrupt fields — and the NanoCloud must survive losing its
own coordinator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics
from repro.fields.generators import smooth_field
from repro.middleware.broker import ZoneEstimate
from repro.middleware.config import BrokerConfig
from repro.middleware.nanocloud import NanoCloud
from repro.network.bus import MessageBus
from repro.network.faults import (
    CrashSchedule,
    FaultInjector,
    GilbertElliottLoss,
    Partition,
)
from repro.network.message import Message, MessageKind
from repro.sensors.base import Environment
from repro.sensors.faults import (
    Adversarial,
    SensorFaultInjector,
    afflict_fraction,
)
from repro.sensors.physical import TemperatureSensor


@pytest.fixture
def env():
    return Environment(
        fields={
            "temperature": smooth_field(
                12, 8, cutoff=0.15, amplitude=4.0, offset=20.0, rng=0
            )
        }
    )


class TestLossyBus:
    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            MessageBus(loss_rate=1.0)
        with pytest.raises(ValueError):
            MessageBus(loss_rate=-0.1)

    def test_losses_are_counted_and_sender_still_pays(self):
        bus = MessageBus(loss_rate=0.5, seed=1)
        bus.register("a")
        bus.register("b")
        for _ in range(200):
            bus.send(
                Message(
                    kind=MessageKind.SENSE_REPORT,
                    source="a",
                    destination="b",
                )
            )
        assert 50 < bus.messages_lost < 150
        delivered = bus.endpoint("b").pending()
        assert delivered == 200 - bus.messages_lost
        # Sender metered every attempt; receiver only deliveries.
        assert bus.endpoint("a").stats.messages == 200
        assert bus.endpoint("b").stats.messages == delivered
        assert bus.endpoint("b").stats.receive_energy_mj < (
            bus.endpoint("a").stats.transmit_energy_mj
        )

    def test_losses_reproducible_by_seed(self):
        def run(seed):
            bus = MessageBus(loss_rate=0.3, seed=seed)
            bus.register("a")
            bus.register("b")
            for _ in range(50):
                bus.send(
                    Message(
                        kind=MessageKind.QUERY, source="a", destination="b"
                    )
                )
            return bus.messages_lost

        assert run(7) == run(7)


class TestBrokerUnderLoss:
    def _nanocloud(self, loss_rate, env, seed=3):
        bus = MessageBus(loss_rate=loss_rate, seed=seed)
        return NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=seed), heterogeneous=False, rng=seed,
        )

    def test_round_survives_heavy_loss(self, env):
        nc = self._nanocloud(0.4, env)
        estimate = nc.run_round(env, measurements=48)
        # Some commands/reports vanished, so fewer than 48 collected —
        # but the round completes and the field is sane.
        assert estimate.m < 48
        assert estimate.m > 5
        truth = env.fields["temperature"]
        err = metrics.relative_error(truth.vector(), estimate.field.vector())
        assert err < 0.5

    def test_loss_costs_accuracy_not_correctness(self, env):
        truth = env.fields["temperature"]

        def error_at(loss):
            nc = self._nanocloud(loss, env, seed=5)
            nc.run_round(env, measurements=48)
            estimate = nc.run_round(env, timestamp=1.0, measurements=48)
            return metrics.relative_error(
                truth.vector(), estimate.field.vector()
            ), estimate.m

        clean_err, clean_m = error_at(0.0)
        lossy_err, lossy_m = error_at(0.5)
        assert lossy_m < clean_m
        assert np.isfinite(lossy_err)

    def test_total_loss_raises_cleanly(self, env):
        nc = self._nanocloud(0.0, env, seed=7)
        # Make every command vanish from now on.
        nc.bus.loss_rate = 0.99999
        with pytest.raises(RuntimeError, match="no measurements"):
            nc.run_round(env, measurements=24)


class TestNodeChurn:
    def test_departed_nodes_are_skipped(self, env):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=9), heterogeneous=False, rng=9,
        )
        # Half the fleet walks away: gone from the node table but the
        # broker's membership list is stale (it hasn't noticed yet).
        departed = list(nc.nodes)[::2]
        for node_id in departed:
            del nc.nodes[node_id]
        estimate = nc.broker.run_round(bus, nc.nodes, env, measurements=48)
        assert estimate.m <= 48
        truth = env.fields["temperature"]
        err = metrics.relative_error(truth.vector(), estimate.field.vector())
        assert np.isfinite(err)

    def test_leave_then_round(self, env):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=11), heterogeneous=False, rng=11,
        )
        for node_id in list(nc.nodes)[:48]:
            nc.broker.leave(node_id)
            del nc.nodes[node_id]
            bus.unregister(node_id)
        estimate = nc.broker.run_round(bus, nc.nodes, env, measurements=40)
        assert estimate.m <= 40
        assert estimate.reports_ok > 0

    def test_unregistered_member_is_a_lost_command_not_a_crash(self, env):
        # The stale-membership worst case: nodes still in the broker's
        # table and the node dict, but gone from the bus.  The round
        # must count lost commands and continue, not raise KeyError.
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=13), heterogeneous=False, rng=13,
        )
        for node_id in list(nc.nodes)[::2]:
            bus.unregister(node_id)  # radio off; broker not yet aware
        estimate = nc.broker.run_round(bus, nc.nodes, env, measurements=48)
        assert estimate.commands_lost > 0
        assert estimate.degraded
        assert bus.losses_by_reason["unreachable"] > 0
        assert np.isfinite(
            metrics.relative_error(
                env.fields["temperature"].vector(), estimate.field.vector()
            )
        )


class TestRetriesAndTopUp:
    def _nanocloud(self, env, *, loss=0.3, seed=3, **config_kwargs):
        bus = MessageBus(loss_rate=loss, seed=seed)
        return NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=seed, **config_kwargs),
            heterogeneous=False, rng=seed,
        )

    def test_retries_recover_effective_m(self, env):
        plain = self._nanocloud(env).run_round(env, measurements=48)
        retried = self._nanocloud(
            env, command_retries=3
        ).run_round(env, measurements=48)
        assert retried.effective_m > plain.effective_m
        assert retried.retries_used > 0
        assert retried.delivery_ratio > plain.delivery_ratio

    def test_retries_have_an_energy_price(self, env):
        plain_nc = self._nanocloud(env)
        plain_nc.run_round(env, measurements=48)
        retry_nc = self._nanocloud(env, command_retries=3)
        retry_nc.run_round(env, measurements=48)
        # Same channel, same plan seed: persistence costs extra radio.
        assert (
            retry_nc.bus.stats.total_energy_mj
            > plain_nc.bus.stats.total_energy_mj
        )

    def test_retry_accounting_against_a_total_partition(self, env):
        # Every command leg is cut: each planned cell burns the full
        # retry budget and every attempt is counted as a lost command.
        nc = self._nanocloud(env, loss=0.0, command_retries=2)
        broker_id = nc.broker.broker_id
        nc.bus.fault_injector = FaultInjector(
            Partition({broker_id}, set(nc.nodes))
        )
        nc.broker.add_infrastructure(0, TemperatureSensor(rng=1))
        estimate = nc.run_round(env, measurements=12)
        # 12 cells x (1 try + 2 retries), all lost; one infra rescue.
        assert estimate.commands_lost == 36
        assert estimate.retries_used == 24
        assert estimate.reports_lost == 0
        assert estimate.infra_reads >= 1
        assert estimate.degraded
        assert estimate.delivery_ratio < 1.0

    def test_backoff_advances_simulated_time(self, env):
        # The retried commands must carry increasing timestamps — the
        # backoff exists in simulated time, not wall clock.
        nc = self._nanocloud(env, loss=0.0, command_retries=3,
                             retry_backoff_s=1.0)
        broker = nc.broker
        node_id = next(iter(nc.nodes))
        seen: list[float] = []
        original_send = nc.bus.send

        def spy_send(message, **kwargs):
            if message.kind is MessageKind.SENSE_COMMAND:
                seen.append(message.timestamp)
                return False  # swallow every command: force all retries
            return original_send(message, **kwargs)

        nc.bus.send = spy_send
        payload = broker._command_node(
            nc.nodes[node_id], 0, nc.bus, env, timestamp=100.0
        )
        assert payload is None
        # 1 try + 3 retries with capped exponential backoff 1, 2, 4.
        assert seen == [100.0, 101.0, 103.0, 107.0]

    def test_topup_restores_planned_m(self, env):
        plain = self._nanocloud(env, loss=0.35, seed=5).run_round(
            env, measurements=40
        )
        topped = self._nanocloud(
            env, loss=0.35, seed=5, command_retries=2, topup_resampling=True
        ).run_round(env, measurements=40)
        assert plain.effective_m < 40
        assert topped.effective_m > plain.effective_m
        assert topped.effective_m >= 36  # near-planned despite the losses

    def test_clean_channel_keeps_seed_behaviour(self, env):
        # With no loss the resilience knobs must not change a round.
        plain = self._nanocloud(env, loss=0.0, seed=7).run_round(
            env, measurements=48
        )
        hardened = self._nanocloud(
            env, loss=0.0, seed=7, command_retries=3, topup_resampling=True
        ).run_round(env, measurements=48)
        assert plain.effective_m == hardened.effective_m == 48
        assert hardened.retries_used == 0
        assert not hardened.degraded
        assert hardened.delivery_ratio == 1.0
        np.testing.assert_allclose(
            plain.field.vector(), hardened.field.vector()
        )


class TestBurstyLoss:
    def test_bursty_channel_degrades_round(self, env):
        injector = FaultInjector(
            GilbertElliottLoss(
                p_enter_bad=0.1, p_exit_bad=0.2, loss_good=0.0,
                loss_bad=0.9, seed=3,
            )
        )
        bus = MessageBus(fault_injector=injector)
        nc = NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=3), heterogeneous=False, rng=3,
        )
        estimate = nc.run_round(env, measurements=48)
        assert estimate.effective_m < 48
        assert estimate.degraded
        assert bus.losses_by_reason["bursty-loss"] > 0

    def test_retries_and_topup_recover_from_bursts(self, env):
        def run(hardened):
            injector = FaultInjector(
                GilbertElliottLoss(
                    p_enter_bad=0.1, p_exit_bad=0.2, loss_good=0.0,
                    loss_bad=0.9, seed=3,
                )
            )
            bus = MessageBus(fault_injector=injector)
            config = BrokerConfig(
                seed=3,
                command_retries=3 if hardened else 0,
                topup_resampling=hardened,
            )
            nc = NanoCloud.build(
                "nc", bus, 12, 8, n_nodes=96,
                config=config, heterogeneous=False, rng=3,
            )
            return nc.run_round(env, measurements=48)

        plain = run(False)
        hardened = run(True)
        assert hardened.effective_m > plain.effective_m
        assert hardened.effective_m >= 44


class TestPartitionedZone:
    def test_partitioned_members_are_lost_not_fatal(self, env):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=17), heterogeneous=False, rng=17,
        )
        cut_nodes = set(list(nc.nodes)[:48])
        bus.fault_injector = FaultInjector(
            Partition({nc.broker.broker_id}, cut_nodes)
        )
        estimate = nc.run_round(env, measurements=48)
        assert estimate.commands_lost > 0
        assert estimate.effective_m < 48
        assert estimate.degraded
        assert bus.losses_by_reason["partition"] > 0

    def test_round_heals_when_partition_ends(self, env):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=17), heterogeneous=False, rng=17,
        )
        cut_nodes = set(list(nc.nodes)[:48])
        bus.fault_injector = FaultInjector(
            Partition({nc.broker.broker_id}, cut_nodes, start=0.0, end=5.0)
        )
        during = nc.run_round(env, timestamp=1.0, measurements=48)
        after = nc.run_round(env, timestamp=10.0, measurements=48)
        assert during.degraded
        assert not after.degraded
        assert after.effective_m == 48


class TestBrokerFailover:
    def _crashed_cloud(self, env, *, loss=0.0, seed=19):
        crash = CrashSchedule().crash("nc/broker", at=5.0)
        bus = MessageBus(
            loss_rate=loss, seed=seed, fault_injector=FaultInjector(crash)
        )
        nc = NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=seed), heterogeneous=False, rng=seed,
        )
        return nc

    def test_heartbeat_promotes_healthiest_member(self, env):
        nc = self._crashed_cloud(env)
        assert nc.heartbeat(0.0)  # broker alive before the crash
        levels = {
            node_id: node.ledger.battery.level
            for node_id, node in nc.nodes.items()
        }
        best = min(levels, key=lambda nid: (-levels[nid], nid))
        assert not nc.heartbeat(10.0)  # dead: failover happened
        assert nc.broker.broker_id == best
        assert best not in nc.nodes  # promoted out of the sensing fleet
        # Membership carried over, minus the promoted phone itself.
        assert nc.broker.members
        assert best not in nc.broker.members

    def test_rounds_continue_across_broker_crash(self, env):
        nc = self._crashed_cloud(env, loss=0.1)
        truth = env.fields["temperature"]
        before = nc.run_round(env, timestamp=0.0, measurements=48)
        after = nc.run_round(env, timestamp=10.0, measurements=48)
        later = nc.run_round(env, timestamp=20.0, measurements=48)
        for estimate in (before, after, later):
            assert isinstance(estimate, ZoneEstimate)
            err = metrics.relative_error(
                truth.vector(), estimate.field.vector()
            )
            assert err < 0.5
        # Degradation telemetry is populated on the lossy rounds.
        assert after.planned_m == 48
        assert 0.0 < after.delivery_ratio <= 1.0
        assert nc.broker.broker_id != "nc/broker"

    def test_failover_carries_prior_and_adaptation(self, env):
        nc = self._crashed_cloud(env)
        for t in range(3):
            nc.run_round(env, timestamp=float(t) / 10.0, measurements=48)
        old = nc.broker
        learned_sparsity = old.last_sparsity
        history_len = len(old._history)
        nc.promote_broker(10.0)
        assert nc.broker.last_sparsity == learned_sparsity
        assert len(nc.broker._history) == history_len
        assert nc.broker.infrastructure == old.infrastructure

    def test_no_live_member_to_promote_raises(self, env):
        crash = CrashSchedule().crash("nc/broker", at=0.0)
        bus = MessageBus(fault_injector=FaultInjector(crash))
        nc = NanoCloud.build(
            "nc", bus, 4, 4, n_nodes=4,
            config=BrokerConfig(seed=23), heterogeneous=False, rng=23,
        )
        for node_id in nc.nodes:
            crash.crash(node_id, at=0.0)
        with pytest.raises(RuntimeError, match="no live member"):
            nc.promote_broker(1.0)


class TestNeverRaisesProperty:
    @given(
        loss=st.floats(min_value=0.0, max_value=0.995),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_never_raises_with_infrastructure_fallback(
        self, loss, seed
    ):
        # For ANY loss rate < 1, a broker that owns at least one
        # infrastructure sensor must complete its round: in the worst
        # case the whole crowd goes dark and the fixed sensors carry it.
        env = Environment(
            fields={
                "temperature": smooth_field(
                    6, 4, cutoff=0.3, amplitude=3.0, offset=20.0, rng=0
                )
            }
        )
        bus = MessageBus(loss_rate=loss, seed=seed)
        nc = NanoCloud.build(
            "nc", bus, 6, 4, n_nodes=12,
            config=BrokerConfig(seed=seed), heterogeneous=False, rng=seed,
        )
        for cell in (0, 10, 23):
            nc.broker.add_infrastructure(
                cell, TemperatureSensor(rng=cell + 1)
            )
        estimate = nc.run_round(env, measurements=8)
        assert isinstance(estimate, ZoneEstimate)
        assert estimate.effective_m >= 1
        assert np.all(np.isfinite(estimate.field.vector()))
        assert 0.0 <= estimate.delivery_ratio <= 1.0


class TestCombinedLossAndSensorFaults:
    """Transport faults and data faults at once: the telemetry must keep
    the two failure planes distinguishable on one estimate."""

    def _byzantine_lossy_nc(self, *, loss=0.2, seed=7, fraction=0.1):
        bus = MessageBus(loss_rate=loss, seed=seed)
        nc = NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(
                seed=seed, robust_mode="trim", command_retries=1
            ),
            heterogeneous=False, rng=seed,
        )
        injector = SensorFaultInjector()
        bad = afflict_fraction(
            injector,
            nc.nodes.keys(),
            fraction,
            lambda nid: Adversarial(offset=10.0, claimed_std=0.01),
            seed=seed,
        )
        for node in nc.nodes.values():
            node.fault_injector = injector
        return nc, bad

    def test_effective_m_reflects_both_failure_planes(self, env):
        nc, bad = self._byzantine_lossy_nc()
        estimate = nc.run_round(env, measurements=48)
        # Transport plane: the lossy channel ate commands or reports.
        assert estimate.commands_lost + estimate.reports_lost > 0
        assert estimate.delivery_ratio < 1.0
        # Data plane: adversarial rows got through the channel and were
        # rejected by the robust solve instead.
        assert estimate.rejected_reports > 0
        assert estimate.effective_m == (
            estimate.m - estimate.rejected_reports
        )
        assert estimate.effective_m < 48
        assert estimate.degraded
        assert np.isfinite(
            metrics.relative_error(
                env.fields["temperature"].vector(), estimate.field.vector()
            )
        )

    def test_robust_solve_survives_losses_without_faulty_rows(self, env):
        # Loss alone must not trip the data-fault telemetry.
        bus = MessageBus(loss_rate=0.2, seed=9)
        nc = NanoCloud.build(
            "nc", bus, 12, 8, n_nodes=96,
            config=BrokerConfig(seed=9, robust_mode="trim"),
            heterogeneous=False, rng=9,
        )
        estimate = nc.run_round(env, measurements=48)
        assert estimate.commands_lost + estimate.reports_lost > 0
        assert estimate.rejected_reports == 0
        assert estimate.quarantined_nodes == ()
