"""Tests for the NanoCloud -> joint spatio-temporal bridge."""

import numpy as np
import pytest

from repro.fields.field import SpatialField
from repro.fields.generators import smooth_field
from repro.fields.temporal import ar1_evolution, evolve_field
from repro.middleware.config import BrokerConfig
from repro.middleware.nanocloud import NanoCloud
from repro.middleware.spacetime import gather_spacetime_window
from repro.network.bus import MessageBus
from repro.sensors.base import Environment

W = H = 8
T = 8


@pytest.fixture
def evolving_world():
    initial = smooth_field(W, H, cutoff=0.2, amplitude=4.0, offset=20.0, rng=0)
    trace = evolve_field(
        initial, ar1_evolution(rho=0.97, innovation_std=0.05),
        steps=T - 1, rng=1,
    )
    truths = list(trace.snapshots)
    envs = [Environment(fields={"temperature": f}) for f in truths]
    return truths, envs


def _nanocloud(seed=3):
    bus = MessageBus()
    return NanoCloud.build(
        "nc", bus, W, H, n_nodes=W * H,
        config=BrokerConfig(seed=seed), heterogeneous=False, rng=seed,
    )


class TestGatherWindow:
    def test_joint_window_reconstructs(self, evolving_world):
        truths, envs = evolving_world
        nc = _nanocloud()
        window = gather_spacetime_window(
            nc, lambda r: envs[r], rounds=T, measurements_per_round=12,
            sparsity=24,
        )
        errors = window.errors_against(truths)
        assert np.median(errors) < 0.05
        assert window.t == T
        assert len(window.samples) == sum(window.per_round_m)

    def test_beats_per_round_reconstruction(self, evolving_world):
        """The point of the bridge: each round's own reconstruction from
        M=8 samples is poor, but the joint window recovers them all."""
        truths, envs = evolving_world
        from repro.core import metrics

        nc = _nanocloud(seed=5)
        per_round_errors = []
        window = gather_spacetime_window(
            nc, lambda r: envs[r], rounds=T, measurements_per_round=8,
            sparsity=20,
        )
        joint_errors = window.errors_against(truths)

        nc2 = _nanocloud(seed=5)
        for r in range(T):
            estimate = nc2.run_round(
                envs[r], timestamp=float(r), measurements=8
            )
            per_round_errors.append(
                metrics.relative_error(
                    truths[r].vector(), estimate.field.vector()
                )
            )
        assert np.median(joint_errors) < np.median(per_round_errors)

    def test_errors_against_shape_check(self, evolving_world):
        truths, envs = evolving_world
        nc = _nanocloud(seed=7)
        window = gather_spacetime_window(
            nc, lambda r: envs[r], rounds=3, measurements_per_round=10
        )
        with pytest.raises(ValueError):
            window.errors_against(truths)  # 8 truths for 3 snapshots

    def test_validation(self, evolving_world):
        truths, envs = evolving_world
        nc = _nanocloud(seed=9)
        with pytest.raises(ValueError):
            gather_spacetime_window(
                nc, lambda r: envs[r], rounds=1, measurements_per_round=8
            )
        with pytest.raises(ValueError):
            gather_spacetime_window(
                nc, lambda r: envs[r], rounds=4, measurements_per_round=0
            )
