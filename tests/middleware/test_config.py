"""Tests for middleware configuration and the compression policy."""

import pytest

from repro.middleware.config import (
    BrokerConfig,
    CompressionPolicy,
    HierarchyConfig,
    NodeConfig,
)


class TestCompressionPolicy:
    def test_dense_mode(self):
        assert CompressionPolicy(mode="dense").measurements(100) == 100

    def test_fixed_ratio(self):
        policy = CompressionPolicy(mode="fixed-ratio", ratio=0.25)
        assert policy.measurements(100) == 25

    def test_sparsity_mode_scales_with_k(self):
        policy = CompressionPolicy(mode="sparsity", oversampling=1.5)
        low = policy.measurements(256, sparsity_estimate=2)
        high = policy.measurements(256, sparsity_estimate=10)
        assert high > low

    def test_sparsity_mode_logarithmic_in_n(self):
        policy = CompressionPolicy(mode="sparsity")
        m_small = policy.measurements(128, sparsity_estimate=5)
        m_big = policy.measurements(8192, sparsity_estimate=5)
        assert m_big < 2 * m_small  # log growth

    def test_min_measurements_clamp(self):
        policy = CompressionPolicy(
            mode="fixed-ratio", ratio=0.01, min_measurements=6
        )
        assert policy.measurements(100) == 6

    def test_max_ratio_clamp(self):
        policy = CompressionPolicy(mode="sparsity", max_ratio=0.5)
        assert policy.measurements(100, sparsity_estimate=90) == 50

    def test_min_clamp_respects_tiny_zone(self):
        policy = CompressionPolicy(min_measurements=8, max_ratio=1.0)
        assert policy.measurements(4, sparsity_estimate=1) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            CompressionPolicy(mode="magic")
        with pytest.raises(ValueError):
            CompressionPolicy(ratio=0.0)
        with pytest.raises(ValueError):
            CompressionPolicy(oversampling=0.0)
        with pytest.raises(ValueError):
            CompressionPolicy(min_measurements=0)
        with pytest.raises(ValueError):
            CompressionPolicy(max_ratio=1.5)
        with pytest.raises(ValueError):
            CompressionPolicy().measurements(0)


class TestBrokerConfig:
    def test_defaults_valid(self):
        config = BrokerConfig()
        assert config.solver == "chs"

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            BrokerConfig(solver="gradient-descent")


class TestNodeConfig:
    def test_defaults(self):
        config = NodeConfig()
        assert config.context_window == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeConfig(context_window=4)
        with pytest.raises(ValueError):
            NodeConfig(context_rate_hz=0.0)
        with pytest.raises(ValueError):
            NodeConfig(temporal_duty_cycle=0.0)


class TestHierarchyConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchyConfig(zones_x=0)
        with pytest.raises(ValueError):
            HierarchyConfig(nodes_per_nanocloud=0)
