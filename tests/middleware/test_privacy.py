"""Tests for privacy policy enforcement (Section 5)."""

import pytest

from repro.middleware.privacy import PrivacyAudit, PrivacyPolicy
from repro.sensors.base import SensorReading


def _reading(sensor="gps", value=12.345):
    return SensorReading(sensor=sensor, timestamp=0.0, value=value)


class TestMayShare:
    def test_default_allows_everything(self):
        assert PrivacyPolicy().may_share("gps")

    def test_opt_out_blocks_everything(self):
        policy = PrivacyPolicy()
        policy.opt_out()
        assert not policy.may_share("temperature")
        policy.opt_in()
        assert policy.may_share("temperature")

    def test_allowlist(self):
        policy = PrivacyPolicy(allowed_sensors={"temperature"})
        assert policy.may_share("temperature")
        assert not policy.may_share("gps")

    def test_blocklist_wins_over_allowlist(self):
        policy = PrivacyPolicy(
            allowed_sensors={"gps"}, blocked_sensors={"gps"}
        )
        assert not policy.may_share("gps")


class TestFilterReading:
    def test_blocked_returns_none(self):
        policy = PrivacyPolicy(blocked_sensors={"gps"})
        assert policy.filter_reading(_reading("gps")) is None

    def test_quantisation_reduces_granularity(self):
        policy = PrivacyPolicy(quantization={"gps": 5.0})
        filtered = policy.filter_reading(_reading("gps", 12.4))
        assert filtered.value == 10.0

    def test_no_quantisation_passes_exact(self):
        policy = PrivacyPolicy()
        assert policy.filter_reading(_reading("gps", 12.4)).value == 12.4

    def test_quantisation_only_for_configured_sensor(self):
        policy = PrivacyPolicy(quantization={"gps": 5.0})
        temp = policy.filter_reading(_reading("temperature", 21.7))
        assert temp.value == 21.7


class TestAudit:
    def test_counts(self):
        audit = PrivacyAudit()
        audit.record("gps", was_shared=True)
        audit.record("gps", was_shared=False)
        audit.record("temperature", was_shared=True)
        assert audit.total_shared() == 2
        assert audit.total_withheld() == 1
        assert audit.shared == {"gps": 1, "temperature": 1}
        assert audit.withheld == {"gps": 1}
