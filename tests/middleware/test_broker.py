"""Tests for the NanoCloud broker's aggregation round."""

import numpy as np
import pytest

from repro.core import metrics
from repro.fields.generators import smooth_field
from repro.fields.priors import build_zone_prior
from repro.fields.temporal import ar1_evolution, evolve_field
from repro.middleware.broker import Broker
from repro.middleware.config import BrokerConfig, CompressionPolicy
from repro.middleware.node import MobileNode
from repro.middleware.privacy import PrivacyPolicy
from repro.network.bus import MessageBus
from repro.network.message import MessageKind
from repro.sensors.base import Environment, NodeState
from repro.sensors.physical import TemperatureSensor


W, H = 12, 8
N = W * H


@pytest.fixture
def truth():
    return smooth_field(W, H, cutoff=0.15, amplitude=4.0, offset=20.0, rng=0)


@pytest.fixture
def env(truth):
    return Environment(fields={"temperature": truth})


def _deploy(bus, broker, n_nodes=N, noise=False, seed=1):
    """Place one node on each of the first n_nodes cells."""
    rng = np.random.default_rng(seed)
    nodes = {}
    for cell in range(n_nodes):
        node_id = f"n{cell}"
        i, j = cell // H, cell % H
        spec = TemperatureSensor().spec
        if not noise:
            spec = type(spec)(
                name=spec.name, unit=spec.unit, noise_std=0.0,
                energy_per_sample_mj=spec.energy_per_sample_mj,
                max_rate_hz=spec.max_rate_hz,
            )
        node = MobileNode(
            node_id,
            sensors={"temperature": TemperatureSensor(spec=spec, rng=rng.integers(2**31))},
            state=NodeState(x=float(i), y=float(j)),
            rng=rng.integers(2**31),
        )
        nodes[node_id] = node
        bus.register(node_id)
        broker.join(node_id, cell)
    return nodes


class TestMembership:
    def test_join_and_coverage(self):
        broker = Broker("b", W, H)
        broker.join("n1", 5)
        broker.add_infrastructure(10, TemperatureSensor(rng=0))
        assert broker.coverage() == {5, 10}
        broker.leave("n1")
        assert broker.coverage() == {10}

    def test_join_out_of_range(self):
        broker = Broker("b", W, H)
        with pytest.raises(ValueError):
            broker.join("n1", N)

    def test_infrastructure_out_of_range(self):
        broker = Broker("b", W, H)
        with pytest.raises(ValueError):
            broker.add_infrastructure(-1, TemperatureSensor())


class TestRunRound:
    def test_reconstructs_smooth_field(self, env, truth):
        bus = MessageBus()
        broker = Broker(
            "b", W, H,
            config=BrokerConfig(solver="chs", seed=3, use_gls=False),
        )
        bus.register("b")
        nodes = _deploy(bus, broker)
        # Round 1 cold-starts with a crude sparsity estimate; the broker
        # then adapts K from the residual, so round 2 is the steady state.
        broker.run_round(bus, nodes, env, measurements=40)
        estimate = broker.run_round(bus, nodes, env, measurements=40)
        err = metrics.relative_error(
            truth.vector(), estimate.field.vector()
        )
        assert err < 0.05
        assert estimate.m <= 40
        assert estimate.reports_ok == estimate.m

    def test_policy_chooses_m(self, env):
        bus = MessageBus()
        broker = Broker(
            "b", W, H,
            config=BrokerConfig(
                policy=CompressionPolicy(mode="fixed-ratio", ratio=0.25),
                seed=4,
            ),
        )
        bus.register("b")
        nodes = _deploy(bus, broker)
        estimate = broker.run_round(bus, nodes, env)
        assert estimate.m == N // 4

    def test_traffic_metered(self, env):
        bus = MessageBus()
        broker = Broker("b", W, H, config=BrokerConfig(seed=5))
        bus.register("b")
        nodes = _deploy(bus, broker)
        estimate = broker.run_round(bus, nodes, env, measurements=20)
        # One command + one report per measurement.
        assert bus.stats.by_kind["sense_command"] == 20
        assert bus.stats.by_kind["sense_report"] == 20

    def test_refusals_fall_back_to_infrastructure(self, env):
        bus = MessageBus()
        broker = Broker("b", W, H, config=BrokerConfig(seed=6))
        bus.register("b")
        nodes = _deploy(bus, broker)
        # Every node refuses; infrastructure covers every cell.
        for node in nodes.values():
            node.policy = PrivacyPolicy(opted_out=True)
        for cell in range(N):
            broker.add_infrastructure(cell, TemperatureSensor(rng=cell))
        estimate = broker.run_round(bus, nodes, env, measurements=24)
        assert estimate.infra_reads == estimate.m
        assert estimate.reports_refused > 0
        assert broker.ledger.category_mj("sensing") > 0

    def test_all_refused_no_infra_raises(self, env):
        bus = MessageBus()
        broker = Broker("b", W, H, config=BrokerConfig(seed=7))
        bus.register("b")
        nodes = _deploy(bus, broker)
        for node in nodes.values():
            node.policy = PrivacyPolicy(opted_out=True)
        with pytest.raises(RuntimeError, match="no measurements"):
            broker.run_round(bus, nodes, env, measurements=10)

    def test_no_coverage_raises(self, env):
        bus = MessageBus()
        broker = Broker("b", W, H)
        bus.register("b")
        with pytest.raises(RuntimeError, match="coverage"):
            broker.run_round(bus, {}, env)

    def test_criticality_biases_selection(self, env):
        criticality = np.zeros(N)
        criticality[:10] = 100.0
        criticality[10:] = 0.01
        hits = np.zeros(N)
        for seed in range(15):
            bus = MessageBus()
            broker = Broker(
                "b", W, H,
                config=BrokerConfig(seed=seed),
                criticality=criticality,
            )
            bus.register("b")
            nodes = _deploy(bus, broker, seed=seed)
            estimate = broker.run_round(bus, nodes, env, measurements=8)
            hits[estimate.plan.locations] += 1
        assert hits[:10].sum() > hits[10:].sum()

    def test_sparsity_adapts_between_rounds(self, env):
        bus = MessageBus()
        broker = Broker("b", W, H, config=BrokerConfig(seed=8))
        bus.register("b")
        nodes = _deploy(bus, broker)
        cold = broker._sparsity_estimate()
        broker.run_round(bus, nodes, env, measurements=40)
        assert broker.last_sparsity is not None
        assert broker._sparsity_estimate() == max(broker.last_sparsity, 1)
        assert broker._sparsity_estimate() != cold or broker.last_sparsity == cold

    def test_gls_used_with_heterogeneous_reports(self, truth):
        env = Environment(fields={"temperature": truth})
        bus = MessageBus()
        broker = Broker("b", W, H, config=BrokerConfig(seed=9, use_gls=True))
        bus.register("b")
        nodes = _deploy(bus, broker, noise=True)
        estimate = broker.run_round(bus, nodes, env, measurements=48)
        err = metrics.relative_error(truth.vector(), estimate.field.vector())
        assert err < 0.2


class TestPrior:
    def test_prior_basis_round(self, env, truth):
        trace = evolve_field(
            truth, ar1_evolution(rho=0.95, innovation_std=0.05),
            steps=15, rng=10,
        )
        prior = build_zone_prior(trace)
        bus = MessageBus()
        broker = Broker(
            "b", W, H,
            config=BrokerConfig(seed=11, use_prior_basis=True, use_gls=False),
        )
        bus.register("b")
        broker.set_prior(prior)
        nodes = _deploy(bus, broker)
        estimate = broker.run_round(bus, nodes, env, measurements=20)
        err = metrics.relative_error(truth.vector(), estimate.field.vector())
        assert err < 0.1
        assert estimate.sparsity_estimate == max(prior.typical_sparsity, 1)

    def test_prior_shape_checked(self):
        broker = Broker("b", W, H)
        small = smooth_field(4, 4, rng=0)
        trace = evolve_field(small, ar1_evolution(), steps=4, rng=1)
        with pytest.raises(ValueError):
            broker.set_prior(build_zone_prior(trace))


class TestContextInbox:
    def test_context_messages_consumed(self):
        bus = MessageBus()
        broker = Broker("b", W, H)
        bus.register("b")
        bus.register("n1")
        from repro.network.message import Message

        bus.send(
            Message(
                kind=MessageKind.CONTEXT_SHARE,
                source="n1",
                destination="b",
                payload={"kind": "activity", "value": "walking"},
                timestamp=1.0,
            )
        )
        processed = broker.process_inbox(bus, now=1.0)
        assert processed == 1
        rollup = broker.groups.aggregate("activity", now=1.0)
        assert rollup.consensus == "walking"

    def test_non_context_messages_left_in_inbox(self):
        bus = MessageBus()
        broker = Broker("b", W, H)
        bus.register("b")
        bus.register("n1")
        from repro.network.message import Message

        bus.send(Message(MessageKind.QUERY, "n1", "b"))
        broker.process_inbox(bus, now=0.0)
        assert bus.endpoint("b").pending() == 1


class TestDisseminate:
    def test_reaches_all_members(self):
        bus = MessageBus()
        broker = Broker("b", W, H)
        bus.register("b")
        for cell in range(5):
            node_id = f"n{cell}"
            bus.register(node_id)
            broker.join(node_id, cell)
        sent = broker.disseminate(bus, {"alert": "fire"}, 1, timestamp=0.0)
        assert sent == 5
        assert bus.endpoint("n3").pending() == 1


class TestCoverageGuard:
    def test_guard_reduces_largest_gap(self, env):
        from repro.fields.coverage import largest_gap_radius

        def worst_gap_over_rounds(max_gap, seed):
            bus = MessageBus()
            broker = Broker(
                "b", W, H,
                config=BrokerConfig(seed=seed, max_coverage_gap=max_gap),
            )
            bus.register("b")
            nodes = _deploy(bus, broker, seed=seed)
            gaps = []
            for r in range(10):
                estimate = broker.run_round(
                    bus, nodes, env, timestamp=float(r), measurements=8
                )
                gaps.append(
                    largest_gap_radius(
                        estimate.plan.locations, broker.n, broker.zone_height
                    )
                )
            return max(gaps)

        unguarded = max(worst_gap_over_rounds(None, s) for s in (3, 5, 7))
        guarded = max(worst_gap_over_rounds(3.0, s) for s in (3, 5, 7))
        assert guarded <= unguarded

    def test_invalid_gap_rejected(self):
        with pytest.raises(ValueError):
            BrokerConfig(max_coverage_gap=-1.0)


class TestOnlinePriorLearning:
    def test_learns_prior_from_own_rounds(self, env, truth):
        bus = MessageBus()
        broker = Broker("b", W, H, config=BrokerConfig(seed=21))
        bus.register("b")
        nodes = _deploy(bus, broker, seed=21)
        for _ in range(10):
            broker.run_round(bus, nodes, env, measurements=48)
        prior = broker.learn_prior_from_history(min_rounds=8)
        assert broker.prior is prior
        assert prior.basis.shape == (N, N)
        # The static field's history is near-rank-1 around its mean, so
        # the learned typical sparsity is tiny.
        assert prior.typical_sparsity <= 6

    def test_prior_improves_scarce_rounds(self, env, truth):
        bus = MessageBus()
        broker = Broker(
            "b", W, H, config=BrokerConfig(seed=23, use_prior_basis=True),
        )
        bus.register("b")
        nodes = _deploy(bus, broker, seed=23)
        # Phase 1: generous rounds build history.
        for _ in range(10):
            broker.run_round(bus, nodes, env, measurements=48)
        before = broker.run_round(bus, nodes, env, measurements=8)
        err_before = metrics.relative_error(
            truth.vector(), before.field.vector()
        )
        broker.learn_prior_from_history()
        after = broker.run_round(bus, nodes, env, measurements=8)
        err_after = metrics.relative_error(
            truth.vector(), after.field.vector()
        )
        assert err_after <= err_before + 0.02

    def test_requires_enough_history(self):
        broker = Broker("b", W, H)
        with pytest.raises(RuntimeError, match="remembered"):
            broker.learn_prior_from_history()
        with pytest.raises(ValueError):
            broker.learn_prior_from_history(min_rounds=1)

    def test_history_bounded(self, env):
        bus = MessageBus()
        broker = Broker("b", W, H, config=BrokerConfig(seed=25))
        broker.history_limit = 5
        bus.register("b")
        nodes = _deploy(bus, broker, seed=25)
        for _ in range(8):
            broker.run_round(bus, nodes, env, measurements=24)
        assert len(broker._history) == 5


class TestGlsStdFloor:
    """A claimed-zero-std row (infrastructure, or a liar) must not get
    unbounded GLS weight: every variance is floored at gls_std_floor^2."""

    def _mixed_broker(self, seed=11):
        bus = MessageBus()
        broker = Broker("b", W, H, config=BrokerConfig(seed=seed))
        bus.register("b")
        # Mobile nodes (noisy, std 0.3) on the first half of the grid...
        nodes = _deploy(bus, broker, n_nodes=N // 2, noise=True, seed=seed)
        # ... and noiseless infrastructure on the rest.
        spec = TemperatureSensor().spec
        zero = type(spec)(
            name=spec.name, unit=spec.unit, noise_std=0.0,
            energy_per_sample_mj=spec.energy_per_sample_mj,
            max_rate_hz=spec.max_rate_hz,
        )
        for cell in range(N // 2, N):
            broker.add_infrastructure(
                cell, TemperatureSensor(spec=zero, rng=cell)
            )
        return bus, broker, nodes

    def test_zero_std_rows_floored_not_dominant(self, env):
        bus, broker, nodes = self._mixed_broker()
        pending = broker.collect_round(bus, nodes, env, measurements=N)
        assert pending.covariance is not None
        variances = np.diag(pending.covariance)
        floor = broker.config.gls_std_floor
        assert np.all(variances >= floor**2 - 1e-15)
        infra = [
            i for i, src in enumerate(pending.sources) if src == ()
        ]
        mobile = [
            i for i, src in enumerate(pending.sources) if src != ()
        ]
        assert infra and mobile  # both populations sampled
        # Infrastructure claims 0.0 -> lands exactly on the floor.
        assert np.allclose(variances[infra], floor**2)
        # The weight ratio between any two rows is bounded by the floor.
        assert variances.max() / variances.min() <= (0.3 / floor) ** 2 + 1e-9
        # The round still solves end to end with the mixed covariance.
        result, x_hat = broker.solve_round(pending)
        estimate = broker.finalize_round(pending, result, x_hat)
        assert np.isfinite(estimate.field.vector()).all()

    def test_floor_must_be_positive(self):
        with pytest.raises(ValueError, match="gls_std_floor"):
            BrokerConfig(gls_std_floor=0.0)
        with pytest.raises(ValueError, match="gls_std_floor"):
            BrokerConfig(gls_std_floor=-0.1)
