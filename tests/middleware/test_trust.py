"""Trust ledger, quarantine, and Byzantine-tolerant broker rounds."""

import numpy as np
import pytest

from repro.middleware.broker import Broker
from repro.middleware.config import BrokerConfig, CompressionPolicy
from repro.middleware.node import MobileNode
from repro.middleware.trust import NodeTrust, TrustManager
from repro.network.bus import MessageBus
from repro.sensors.base import Environment, NodeState
from repro.sensors.faults import Adversarial, SensorFaultInjector, StuckAt
from repro.sensors.physical import TemperatureSensor
from repro.fields.generators import smooth_field


class TestTrustManager:
    def test_unknown_node_has_full_trust(self):
        trust = TrustManager()
        assert trust.trust_of("nobody") == 1.0
        assert not trust.is_quarantined("nobody")

    def test_ewma_math(self):
        trust = TrustManager(alpha=0.3)
        assert trust.observe("n1", rejected=True) == pytest.approx(0.7)
        assert trust.observe("n1", rejected=True) == pytest.approx(0.49)
        assert trust.observe("n1", rejected=False) == pytest.approx(
            0.7 * 0.49 + 0.3
        )
        record = trust.get("n1")
        assert record.rejected == 2
        assert record.accepted == 1
        assert record.observations == 3

    def test_trust_never_below_floor(self):
        trust = TrustManager(alpha=1.0, floor=0.05)
        for _ in range(10):
            trust.observe("n1", rejected=True)
        assert trust.trust_of("n1") == 0.05

    def test_row_trust_is_least_contributor(self):
        trust = TrustManager(alpha=0.5)
        trust.observe("bad", rejected=True)
        assert trust.row_trust(()) == 1.0  # infrastructure row
        assert trust.row_trust(("good",)) == 1.0
        assert trust.row_trust(("good", "bad")) == 0.5

    def test_quarantine_needs_repeat_offense(self):
        trust = TrustManager(alpha=1.0, min_rejections=2)
        trust.observe("n1", rejected=True)  # trust at floor already
        newly, released = trust.update_quarantine(1)
        assert newly == [] and released == []
        trust.observe("n1", rejected=True)
        newly, _ = trust.update_quarantine(2)
        assert newly == ["n1"]
        assert trust.is_quarantined("n1")
        assert trust.get("n1").quarantined_at_round == 2

    def test_release_hysteresis(self):
        trust = TrustManager(
            alpha=0.5, quarantine_below=0.4, release_at=0.8, min_rejections=1
        )
        trust.observe("n1", rejected=True)
        trust.observe("n1", rejected=True)  # 0.25 < 0.4
        trust.update_quarantine(1)
        assert trust.is_quarantined("n1")
        trust.observe("n1", rejected=False)  # 0.625: above quarantine,
        _, released = trust.update_quarantine(2)  # below release
        assert released == []
        trust.observe("n1", rejected=False)  # 0.8125 >= 0.8
        _, released = trust.update_quarantine(3)
        assert released == ["n1"]
        assert not trust.is_quarantined("n1")
        assert trust.get("n1").quarantined_at_round is None

    def test_quarantine_cap_keeps_worst_offenders(self):
        trust = TrustManager(
            alpha=1.0, min_rejections=1, max_quarantine_fraction=0.25
        )
        for node, rejections in (("a", 3), ("b", 2), ("c", 1)):
            for _ in range(rejections):
                trust.observe(node, rejected=True)
        # Population 8 -> cap 2; all three are at the floor so the
        # sorted (trust, id) order decides: a and b enter first.
        newly, _ = trust.update_quarantine(1, member_count=8)
        assert newly == ["a", "b"]
        assert trust.quarantined == {"a", "b"}

    def test_probe_candidates_longest_quarantined_first(self):
        trust = TrustManager(alpha=1.0, min_rejections=1)
        for node, round_index in (("late", 5), ("early", 1)):
            trust.observe(node, rejected=True)
            trust.observe(node, rejected=True)
            record = trust.get(node)
            record.quarantined = True
            record.quarantined_at_round = round_index
        assert trust.probe_candidates(1) == ["early"]
        assert trust.get("early").probes == 1
        assert trust.get("late").probes == 0
        assert trust.probe_candidates(0) == []

    def test_snapshot_and_forget(self):
        trust = TrustManager(alpha=0.5)
        trust.observe("b", rejected=True)
        trust.observe("a", rejected=False)
        assert list(trust.snapshot()) == ["a", "b"]
        assert trust.snapshot()["b"] == pytest.approx(0.5)
        trust.forget("b")
        assert "b" not in trust.snapshot()
        assert trust.trust_of("b") == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"quarantine_below": 0.7, "release_at": 0.6},
            {"min_rejections": 0},
            {"max_quarantine_fraction": 0.0},
            {"floor": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TrustManager(**kwargs)

    def test_nodetrust_defaults(self):
        record = NodeTrust()
        assert record.trust == 1.0
        assert record.observations == 0
        assert not record.quarantined


# -- broker integration ----------------------------------------------------

W, H = 8, 4
N = W * H


@pytest.fixture
def env():
    return Environment(
        fields={
            "temperature": smooth_field(
                W, H, cutoff=0.15, amplitude=3.0, offset=20.0, rng=0
            )
        }
    )


def _setup(injector=None, **cfg_kwargs):
    """Fully-covered zone with a dense plan: every cell every round, so
    faulty nodes are observed each round and runs replay exactly."""
    cfg_kwargs.setdefault("solver", "chs")
    cfg_kwargs.setdefault("seed", 3)
    cfg_kwargs.setdefault("policy", CompressionPolicy(mode="dense"))
    bus = MessageBus()
    broker = Broker("b", W, H, config=BrokerConfig(**cfg_kwargs))
    bus.register("b")
    rng = np.random.default_rng(42)
    nodes = {}
    for cell in range(N):
        node_id = f"n{cell:02d}"
        i, j = cell // H, cell % H
        node = MobileNode(
            node_id,
            sensors={
                "temperature": TemperatureSensor(rng=int(rng.integers(2**31)))
            },
            state=NodeState(x=float(i), y=float(j)),
            rng=int(rng.integers(2**31)),
        )
        node.fault_injector = injector
        nodes[node_id] = node
        bus.register(node_id)
        broker.join(node_id, cell)
    return bus, broker, nodes


def _adversarial_injector(bad_ids, offset=9.0):
    injector = SensorFaultInjector()
    for node_id in bad_ids:
        injector.attach(node_id, Adversarial(offset=offset, claimed_std=0.01))
    return injector


BAD = ("n05", "n13", "n27")


class TestBrokerRobustRounds:
    def test_trim_matches_naive_exactly_without_faults(self, env):
        bus_a, naive, nodes_a = _setup(robust_mode="none")
        bus_b, trim, nodes_b = _setup(robust_mode="trim")
        for _ in range(3):
            est_naive = naive.run_round(bus_a, nodes_a, env)
            est_trim = trim.run_round(bus_b, nodes_b, env)
            assert np.array_equal(
                est_naive.field.grid, est_trim.field.grid
            )
            assert est_trim.rejected_reports == 0
            assert est_trim.robust_rounds == 0
            assert not est_trim.degraded

    def test_adversarial_rows_rejected_and_telemetry_filled(self, env):
        injector = _adversarial_injector(BAD)
        bus, broker, nodes = _setup(robust_mode="trim", injector=injector)
        estimate = broker.run_round(bus, nodes, env)
        assert estimate.rejected_reports >= len(BAD)
        assert estimate.effective_m == estimate.m - estimate.rejected_reports
        assert estimate.degraded
        assert estimate.robust_rounds >= 1
        for node_id in BAD:
            assert estimate.trust[node_id] < 1.0
        honest_trust = [
            trust
            for node_id, trust in estimate.trust.items()
            if node_id not in BAD
        ]
        assert min(honest_trust, default=1.0) > max(
            estimate.trust[node_id] for node_id in BAD
        )

    def test_trim_recovers_field_from_adversaries(self, env):
        bus_c, clean, nodes_c = _setup(robust_mode="none")
        baseline = clean.run_round(bus_c, nodes_c, env)
        truth = env.fields["temperature"].grid

        injector = _adversarial_injector(BAD)
        bus_n, naive, nodes_n = _setup(robust_mode="none", injector=injector)
        corrupted = naive.run_round(bus_n, nodes_n, env)

        injector2 = _adversarial_injector(BAD)
        bus_t, trim, nodes_t = _setup(robust_mode="trim", injector=injector2)
        robust = trim.run_round(bus_t, nodes_t, env)

        def rmse(estimate):
            return float(
                np.sqrt(np.mean((estimate.field.grid - truth) ** 2))
            )

        assert rmse(robust) < 2.0 * rmse(baseline)
        assert rmse(corrupted) > 3.0 * rmse(robust)

    def test_repeat_offenders_quarantined_and_not_reselected(self, env):
        injector = _adversarial_injector(BAD)
        bus, broker, nodes = _setup(robust_mode="trim", injector=injector)
        estimate = None
        for _ in range(5):
            estimate = broker.run_round(bus, nodes, env)
            if set(BAD) <= set(estimate.quarantined_nodes):
                break
        assert set(BAD) <= set(estimate.quarantined_nodes)
        assert set(BAD) <= broker.trust.quarantined
        # Quarantined nodes never appear in the next round's candidates.
        plan = broker.plan_round()
        for candidates in plan.members_by_cell.values():
            assert not (set(candidates) & set(BAD))

    def test_huber_mode_downweights_without_exclusion(self, env):
        injector = _adversarial_injector(BAD)
        bus, broker, nodes = _setup(robust_mode="huber", injector=injector)
        estimate = broker.run_round(bus, nodes, env)
        truth = env.fields["temperature"].grid
        rmse = float(np.sqrt(np.mean((estimate.field.grid - truth) ** 2)))
        injector_n = _adversarial_injector(BAD)
        bus_n, naive, nodes_n = _setup(
            robust_mode="none", injector=injector_n
        )
        naive_est = naive.run_round(bus_n, nodes_n, env)
        naive_rmse = float(
            np.sqrt(np.mean((naive_est.field.grid - truth) ** 2))
        )
        assert rmse < naive_rmse
        assert estimate.rejected_reports >= 1

    def test_same_seed_faulty_replay_is_bit_identical(self, env):
        def run():
            injector = _adversarial_injector(BAD)
            bus, broker, nodes = _setup(
                robust_mode="trim", injector=injector
            )
            fields, rejected = [], []
            for _ in range(4):
                estimate = broker.run_round(bus, nodes, env)
                fields.append(estimate.field.grid.copy())
                rejected.append(estimate.rejected_reports)
            return fields, rejected, broker.trust.snapshot(), broker.trust.quarantined

        fields_a, rejected_a, trust_a, quarantine_a = run()
        fields_b, rejected_b, trust_b, quarantine_b = run()
        assert rejected_a == rejected_b
        assert trust_a == trust_b
        assert quarantine_a == quarantine_b
        for field_a, field_b in zip(fields_a, fields_b):
            assert np.array_equal(field_a, field_b)

    def test_rehabilitation_restores_recovered_node(self, env):
        # Stuck sensors that recover at t=0 never lie again (window is
        # behind every round's timestamps) — but trust only climbs if
        # the broker probes them.
        injector = SensorFaultInjector()
        injector.attach("n05", StuckAt(60.0, start=0.0, end=4.0))
        bus, broker, nodes = _setup(
            robust_mode="trim",
            injector=injector,
            rehab_interval=1,
            rehab_probes=2,
        )
        for timestamp in (1.0, 2.0, 3.0):
            broker.run_round(bus, nodes, env, timestamp=timestamp)
            if broker.trust.is_quarantined("n05"):
                break
        assert broker.trust.is_quarantined("n05")
        # The fault window is over: probe rounds see honest readings.
        released_at = None
        for step in range(12):
            estimate = broker.run_round(
                bus, nodes, env, timestamp=10.0 + step
            )
            if not broker.trust.is_quarantined("n05"):
                released_at = step
                break
        assert released_at is not None
        assert broker.trust.trust_of("n05") >= broker.config.rehab_trust
        assert broker.trust.get("n05").probes >= 1
        assert "n05" not in estimate.quarantined_nodes
