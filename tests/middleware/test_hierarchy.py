"""Tests for LocalCloud and the full Fig.-1 hierarchy."""

import numpy as np
import pytest

from repro.core import metrics
from repro.fields.generators import urban_temperature_field
from repro.middleware.config import BrokerConfig, HierarchyConfig
from repro.middleware.hierarchy import Hierarchy
from repro.middleware.localcloud import LocalCloud
from repro.network.bus import MessageBus
from repro.sensors.base import Environment


@pytest.fixture
def truth():
    return urban_temperature_field(16, 8, rng=3)


@pytest.fixture
def env(truth):
    return Environment(fields={"temperature": truth})


class TestLocalCloud:
    def test_nc_split_and_origins(self):
        bus = MessageBus()
        lc = LocalCloud(
            "lc0", bus, 8, 8, n_nanoclouds=2, nodes_per_nc=10,
            origin=(4, 0), rng=0,
        )
        assert len(lc.nanoclouds) == 2
        assert lc.nanoclouds[0].origin == (4, 0)
        assert lc.nanoclouds[1].origin == (8, 0)
        assert lc.n_nodes == 20

    def test_uneven_split_rejected(self):
        bus = MessageBus()
        with pytest.raises(ValueError):
            LocalCloud("lc0", bus, 9, 8, n_nanoclouds=2)

    def test_round_concatenates_columns(self, env, truth):
        bus = MessageBus()
        lc = LocalCloud(
            "lc0", bus, 16, 8, n_nanoclouds=2, nodes_per_nc=60,
            config=BrokerConfig(seed=1), heterogeneous=False, rng=1,
        )
        result = lc.run_round(env)
        assert result.field.width == 16
        assert result.field.height == 8
        assert len(result.nc_estimates) == 2

    def test_aggregate_messages_metered(self, env):
        bus = MessageBus()
        lc = LocalCloud(
            "lc0", bus, 16, 8, n_nanoclouds=2, nodes_per_nc=30, rng=2
        )
        lc.run_round(env)
        assert bus.stats.by_kind["aggregate"] == 2

    def test_explicit_budgets(self, env):
        bus = MessageBus()
        lc = LocalCloud(
            "lc0", bus, 16, 8, n_nanoclouds=2, nodes_per_nc=60, rng=3
        )
        result = lc.run_round(env, measurements_per_nc=[10, 20])
        assert result.nc_estimates[0].m <= 10
        assert result.nc_estimates[1].m <= 20

    def test_wrong_budget_count(self, env):
        bus = MessageBus()
        lc = LocalCloud("lc0", bus, 16, 8, n_nanoclouds=2, nodes_per_nc=10, rng=4)
        with pytest.raises(ValueError):
            lc.run_round(env, measurements_per_nc=[10])


class TestHierarchy:
    def _hierarchy(self, **kwargs):
        defaults = dict(
            config=HierarchyConfig(
                zones_x=4, zones_y=2, nodes_per_nanocloud=48
            ),
            broker_config=BrokerConfig(seed=5),
            rng=42,
        )
        defaults.update(kwargs)
        return Hierarchy(16, 8, **defaults)

    def test_structure(self):
        h = self._hierarchy()
        assert len(h.localclouds) == 8
        assert h.n_nodes == 8 * 48

    def test_global_round_accuracy(self, env, truth):
        h = self._hierarchy()
        h.run_global_round(env)  # warm-up: adapts per-zone sparsity
        estimate = h.run_global_round(env, timestamp=1.0)
        err = metrics.relative_error(truth.vector(), estimate.field.vector())
        assert err < 0.1
        assert estimate.total_measurements < truth.n

    def test_zone_budgets_feed_round(self, env, truth):
        h = self._hierarchy()
        budgets = h.zone_budgets(truth, total_budget=64)
        assert sum(budgets.values()) == 64
        estimate = h.run_global_round(env, zone_measurements=budgets)
        assert estimate.total_measurements <= 64

    def test_cloud_receives_one_aggregate_per_zone(self, env):
        h = self._hierarchy()
        before = h.bus.stats.by_kind.get("aggregate", 0)
        h.run_global_round(env)
        # Each NC reports to its LC head, each LC head to the cloud:
        # with 1 NC per LC that is 2 aggregates per zone.
        assert h.bus.stats.by_kind["aggregate"] - before == 2 * len(h.localclouds)

    def test_split_budget_even(self):
        assert Hierarchy._split_budget(10, 3) == [4, 3, 3]
        assert sum(Hierarchy._split_budget(17, 4)) == 17

    def test_criticality_matrix_passed(self, env):
        crit = np.ones((2, 4))
        crit[0, 0] = 10.0
        h = self._hierarchy(criticality=crit)
        zone0 = h.zone_grid.zones[0]
        assert zone0.criticality == 10.0
        broker = h.localclouds[0].nanoclouds[0].broker
        assert broker.criticality is not None

    def test_node_energy_accumulates(self, env):
        h = self._hierarchy()
        h.run_global_round(env)
        assert h.total_node_energy_mj() > 0
