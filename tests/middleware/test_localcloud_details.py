"""Focused LocalCloud tests: criticality slicing, prior installation,
and the dense-policy configuration path."""

import numpy as np
import pytest

from repro.core import metrics
from repro.fields.generators import smooth_field
from repro.fields.priors import build_zone_prior
from repro.fields.temporal import ar1_evolution, evolve_field
from repro.middleware.config import BrokerConfig, CompressionPolicy
from repro.middleware.localcloud import LocalCloud
from repro.network.bus import MessageBus
from repro.sensors.base import Environment


class TestCriticalitySlicing:
    def test_nc_columns_get_their_slice(self):
        """A zone-local criticality vector is split column-wise across
        the NanoClouds; each broker sees exactly its own cells."""
        zone_w, zone_h = 8, 4
        criticality = np.arange(zone_w * zone_h, dtype=float)
        bus = MessageBus()
        lc = LocalCloud(
            "lc", bus, zone_w, zone_h, n_nanoclouds=2, nodes_per_nc=8,
            criticality=criticality, rng=0,
        )
        left = lc.nanoclouds[0].broker.criticality
        right = lc.nanoclouds[1].broker.criticality
        assert left.size == right.size == 16
        # Column-stacked layout: first NC gets cells of columns 0..3.
        assert np.array_equal(left, criticality[:16])
        assert np.array_equal(right, criticality[16:])


class TestPriorThroughLocalCloud:
    def test_prior_installed_per_nc_broker(self):
        truth = smooth_field(8, 8, cutoff=0.2, amplitude=4.0, offset=20.0, rng=0)
        env = Environment(fields={"temperature": truth})
        bus = MessageBus()
        lc = LocalCloud(
            "lc", bus, 8, 8, n_nanoclouds=1, nodes_per_nc=64,
            config=BrokerConfig(use_prior_basis=True, use_gls=True, seed=1),
            heterogeneous=True, rng=1,
        )
        trace = evolve_field(
            truth, ar1_evolution(rho=0.95, innovation_std=0.05),
            steps=12, rng=2,
        )
        lc.nanoclouds[0].broker.set_prior(build_zone_prior(trace))
        result = lc.run_round(env)
        err = metrics.relative_error(
            truth.vector(), result.field.vector()
        )
        assert err < 0.15
        # Priors drive the sparsity estimate the broker reports.
        assert result.nc_estimates[0].sparsity_estimate >= 1


class TestDensePolicy:
    def test_dense_mode_samples_everything(self):
        truth = smooth_field(6, 6, cutoff=0.3, amplitude=3.0, offset=20.0, rng=3)
        env = Environment(fields={"temperature": truth})
        bus = MessageBus()
        lc = LocalCloud(
            "lc", bus, 6, 6, n_nanoclouds=1, nodes_per_nc=36,
            config=BrokerConfig(
                policy=CompressionPolicy(mode="dense"), seed=4,
            ),
            heterogeneous=False, rng=4,
        )
        result = lc.run_round(env)
        assert result.nc_estimates[0].m == 36
        err = metrics.relative_error(truth.vector(), result.field.vector())
        assert err < 0.05


class TestCoefficientsReported:
    def test_upward_payload_counts_support(self):
        truth = smooth_field(8, 8, cutoff=0.2, amplitude=4.0, offset=20.0, rng=5)
        env = Environment(fields={"temperature": truth})
        bus = MessageBus()
        lc = LocalCloud(
            "lc", bus, 8, 8, n_nanoclouds=1, nodes_per_nc=64,
            config=BrokerConfig(seed=6), heterogeneous=False, rng=6,
        )
        result = lc.run_round(env)
        support = int(result.nc_estimates[0].reconstruction.support.size)
        assert result.coefficients_reported == 2 * support
        # The compressed upward payload is far smaller than the zone.
        assert result.coefficients_reported < 64


class TestZoneEstimatesTopic:
    """finish_round publishes a round summary on the shared topic."""

    def _lc(self):
        truth = smooth_field(6, 6, cutoff=0.3, amplitude=3.0, offset=20.0, rng=7)
        env = Environment(fields={"temperature": truth})
        bus = MessageBus()
        lc = LocalCloud(
            "lc", bus, 6, 6, n_nanoclouds=1, nodes_per_nc=36,
            config=BrokerConfig(seed=7), heterogeneous=False, rng=7,
        )
        return env, bus, lc

    def test_subscriber_hears_round_summary(self):
        from repro.network.topics import TOPIC_ZONE_ESTIMATES

        env, bus, lc = self._lc()
        bus.register("monitor")
        bus.subscribe("monitor", TOPIC_ZONE_ESTIMATES)
        result = lc.run_round(env)
        inbox = bus.endpoint("monitor").drain()
        assert len(inbox) == 1
        payload = inbox[0].payload
        assert payload["lc"] == "lc"
        assert payload["measurements"] == result.total_measurements
        assert payload["coefficients"] == result.coefficients_reported

    def test_no_subscribers_means_no_traffic(self):
        env, bus, lc = self._lc()
        before = bus.stats.messages
        lc.run_round(env)
        baseline = bus.stats.messages - before

        env2, bus2, lc2 = self._lc()
        from repro.network.topics import TOPIC_ZONE_ESTIMATES

        bus2.register("monitor")
        bus2.subscribe("monitor", TOPIC_ZONE_ESTIMATES)
        before2 = bus2.stats.messages
        lc2.run_round(env2)
        with_monitor = bus2.stats.messages - before2
        # Exactly one extra metered message, and only with a listener.
        assert with_monitor == baseline + 1
