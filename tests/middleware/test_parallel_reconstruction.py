"""Parallel zone reconstruction: bit-identical to serial, shared bases.

The parallelism knob only fans the *solve* phase over threads;
collection (bus + RNG) and finalisation (state mutation) stay serial,
so two same-seeded deployments must produce byte-for-byte identical
global estimates whether or not the pool is used — across multiple
rounds, so the sparsity-adaptation state carries identically too.
"""

import numpy as np
import pytest

from repro.fields import urban_temperature_field
from repro.middleware.api import SenseDroid
from repro.middleware.config import BrokerConfig, HierarchyConfig
from repro.middleware.localcloud import solve_pending_rounds
from repro.sensors.base import Environment


def _deploy(broker_config, *, seed=123, zones=2, nodes=24):
    truth = urban_temperature_field(32, 32, rng=7)
    env = Environment(fields={"temperature": truth})
    return SenseDroid(
        env,
        hierarchy_config=HierarchyConfig(
            zones_x=zones, zones_y=zones, nodes_per_nanocloud=nodes
        ),
        broker_config=broker_config,
        rng=seed,
    )


class TestParallelEqualsSerial:
    def test_global_fields_bit_identical_over_rounds(self):
        serial = _deploy(BrokerConfig())
        parallel = _deploy(
            BrokerConfig(
                parallel_reconstruction=True, reconstruction_workers=4
            )
        )
        for _ in range(3):
            a = serial.sense_field()
            b = parallel.sense_field()
            assert np.array_equal(a.field.grid, b.field.grid)
            assert a.total_measurements == b.total_measurements

    def test_zone_estimates_identical(self):
        serial = _deploy(BrokerConfig())
        parallel = _deploy(BrokerConfig(parallel_reconstruction=True))
        ra = serial.sense_field()
        rb = parallel.sense_field()
        for zone_id, result_a in ra.zone_results.items():
            result_b = rb.zone_results[zone_id]
            for ea, eb in zip(result_a.nc_estimates, result_b.nc_estimates):
                assert np.array_equal(ea.field.grid, eb.field.grid)
                assert np.array_equal(
                    ea.reconstruction.support, eb.reconstruction.support
                )
                assert ea.sparsity_estimate == eb.sparsity_estimate

    def test_localcloud_round_parallel_identical(self):
        # Parallelism inside one LocalCloud (multiple NCs per zone).
        def build(parallel):
            truth = urban_temperature_field(32, 16, rng=3)
            env = Environment(fields={"temperature": truth})
            return SenseDroid(
                env,
                hierarchy_config=HierarchyConfig(
                    zones_x=1,
                    zones_y=1,
                    nodes_per_nanocloud=24,
                    nanoclouds_per_localcloud=4,
                ),
                broker_config=BrokerConfig(
                    parallel_reconstruction=parallel
                ),
                rng=99,
            )

        a = build(False).sense_field()
        b = build(True).sense_field()
        assert np.array_equal(a.field.grid, b.field.grid)


class TestSharedBasisRegistry:
    def test_same_shaped_brokers_share_one_basis_object(self):
        system = _deploy(BrokerConfig())
        brokers = [
            nc.broker
            for lc in system.hierarchy.localclouds.values()
            for nc in lc.nanoclouds
        ]
        assert len(brokers) >= 2
        first = brokers[0]._basis()
        for broker in brokers[1:]:
            assert broker._basis() is first

    def test_reference_engine_builds_private_dense_bases(self):
        system = _deploy(BrokerConfig(solver_engine="reference"))
        brokers = [
            nc.broker
            for lc in system.hierarchy.localclouds.values()
            for nc in lc.nanoclouds
        ]
        a, b = brokers[0]._basis(), brokers[1]._basis()
        assert isinstance(a, np.ndarray)
        assert a is not b

    def test_dense_registry_basis_when_operators_disabled(self):
        system = _deploy(BrokerConfig(operator_basis=False))
        brokers = [
            nc.broker
            for lc in system.hierarchy.localclouds.values()
            for nc in lc.nanoclouds
        ]
        a, b = brokers[0]._basis(), brokers[1]._basis()
        assert isinstance(a, np.ndarray)
        assert a is b
        assert not a.flags.writeable


class TestReferenceEngineEndToEnd:
    def test_reference_round_matches_fast_round(self):
        fast = _deploy(BrokerConfig()).sense_field()
        ref = _deploy(BrokerConfig(solver_engine="reference")).sense_field()
        assert np.allclose(ref.field.grid, fast.field.grid, atol=1e-8)


class TestSolvePendingRounds:
    def test_preserves_input_order(self):
        system = _deploy(BrokerConfig(parallel_reconstruction=True))
        hierarchy = system.hierarchy
        env = system.env
        pairs = []
        for lc in hierarchy.localclouds.values():
            pairs.extend(lc.collect_rounds(env, 0.0))
        serial = [broker.solve_round(p) for broker, p in pairs]
        pooled = solve_pending_rounds(pairs, hierarchy.broker_config)
        for (_, xa), (_, xb) in zip(serial, pooled):
            assert np.array_equal(xa, xb)
        # Leave the brokers consistent for garbage collection: finalise.
        cursor = 0
        for lc in hierarchy.localclouds.values():
            n = len(lc.nanoclouds)
            lc.finish_round(
                pairs[cursor : cursor + n], pooled[cursor : cursor + n], 0.0
            )
            cursor += n


class TestConfigValidation:
    def test_rejects_bad_engine(self):
        with pytest.raises(ValueError):
            BrokerConfig(solver_engine="warp")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            BrokerConfig(reconstruction_workers=0)
