"""Tests for the incentive mechanisms (Section 5)."""

import pytest

from repro.middleware.incentives import (
    Bid,
    Candidate,
    RecruitmentSelector,
    ReverseAuction,
    second_price_auction,
)


class TestSecondPrice:
    def test_lowest_bid_wins_pays_second(self):
        result = second_price_auction(
            [Bid("a", 5.0), Bid("b", 3.0), Bid("c", 8.0)]
        )
        assert result.winners == ("b",)
        assert result.payments["b"] == 5.0

    def test_single_bid(self):
        result = second_price_auction([Bid("solo", 4.0)])
        assert result.payments["solo"] == 4.0

    def test_truthfulness(self):
        """Misreporting cannot improve the winner's utility (Vickrey)."""
        true_cost = 3.0
        others = [Bid("b", 5.0), Bid("c", 7.0)]
        honest = second_price_auction([Bid("a", true_cost)] + others)
        utility_honest = honest.payments.get("a", 0.0) - (
            true_cost if "a" in honest.winners else 0.0
        )
        for misreport in (1.0, 4.0, 6.0, 10.0):
            outcome = second_price_auction([Bid("a", misreport)] + others)
            utility = outcome.payments.get("a", 0.0) - (
                true_cost if "a" in outcome.winners else 0.0
            )
            assert utility <= utility_honest + 1e-12

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            second_price_auction([])

    def test_bid_validation(self):
        with pytest.raises(ValueError):
            Bid("", 1.0)
        with pytest.raises(ValueError):
            Bid("a", -1.0)


class TestReverseAuction:
    def test_cheapest_k_win(self):
        auction = ReverseAuction()
        result = auction.run_round(
            [Bid("a", 5.0), Bid("b", 1.0), Bid("c", 3.0), Bid("d", 9.0)], k=2
        )
        assert set(result.winners) == {"b", "c"}
        assert result.total_cost == 4.0

    def test_losers_accrue_credit_and_eventually_win(self):
        auction = ReverseAuction(credit_per_loss=1.0)
        bids = [Bid("cheap", 2.0), Bid("pricey", 6.0)]
        rounds_until_win = None
        for round_no in range(1, 10):
            result = auction.run_round(bids, k=1)
            if "pricey" in result.winners:
                rounds_until_win = round_no
                break
        assert rounds_until_win is not None  # VPC prevents starvation

    def test_winner_credit_resets(self):
        auction = ReverseAuction(credit_per_loss=2.0)
        auction.run_round([Bid("a", 1.0), Bid("b", 5.0)], k=1)
        assert auction.credits["b"] == 2.0
        auction.run_round([Bid("a", 9.0), Bid("b", 5.0)], k=1)
        assert auction.credits["b"] == 0.0  # b won and reset

    def test_pay_as_bid(self):
        auction = ReverseAuction()
        result = auction.run_round([Bid("a", 3.5), Bid("b", 4.0)], k=1)
        assert result.payments["a"] == 3.5

    def test_duplicate_bidder_rejected(self):
        auction = ReverseAuction()
        with pytest.raises(ValueError):
            auction.run_round([Bid("a", 1.0), Bid("a", 2.0)], k=1)

    def test_k_clamped_to_bids(self):
        auction = ReverseAuction()
        result = auction.run_round([Bid("a", 1.0)], k=5)
        assert result.winners == ("a",)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReverseAuction(credit_per_loss=-1.0)
        with pytest.raises(ValueError):
            ReverseAuction().run_round([], k=1)
        with pytest.raises(ValueError):
            ReverseAuction().run_round([Bid("a", 1.0)], k=0)


class TestRecruitment:
    def _candidates(self):
        return [
            Candidate("good-cheap", coverage=0.9, quality=2.0, cost=1.0),
            Candidate("good-pricey", coverage=0.9, quality=2.0, cost=10.0),
            Candidate("bad-cheap", coverage=0.1, quality=0.5, cost=1.0),
        ]

    def test_score_ordering(self):
        selector = RecruitmentSelector()
        picked = selector.select(self._candidates(), k=1)
        assert picked[0].node_id == "good-cheap"

    def test_min_coverage_filter(self):
        selector = RecruitmentSelector(min_coverage=0.5)
        picked = selector.select(self._candidates(), k=3)
        assert all(c.coverage >= 0.5 for c in picked)
        assert len(picked) == 2

    def test_cost_weight_zero_ignores_cost(self):
        selector = RecruitmentSelector(cost_weight=0.0)
        picked = selector.select(self._candidates(), k=2)
        assert {c.node_id for c in picked} == {"good-cheap", "good-pricey"}

    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            Candidate("x", coverage=1.5, quality=1.0, cost=1.0)
        with pytest.raises(ValueError):
            Candidate("x", coverage=0.5, quality=-1.0, cost=1.0)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            RecruitmentSelector().select(self._candidates(), k=0)
