"""Tests for adaptive duty-cycling and round-robin sensing rotation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.middleware.scheduler import AdaptiveDutyCycle, RoundRobinScheduler


class TestAdaptiveDutyCycle:
    def test_raises_duty_on_high_error(self):
        ctl = AdaptiveDutyCycle(target_error=0.1, duty_cycle=0.2)
        new = ctl.update(observed_error=0.5)
        assert new > 0.2

    def test_lowers_duty_on_low_error(self):
        ctl = AdaptiveDutyCycle(target_error=0.1, duty_cycle=0.5)
        new = ctl.update(observed_error=0.01)
        assert new < 0.5

    def test_hysteresis_band_holds(self):
        ctl = AdaptiveDutyCycle(target_error=0.1, duty_cycle=0.3, hysteresis=0.2)
        assert ctl.update(0.1) == 0.3
        assert ctl.update(0.11) == 0.3  # within +-20%

    @given(
        errors=st.lists(
            st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=50
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_duty_always_within_bounds(self, errors):
        ctl = AdaptiveDutyCycle(
            target_error=0.1, duty_cycle=0.25, min_duty=0.05, max_duty=0.9
        )
        for e in errors:
            duty = ctl.update(e)
            assert 0.05 <= duty <= 0.9

    def test_converges_near_target(self):
        """Closed loop against a synthetic error model err = c / duty."""
        ctl = AdaptiveDutyCycle(target_error=0.1, duty_cycle=0.5)
        for _ in range(40):
            observed = 0.02 / ctl.duty_cycle
            ctl.update(observed)
        final_error = 0.02 / ctl.duty_cycle
        assert 0.05 < final_error < 0.2

    def test_samples_for(self):
        ctl = AdaptiveDutyCycle(target_error=0.1, duty_cycle=0.25)
        assert ctl.samples_for(256) == 64
        assert ctl.samples_for(1) == 1
        with pytest.raises(ValueError):
            ctl.samples_for(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveDutyCycle(target_error=0.0)
        with pytest.raises(ValueError):
            AdaptiveDutyCycle(target_error=0.1, duty_cycle=0.01, min_duty=0.05)
        with pytest.raises(ValueError):
            AdaptiveDutyCycle(target_error=0.1, increase_factor=0.9)
        with pytest.raises(ValueError):
            AdaptiveDutyCycle(target_error=0.1, decrease_factor=1.1)
        with pytest.raises(ValueError):
            AdaptiveDutyCycle(target_error=0.1).update(-0.1)


class TestRoundRobin:
    def test_rotation_visits_everyone(self):
        scheduler = RoundRobinScheduler(members=["a", "b", "c", "d"])
        seen = set()
        for _ in range(2):
            seen.update(scheduler.pick(2))
        assert seen == {"a", "b", "c", "d"}

    def test_load_balanced_over_many_rounds(self):
        scheduler = RoundRobinScheduler(members=[f"n{i}" for i in range(10)])
        for _ in range(50):
            scheduler.pick(3)
        counts = list(scheduler.load().values())
        assert max(counts) - min(counts) <= 1
        assert scheduler.fairness() > 0.99

    def test_pick_more_than_members(self):
        scheduler = RoundRobinScheduler(members=["a", "b"])
        assert len(scheduler.pick(5)) == 2

    def test_add_remove(self):
        scheduler = RoundRobinScheduler(members=["a"])
        scheduler.add("b")
        scheduler.remove("a")
        assert scheduler.pick(1) == ["b"]

    def test_new_member_prioritised(self):
        scheduler = RoundRobinScheduler(members=["a", "b"])
        for _ in range(4):
            scheduler.pick(1)
        scheduler.add("fresh")
        assert "fresh" in scheduler.pick(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(members=[])
        with pytest.raises(ValueError):
            RoundRobinScheduler(members=["a"]).pick(0)

    def test_fairness_empty_history(self):
        assert RoundRobinScheduler(members=["a"]).fairness() == 1.0
