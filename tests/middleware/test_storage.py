"""Tests for the SQLite data log."""

import pytest

from repro.middleware.query import Predicate, Query
from repro.middleware.storage import ContextRecord, DataStore
from repro.sensors.base import SensorReading


def _reading(sensor="temperature", value=21.0, node="n1", t=0.0):
    return SensorReading(
        sensor=sensor, timestamp=t, value=value, node_id=node, unit="C",
        noise_std=0.3,
    )


@pytest.fixture
def store():
    with DataStore() as s:
        yield s


class TestReadings:
    def test_log_and_retrieve_roundtrip(self, store):
        store.log_reading(_reading(value=23.5, t=1.0))
        got = store.readings()
        assert len(got) == 1
        assert got[0].value == 23.5
        assert got[0].unit == "C"
        assert got[0].noise_std == 0.3

    def test_bulk_insert(self, store):
        n = store.log_readings([_reading(t=float(i)) for i in range(10)])
        assert n == 10
        assert store.reading_count() == 10

    def test_filters(self, store):
        store.log_readings(
            [
                _reading(sensor="temperature", node="a", t=1.0),
                _reading(sensor="gps", node="a", t=2.0),
                _reading(sensor="temperature", node="b", t=3.0),
            ]
        )
        assert len(store.readings(sensor="temperature")) == 2
        assert len(store.readings(node_id="a")) == 2
        assert len(store.readings(since=2.0)) == 2
        assert len(store.readings(until=2.0)) == 2
        assert len(store.readings(sensor="gps", node_id="b")) == 0

    def test_newest_first_with_limit(self, store):
        store.log_readings([_reading(t=float(i)) for i in range(5)])
        got = store.readings(limit=2)
        assert [r.timestamp for r in got] == [4.0, 3.0]

    def test_bad_limit(self, store):
        with pytest.raises(ValueError):
            store.readings(limit=0)

    def test_run_query_pushdown_plus_python_filter(self, store):
        store.log_readings(
            [
                _reading(sensor="temperature", value=v, t=float(i))
                for i, v in enumerate([18.0, 25.0, 31.0])
            ]
            + [_reading(sensor="gps", value=4.0, t=10.0)]
        )
        query = Query(
            predicates=(
                Predicate("sensor", "==", "temperature"),
                Predicate("value", ">", 20.0),
            )
        )
        hits = store.run_query(query)
        assert len(hits) == 2
        assert all(r.sensor == "temperature" for r in hits)

    def test_prune(self, store):
        store.log_readings([_reading(t=float(i)) for i in range(6)])
        removed = store.prune_before(3.0)
        assert removed == 3
        assert store.reading_count() == 3


class TestContexts:
    def test_log_and_retrieve(self, store):
        store.log_context(
            ContextRecord(kind="activity", node_id="n1", timestamp=1.0, value="driving")
        )
        store.log_context(
            ContextRecord(kind="activity", node_id="n2", timestamp=2.0, value="idle")
        )
        got = store.contexts(kind="activity")
        assert len(got) == 2
        assert got[0].value == "idle"  # newest first

    def test_since_filter(self, store):
        for t in range(4):
            store.log_context(
                ContextRecord("activity", "n1", float(t), "idle")
            )
        assert len(store.contexts(since=2.0)) == 2

    def test_prune_covers_contexts(self, store):
        store.log_context(ContextRecord("activity", "n1", 0.0, "idle"))
        store.log_context(ContextRecord("activity", "n1", 5.0, "idle"))
        assert store.prune_before(1.0) == 1


class TestLifecycle:
    def test_context_manager_closes(self):
        with DataStore() as store:
            store.log_reading(_reading())
        with pytest.raises(Exception):
            store.reading_count()
