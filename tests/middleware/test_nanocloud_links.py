"""Tests for NanoCloud multi-network link selection (Section 5)."""

from collections import Counter

import pytest

from repro.energy.model import Battery
from repro.middleware.nanocloud import NanoCloud
from repro.network.bus import MessageBus


class TestAutoLink:
    def test_links_assigned_by_distance(self):
        """With a large cell size the zone spans beyond WiFi range, so
        near nodes use BT, mid-range WiFi, far nodes fall back to LTE."""
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 16, 16, n_nodes=200, auto_link=True,
            cell_size_m=25.0, rng=1,
        )
        links = nc.refresh_links()
        counts = Counter(links.values())
        assert counts.get("bluetooth", 0) > 0  # close to the broker
        assert counts.get("wifi", 0) > 0
        assert counts.get("lte", 0) > 0  # corners beyond 100 m WiFi

    def test_small_zone_prefers_short_range_radios(self):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 8, 8, n_nodes=40, auto_link=True,
            cell_size_m=2.0, rng=2,
        )
        links = nc.refresh_links()
        assert set(links.values()) <= {"bluetooth", "wifi"}

    def test_endpoint_links_actually_change(self):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 16, 16, n_nodes=50, auto_link=True,
            cell_size_m=25.0, rng=3,
        )
        links = nc.refresh_links()
        for node_id, name in links.items():
            assert bus.endpoint(node_id).link.name == name

    def test_movement_changes_link(self):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 16, 16, n_nodes=10, auto_link=True,
            cell_size_m=25.0, rng=4,
        )
        node = next(iter(nc.nodes.values()))
        bx, by = nc.broker_position()
        node.state.x, node.state.y = bx, by  # walk to the broker
        assert nc.refresh_links()[node.node_id] == "bluetooth"
        node.state.x, node.state.y = bx + 15.9, by  # ~400 m away
        assert nc.refresh_links()[node.node_id] == "lte"

    def test_draining_battery_prefers_cheap_radio(self):
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 16, 16, n_nodes=10, auto_link=True,
            cell_size_m=1.0, rng=5,
        )
        node = next(iter(nc.nodes.values()))
        bx, by = nc.broker_position()
        node.state.x, node.state.y = bx + 5.0, by  # BT and WiFi in range
        node.ledger.battery = Battery(capacity_mj=100.0)
        node.ledger.battery.drain(95.0)  # nearly empty
        assert nc.refresh_links()[node.node_id] == "bluetooth"

    def test_requires_selector(self):
        bus = MessageBus()
        nc = NanoCloud.build("nc", bus, 8, 8, n_nodes=5, rng=6)
        with pytest.raises(RuntimeError, match="auto_link"):
            nc.refresh_links()

    def test_rounds_still_work_with_auto_links(self):
        from repro.fields.generators import smooth_field
        from repro.sensors.base import Environment

        truth = smooth_field(8, 8, offset=20.0, rng=0)
        env = Environment(fields={"temperature": truth})
        bus = MessageBus()
        nc = NanoCloud.build(
            "nc", bus, 8, 8, n_nodes=60, auto_link=True,
            cell_size_m=25.0, rng=7,
        )
        estimate = nc.run_round(env, measurements=24)
        assert estimate.m <= 24
        assert bus.stats.messages > 0
