"""Event-driven round driver tests: the resumable broker state machine.

Covers the COMMANDING → COLLECTING → SOLVING → FINALIZED lifecycle on a
latency-faithful bus: early completion when every planned cell reports,
partial-report solves at the deadline, per-command timeout retries, and
refusal-driven candidate rotation.
"""

import pytest

from repro.fields.generators import smooth_field
from repro.middleware.config import BrokerConfig, CompressionPolicy
from repro.middleware.localcloud import LocalCloud
from repro.middleware.rounds import RoundState, ZoneRoundDriver, ZoneSchedule
from repro.network.bus import MessageBus
from repro.network.faults import CrashSchedule, FaultInjector
from repro.network.message import MessageKind
from repro.sensors.faults import Adversarial, SensorFaultInjector, StuckAt
from repro.sensors.base import Environment
from repro.sensors.physical import TemperatureSensor
from repro.sim.clock import SimClock


def _env(width=4, height=2):
    return Environment(
        fields={
            "temperature": smooth_field(
                width, height, cutoff=0.3, amplitude=3.0, offset=20.0, rng=0
            )
        }
    )


def _deployment(
    *,
    config: BrokerConfig | None = None,
    fault_injector=None,
    nodes_per_nc: int = 6,
    latency_mode: str = "link",
):
    """A one-NC LocalCloud on a clocked bus (4x2 zone, dense policy so
    every covered cell is planned — failures are then deterministic)."""
    clock = SimClock()
    bus = MessageBus(fault_injector=fault_injector)
    bus.attach_clock(clock, latency_mode)
    config = config or BrokerConfig(policy=CompressionPolicy(mode="dense"))
    lc = LocalCloud(
        "lc0", bus, 4, 2, n_nanoclouds=1, nodes_per_nc=nodes_per_nc,
        config=config, heterogeneous=False, rng=5,
    )
    return clock, bus, lc


class TestZoneSchedule:
    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            ZoneSchedule(period_s=0.0)

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            ZoneSchedule(period_s=10.0, offset_s=-1.0)


class TestRoundLifecycle:
    def test_round_completes_after_link_latency(self):
        clock, bus, lc = _deployment()
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
        )
        driver.start(until=30.0)
        clock.run_until(45.0)
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.started_at == 30.0
        # Command leg + report leg: latency is real but far below the
        # deadline — the round closed early on the last report.
        assert 0.0 < outcome.latency_s < lc.config.report_deadline_s
        assert not outcome.partial
        assert driver.state is RoundState.FINALIZED
        assert driver.rounds_completed == 1
        assert driver.rounds_failed == 0

    def test_outcome_field_matches_zone_shape(self):
        clock, bus, lc = _deployment()
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
        )
        driver.start()
        clock.run_until(30.5)
        field = outcomes[0].result.field
        assert (field.width, field.height) == (4, 2)

    def test_multiple_rounds_on_own_period_and_offset(self):
        clock, bus, lc = _deployment()
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock,
            period_s=20.0, offset_s=5.0, on_complete=outcomes.append,
        )
        driver.start(until=60.0)
        clock.run_until(60.0)
        assert [o.started_at for o in outcomes] == [5.0, 25.0, 45.0]
        assert [o.index for o in outcomes] == [1, 2, 3]

    def test_zero_latency_mode_completes_at_round_instant(self):
        clock, bus, lc = _deployment(latency_mode="zero")
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
        )
        driver.start(until=30.0)
        clock.run_until(30.0)
        assert outcomes[0].latency_s == 0.0
        assert not outcomes[0].partial


class TestPartialRounds:
    def test_dead_node_cell_closes_early_and_partial(self):
        # One member churns off the bus entirely: its cell can never be
        # realised, the driver marks it exhausted and still solves with
        # the remaining reports — a partial round, well before deadline.
        clock, bus, lc = _deployment()
        victim = sorted(lc.nanoclouds[0].nodes)[0]
        bus.unregister(victim)
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
        )
        driver.start(until=30.0)
        clock.run_until(45.0)
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.partial
        assert outcome.latency_s < lc.config.report_deadline_s
        estimate = outcome.result.nc_estimates[0]
        assert estimate.plan.m == 5  # 6 planned cells, one unrealisable
        assert estimate.planned_m == 6
        assert estimate.degraded

    def test_deadline_closes_round_with_infra_fallback(self):
        # The victim node is crash-scheduled down, so its commands are
        # eaten in flight; the per-command timeout chain outlives the
        # report deadline, which closes the round and reads the cell's
        # infrastructure sensor instead.
        config = BrokerConfig(
            policy=CompressionPolicy(mode="dense"),
            report_deadline_s=3.0,
            report_timeout_s=5.0,
            command_retries=2,
        )
        injector = FaultInjector(CrashSchedule())
        clock, bus, lc = _deployment(config=config, fault_injector=injector)
        nc = lc.nanoclouds[0]
        victim = sorted(nc.nodes)[0]
        injector.faults[0].crash(victim, 0.0)
        victim_cell = nc.broker.members[victim]
        nc.broker.add_infrastructure(
            victim_cell, TemperatureSensor(rng=0)
        )
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
        )
        driver.start(until=30.0)
        clock.run_until(60.0)
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.latency_s == pytest.approx(3.0)  # the deadline
        estimate = outcome.result.nc_estimates[0]
        assert estimate.infra_reads >= 1
        assert estimate.plan.m == 6  # infra realised the missing cell
        assert not outcome.partial

    def test_timeout_retries_then_candidate_exhaustion(self):
        # Down node, short timeouts, no infra: the driver retries the
        # command on timeout (counting telemetry) and finally gives the
        # cell up, solving partially.
        config = BrokerConfig(
            policy=CompressionPolicy(mode="dense"),
            report_deadline_s=8.0,
            report_timeout_s=0.5,
            command_retries=2,
        )
        injector = FaultInjector(CrashSchedule())
        clock, bus, lc = _deployment(config=config, fault_injector=injector)
        victim = sorted(lc.nanoclouds[0].nodes)[0]
        injector.faults[0].crash(victim, 0.0)
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
        )
        driver.start(until=30.0)
        clock.run_until(60.0)
        outcome = outcomes[0]
        estimate = outcome.result.nc_estimates[0]
        assert outcome.partial
        assert estimate.retries_used == 2
        assert estimate.plan.m == 5
        # Retries backed off 0.5 + 1.0, then the final 2.0 s timeout
        # exhausted the candidate: closed early, before the deadline.
        assert outcome.latency_s == pytest.approx(0.5 + 1.0 + 2.0)

    def test_refusal_rotates_to_infrastructure(self):
        # A privacy-blocked node refuses; with no co-located alternative
        # the cell falls back to its fixed sensor immediately.
        clock, bus, lc = _deployment()
        nc = lc.nanoclouds[0]
        refuser = sorted(nc.nodes)[0]
        nc.nodes[refuser].policy.blocked_sensors.add("temperature")
        refuser_cell = nc.broker.members[refuser]
        nc.broker.add_infrastructure(refuser_cell, TemperatureSensor(rng=0))
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
        )
        driver.start(until=30.0)
        clock.run_until(45.0)
        outcome = outcomes[0]
        estimate = outcome.result.nc_estimates[0]
        assert estimate.reports_refused == 1
        assert estimate.infra_reads == 1
        assert not outcome.partial

    def test_busy_driver_skips_overlapping_firing(self):
        # Deadline longer than the period is clamped, but a round still
        # collecting when the next firing arrives is skipped, not piled.
        config = BrokerConfig(
            policy=CompressionPolicy(mode="dense"),
            report_deadline_s=9.0,
            report_timeout_s=4.0,
            command_retries=5,
        )
        injector = FaultInjector(CrashSchedule())
        clock, bus, lc = _deployment(config=config, fault_injector=injector)
        victim = sorted(lc.nanoclouds[0].nodes)[0]
        injector.faults[0].crash(victim, 0.0)
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=10.0, on_complete=lambda o: None
        )
        # deadline clamped below the period so rounds always close
        assert driver.report_deadline_s == pytest.approx(9.0)
        driver.start(until=40.0)
        clock.run_until(60.0)
        assert driver.rounds_completed >= 3
        assert driver.rounds_skipped == 0


class TestByzantineLifecycle:
    """Trust/quarantine interplay with the event-driven round machinery."""

    def _byzantine_deployment(self, *, nodes_per_nc=6, fault_end=None, **cfg):
        cfg.setdefault("policy", CompressionPolicy(mode="dense"))
        cfg.setdefault("robust_mode", "trim")
        cfg.setdefault("rehab_probes", 0)
        clock, bus, lc = _deployment(
            config=BrokerConfig(**cfg), nodes_per_nc=nodes_per_nc
        )
        nc = lc.nanoclouds[0]
        bad_id = sorted(nc.nodes)[0]
        injector = SensorFaultInjector()
        if fault_end is None:
            injector.attach(bad_id, Adversarial(offset=9.0, claimed_std=0.01))
        else:
            injector.attach(bad_id, StuckAt(60.0, end=fault_end))
        for node in nc.nodes.values():
            node.fault_injector = injector
        return clock, bus, lc, nc, bad_id

    def _spy_commands(self, clock, bus, sent):
        original_send = bus.send

        def spy(message, **kwargs):
            if message.kind is MessageKind.SENSE_COMMAND:
                sent.append((clock.now, message.destination))
            return original_send(message, **kwargs)

        bus.send = spy

    def test_quarantined_node_stops_receiving_commands(self):
        clock, bus, lc, nc, bad_id = self._byzantine_deployment()
        sent = []
        self._spy_commands(clock, bus, sent)
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
        )
        driver.start(until=300.0)
        clock.run_until(320.0)
        broker = nc.broker
        assert broker.trust.is_quarantined(bad_id)
        bad_commands = [t for t, dest in sent if dest == bad_id]
        assert bad_commands  # commanded while still trusted...
        last_bad = max(bad_commands)
        later_others = [
            t for t, dest in sent if dest != bad_id and t > last_bad + 30.0
        ]
        # ...then rounds kept running without ever commanding it again.
        assert later_others
        assert bad_id not in outcomes[-1].result.nc_estimates[0].trust or (
            outcomes[-1].result.nc_estimates[0].trust[bad_id]
            < broker.config.quarantine_trust
        )
        assert bad_id in outcomes[-1].result.nc_estimates[0].quarantined_nodes

    def test_rounds_stay_within_deadline_after_quarantine(self):
        # Enough members that the quarantined node's cell falls to a
        # co-located replacement inside the same deadline machinery.
        clock, bus, lc, nc, bad_id = self._byzantine_deployment(
            nodes_per_nc=16
        )
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
        )
        driver.start(until=300.0)
        clock.run_until(320.0)
        assert nc.broker.trust.is_quarantined(bad_id)
        assert driver.rounds_failed == 0
        assert len(outcomes) >= 8
        for outcome in outcomes:
            assert outcome.latency_s <= driver.report_deadline_s
        # Post-quarantine rounds still produce full (non-partial) solves.
        assert not outcomes[-1].partial

    def test_rehab_probe_restores_recovered_node(self):
        clock, bus, lc, nc, bad_id = self._byzantine_deployment(
            fault_end=100.0, rehab_probes=1, rehab_interval=1
        )
        sent = []
        self._spy_commands(clock, bus, sent)
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=lambda o: None
        )
        driver.start(until=600.0)
        clock.run_until(620.0)
        broker = nc.broker
        record = broker.trust.get(bad_id)
        # It was quarantined (stuck through t<100), probed after the
        # sensor recovered, and released once trust climbed back.
        assert record.probes >= 1
        assert not record.quarantined
        assert record.trust >= broker.config.rehab_trust
        bad_commands = [t for t, dest in sent if dest == bad_id]
        # Commanded again as a regular candidate after release.
        assert max(bad_commands) > 400.0
