"""Overload protection: detector, breaker, ladder, and driver wiring.

Unit-level state-machine coverage for ``repro.middleware.overload``,
then integration through :class:`ZoneRoundDriver`: deadline-timeout
rounds trip the circuit breaker into stale serving, queue floods walk
the degradation ladder down and back up, failover carries the whole
controller to the promoted broker, and — property-tested — the default
(all-off) config leaves a same-seed scenario bit-identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields.generators import smooth_field
from repro.middleware.config import BrokerConfig, CompressionPolicy
from repro.middleware.localcloud import LocalCloud
from repro.middleware.overload import (
    LEVEL_COARSE,
    LEVEL_FULL,
    LEVEL_REDUCED_M,
    LEVEL_STALE,
    PASSTHROUGH,
    BreakerState,
    CircuitBreaker,
    DegradationLadder,
    OverloadConfig,
    OverloadController,
    OverloadDetector,
)
from repro.middleware.rounds import ZoneRoundDriver
from repro.network.bus import MessageBus
from repro.network.faults import CrashSchedule, FaultInjector
from repro.network.message import Message, MessageKind
from repro.sensors.base import Environment
from repro.sim.clock import SimClock


def _env(width=4, height=2):
    return Environment(
        fields={
            "temperature": smooth_field(
                width, height, cutoff=0.3, amplitude=3.0, offset=20.0, rng=0
            )
        }
    )


def _deployment(
    *,
    config: BrokerConfig | None = None,
    fault_injector=None,
    nodes_per_nc: int = 6,
    latency_mode: str = "link",
    rng: int = 5,
):
    clock = SimClock()
    bus = MessageBus(fault_injector=fault_injector)
    bus.attach_clock(clock, latency_mode)
    config = config or BrokerConfig(policy=CompressionPolicy(mode="dense"))
    lc = LocalCloud(
        "lc0", bus, 4, 2, n_nanoclouds=1, nodes_per_nc=nodes_per_nc,
        config=config, heterogeneous=False, rng=rng,
    )
    return clock, bus, lc


class TestOverloadConfig:
    def test_defaults_are_all_off(self):
        config = OverloadConfig()
        assert not config.any_enabled

    def test_any_feature_flag_enables(self):
        assert OverloadConfig(admission_control=True).any_enabled
        assert OverloadConfig(breaker_enabled=True).any_enabled
        assert OverloadConfig(ladder_enabled=True).any_enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadConfig(busy_skip_budget=-1)
        with pytest.raises(ValueError):
            OverloadConfig(admission_retry_frac=1.0)
        with pytest.raises(ValueError):
            OverloadConfig(breaker_failures=0)
        with pytest.raises(ValueError):
            OverloadConfig(queue_alpha=0.0)
        with pytest.raises(ValueError):
            OverloadConfig(recover_below=1.0, escalate_at=1.0)
        with pytest.raises(ValueError):
            OverloadConfig(coarse_m_scale=0.8, reduced_m_scale=0.5)
        with pytest.raises(ValueError):
            OverloadConfig(coarse_sparsity_cap=0)


class TestOverloadDetector:
    def test_queue_ewma_tracks_depth(self):
        detector = OverloadDetector(config=OverloadConfig(queue_alpha=0.5))
        detector.observe_queue(8)
        assert detector.queue_ewma == pytest.approx(4.0)
        detector.observe_queue(8)
        assert detector.queue_ewma == pytest.approx(6.0)

    def test_pressure_is_worse_of_both_signals(self):
        config = OverloadConfig(
            queue_alpha=1.0, latency_alpha=1.0,
            queue_high=10.0, latency_high_frac=0.5,
        )
        detector = OverloadDetector(config=config)
        detector.observe_queue(5)  # queue pressure 0.5
        detector.observe_latency(9.0, 10.0)  # latency pressure 1.8
        assert detector.pressure == pytest.approx(1.8)

    def test_latency_requires_positive_deadline(self):
        with pytest.raises(ValueError):
            OverloadDetector().observe_latency(1.0, 0.0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_rounds=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_then_half_open_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_rounds=2)
        breaker.record_failure()
        assert not breaker.allow_round()  # cooldown slot 1
        assert breaker.allow_round()  # cooldown expired: the probe
        assert breaker.probing

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_rounds=1)
        breaker.record_failure()
        assert breaker.allow_round()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_rounds=1)
        breaker.record_failure()
        assert breaker.allow_round()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2


class TestDegradationLadder:
    def _ladder(self, **kwargs):
        return DegradationLadder(config=OverloadConfig(**kwargs))

    def test_escalates_one_level_per_hot_observation(self):
        ladder = self._ladder()
        assert ladder.update(1.5) == LEVEL_REDUCED_M
        assert ladder.update(1.5) == LEVEL_COARSE
        assert ladder.update(1.5) == LEVEL_STALE
        assert ladder.update(1.5) == LEVEL_STALE  # saturates

    def test_recovery_needs_consecutive_calm_rounds(self):
        ladder = self._ladder(recover_rounds=2)
        ladder.update(1.5)
        ladder.update(1.5)
        assert ladder.level == LEVEL_COARSE
        ladder.update(0.1)
        assert ladder.level == LEVEL_COARSE  # one calm round: not yet
        ladder.update(0.1)
        assert ladder.level == LEVEL_REDUCED_M
        # Mid-band pressure breaks the calm streak (hysteresis).
        ladder.update(0.1)
        ladder.update(0.7)
        ladder.update(0.1)
        assert ladder.level == LEVEL_REDUCED_M

    def test_scales_per_level(self):
        ladder = self._ladder(
            reduced_m_scale=0.6, coarse_m_scale=0.3, coarse_sparsity_cap=5
        )
        assert ladder.m_scale() == 1.0
        assert ladder.sparsity_cap() is None
        ladder.level = LEVEL_REDUCED_M
        assert ladder.m_scale() == 0.6
        assert ladder.sparsity_cap() is None
        ladder.level = LEVEL_COARSE
        assert ladder.m_scale() == 0.3
        assert ladder.sparsity_cap() == 5


class TestOverloadController:
    def test_disabled_controller_is_passthrough(self):
        controller = OverloadController(OverloadConfig())
        directives = controller.begin_round(queue_depth=10_000)
        assert directives is PASSTHROUGH
        controller.finish_round(latency_s=99.0, deadline_s=1.0, timed_out=True)
        assert controller.detector.observations == 0
        assert controller.breaker.state is BreakerState.CLOSED
        assert controller.ladder.level == LEVEL_FULL

    def test_open_breaker_serves_stale(self):
        controller = OverloadController(
            OverloadConfig(breaker_enabled=True, breaker_failures=1)
        )
        controller.finish_round(latency_s=10.0, deadline_s=10.0, timed_out=True)
        directives = controller.begin_round(queue_depth=0)
        assert directives.serve_stale
        assert controller.stale_serves == 1

    def test_ladder_stale_level_serves_stale(self):
        controller = OverloadController(OverloadConfig(ladder_enabled=True))
        controller.ladder.level = LEVEL_STALE
        directives = controller.begin_round(queue_depth=0)
        assert directives.serve_stale
        assert directives.level == LEVEL_STALE

    def test_stale_level_unlatches_after_calm_stale_serves(self):
        controller = OverloadController(
            OverloadConfig(ladder_enabled=True, recover_rounds=1)
        )
        controller.ladder.level = LEVEL_STALE
        controller.detector.latency_ewma = 2.0  # saturated at trip time
        directives = controller.begin_round(queue_depth=0)
        assert directives.serve_stale  # pressure still decaying
        for _ in range(10):
            directives = controller.begin_round(queue_depth=0)
            if not directives.serve_stale:
                break
        # Each stale slot is a zero-latency observation: the EWMA
        # decays, pressure clears, and the ladder climbs back.
        assert not directives.serve_stale
        assert controller.ladder.level < LEVEL_STALE

    def test_busy_skips_over_budget_escalate(self):
        controller = OverloadController(
            OverloadConfig(admission_control=True, ladder_enabled=True)
        )
        controller.record_busy_skip(over_budget=False)
        assert controller.ladder.level == LEVEL_FULL
        controller.record_busy_skip(over_budget=True)
        assert controller.ladder.level == LEVEL_REDUCED_M
        assert controller.pressure_skips == 1

    def test_snapshot_keys(self):
        snapshot = OverloadController(OverloadConfig()).snapshot()
        assert set(snapshot) == {
            "level", "pressure", "breaker", "breaker_trips",
            "stale_serves", "pressure_skips",
        }


def _timeout_config(**overload_kwargs):
    """Dense rounds whose dead-node cells retry past the deadline, so
    every round is closed by the deadline event (the breaker's failure
    signal) deterministically."""
    return BrokerConfig(
        policy=CompressionPolicy(mode="dense"),
        command_retries=10,
        report_timeout_s=2.0,
        report_deadline_s=9.0,
        overload=OverloadConfig(**overload_kwargs),
    )


def _kill_one_node(lc):
    """Crash one member node for the whole run (its planned cell can
    then never report, and with retries armed the round only closes at
    the deadline)."""
    crash = CrashSchedule()
    victim = sorted(lc.nanoclouds[0].nodes)[0]
    crash.crash(victim, at=0.0)
    return FaultInjector(crash)


class TestBreakerThroughDriver:
    def test_timeout_rounds_trip_breaker_into_stale_serving(self):
        config = _timeout_config(
            breaker_enabled=True, breaker_failures=2, breaker_cooldown_rounds=2
        )
        clock, bus, lc = _deployment(config=config)
        injector = _kill_one_node(lc)
        bus.fault_injector = injector
        injector.clock = clock
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=10.0, on_complete=outcomes.append
        )
        driver.start(until=80.0)
        clock.run_until(100.0)

        timed_out = [o for o in outcomes if not o.stale]
        stale = [o for o in outcomes if o.stale]
        # Rounds 1-2 time out (deadline-closed partial solves) and trip
        # the breaker; subsequent slots serve the last good estimate.
        assert len(timed_out) >= 2
        assert all(
            o.latency_s >= driver.report_deadline_s for o in timed_out
        )
        assert stale, "breaker never opened into stale serving"
        assert driver.rounds_stale_served == len(stale)
        assert driver.overload.breaker.trips >= 1
        for o in stale:
            for estimate in o.result.nc_estimates:
                assert estimate.staleness_rounds >= 1
                assert estimate.degraded

    def test_consecutive_stale_serves_accumulate_staleness(self):
        # failures=1 trips on the very first timed-out round; a long
        # cooldown then yields an unbroken run of stale serves, each
        # re-serving the previous stale outcome — staleness compounds.
        config = _timeout_config(
            breaker_enabled=True, breaker_failures=1, breaker_cooldown_rounds=4
        )
        clock, bus, lc = _deployment(config=config)
        injector = _kill_one_node(lc)
        bus.fault_injector = injector
        injector.clock = clock
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=10.0, on_complete=outcomes.append
        )
        driver.start(until=40.0)
        clock.run_until(60.0)
        staleness = [
            o.result.nc_estimates[0].staleness_rounds
            for o in outcomes
            if o.stale
        ]
        assert staleness == sorted(staleness)
        assert staleness and staleness[-1] >= 2


class TestLadderThroughDriver:
    def _flood(self, bus, lc, count):
        broker_id = lc.nanoclouds[0].broker.broker_id
        source = sorted(lc.nanoclouds[0].nodes)[0]
        for i in range(count):
            bus.send(
                Message(
                    kind=MessageKind.CONTEXT_SHARE,
                    source=source,
                    destination=broker_id,
                    payload={"kind": "noise", "value": float(i)},
                ),
                strict=False,
            )

    def test_queue_flood_escalates_then_recovers(self):
        config = BrokerConfig(
            policy=CompressionPolicy(mode="dense"),
            overload=OverloadConfig(
                ladder_enabled=True,
                queue_alpha=1.0,
                queue_high=8.0,
                recover_rounds=1,
            ),
        )
        clock, bus, lc = _deployment(config=config)
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
        )
        driver.start(until=300.0)

        # Two congested rounds: a standing queue well above queue_high.
        self._flood(bus, lc, 30)
        clock.run_until(65.0)
        assert driver.overload.ladder.level >= LEVEL_REDUCED_M
        degraded = [
            e.degraded_level
            for o in outcomes
            if not o.stale
            for e in o.result.nc_estimates
        ]
        assert degraded and max(degraded) >= LEVEL_REDUCED_M

        # Drain the backlog; pressure collapses and the zone climbs back.
        lc.nanoclouds[0].broker.process_inbox(bus, 65.0)
        clock.run_until(300.0)
        assert driver.overload.ladder.level == LEVEL_FULL
        assert driver.overload.ladder.recoveries >= 1

    def test_reduced_level_shrinks_planned_m(self):
        def run_round(level):
            config = BrokerConfig(
                policy=CompressionPolicy(mode="dense"),
                overload=OverloadConfig(
                    ladder_enabled=True, reduced_m_scale=0.5
                ),
            )
            clock, bus, lc = _deployment(
                config=config, latency_mode="zero", nodes_per_nc=8
            )
            lc.nanoclouds[0].broker.overload.ladder.level = level
            outcomes = []
            driver = ZoneRoundDriver(
                0, lc, _env(), clock, period_s=30.0,
                on_complete=outcomes.append,
            )
            driver.start(until=30.0)
            clock.run_until(30.0)
            return outcomes[0].result.nc_estimates[0]

        full = run_round(LEVEL_FULL)
        reduced = run_round(LEVEL_REDUCED_M)
        assert full.degraded_level == LEVEL_FULL
        assert reduced.degraded_level == LEVEL_REDUCED_M
        assert reduced.planned_m < full.planned_m
        assert reduced.staleness_rounds == 0


class TestAdmissionControl:
    def _busy_driver(self, *, budget, ladder=False):
        config = _timeout_config(
            admission_control=True,
            busy_skip_budget=budget,
            admission_retry_frac=0.25,
            ladder_enabled=ladder,
        )
        clock, bus, lc = _deployment(config=config)
        injector = _kill_one_node(lc)
        bus.fault_injector = injector
        injector.clock = clock
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
        )
        driver.start(until=60.0)
        # An extra mid-round firing (an operator-requested round, say):
        # the dead-node round is deadline-bound, so at t=31 the driver
        # is still collecting and the firing lands busy.
        clock.schedule_in(31.0, driver._begin_round)
        clock.run_until(80.0)
        return driver, outcomes

    def test_busy_firing_retries_within_budget(self):
        driver, outcomes = self._busy_driver(budget=5)
        # t=31 busy -> retry at 38.5 (still collecting until the t=39
        # deadline) -> second retry at 46 finds the driver idle.
        assert driver.rounds_skipped == 2
        assert driver.rounds_rescheduled == 2
        assert [o.started_at for o in outcomes] == [30.0, 46.0, 60.0]

    def test_over_budget_skips_escalate_instead_of_retrying(self):
        driver, outcomes = self._busy_driver(budget=1, ladder=True)
        # The second consecutive busy skip blows the budget: no further
        # retry, the skip is treated as pressure on the ladder.
        assert driver.rounds_rescheduled == 1
        assert driver.overload.pressure_skips >= 1
        assert driver.overload.ladder.level >= LEVEL_REDUCED_M


class TestFailoverCarryOver:
    def test_promoted_broker_inherits_breaker_and_ladder(self):
        config = BrokerConfig(
            policy=CompressionPolicy(mode="dense"),
            overload=OverloadConfig(
                breaker_enabled=True, ladder_enabled=True
            ),
        )
        clock, bus, lc = _deployment(config=config)
        nc = lc.nanoclouds[0]
        old = nc.broker
        # Mid-degradation state: breaker OPEN, ladder at coarse.
        controller = old.overload
        controller.ladder.level = LEVEL_COARSE
        controller.breaker.record_failure()
        controller.breaker.record_failure()
        controller.breaker.record_failure()
        assert controller.breaker.state is BreakerState.OPEN

        # Heartbeat failover: crash the broker address and prepare the
        # next round — the NanoCloud promotes the healthiest member.
        crash = CrashSchedule()
        crash.crash(old.broker_id, at=10.0)
        bus.fault_injector = FaultInjector(crash, clock=clock)
        promoted = nc.prepare_round(20.0)
        assert promoted.broker_id != old.broker_id

        # The whole controller travelled: same object, same state.
        assert promoted.overload is controller
        assert promoted.overload.breaker.state is BreakerState.OPEN
        assert promoted.overload.ladder.level == LEVEL_COARSE

        # And the driver's view follows the promotion.
        driver = ZoneRoundDriver(0, lc, _env(), clock, period_s=30.0)
        assert driver.overload is controller


def _scenario_estimates(overload: OverloadConfig, seed: int):
    """One three-round deferred-mode scenario; returns per-round
    estimate payloads plus the bus traffic counters."""
    config = BrokerConfig(
        policy=CompressionPolicy(mode="dense"), overload=overload
    )
    clock, bus, lc = _deployment(config=config, rng=seed)
    outcomes = []
    driver = ZoneRoundDriver(
        0, lc, _env(), clock, period_s=30.0, on_complete=outcomes.append
    )
    driver.start(until=90.0)
    clock.run_until(120.0)
    payload = [
        (
            o.started_at,
            o.completed_at,
            [e.field.grid.copy() for e in o.result.nc_estimates],
            [e.plan.locations.copy() for e in o.result.nc_estimates],
            [e.planned_m for e in o.result.nc_estimates],
            [e.degraded_level for e in o.result.nc_estimates],
            [e.staleness_rounds for e in o.result.nc_estimates],
        )
        for o in outcomes
    ]
    stats = (bus.stats.messages, bus.stats.bytes, dict(bus.stats.by_kind))
    return payload, stats


class TestDefaultOffBitIdentity:
    """The default config can never perturb a round (Hypothesis pin)."""

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_default_config_matches_inert_tuned_config(self, seed):
        # Arm A: the stock default (all overload features off).
        payload_a, stats_a = _scenario_estimates(OverloadConfig(), seed)
        # Arm B: same seed, aggressively re-tuned thresholds but every
        # feature flag still off — if any disabled code path consulted
        # a threshold, these runs would diverge.
        payload_b, stats_b = _scenario_estimates(
            OverloadConfig(
                queue_high=0.001,
                latency_high_frac=0.01,
                breaker_failures=1,
                breaker_cooldown_rounds=1,
                reduced_m_scale=0.01,
                coarse_m_scale=0.01,
                coarse_sparsity_cap=1,
            ),
            seed,
        )
        assert stats_a == stats_b
        assert len(payload_a) == len(payload_b) == 3
        for round_a, round_b in zip(payload_a, payload_b):
            assert round_a[0] == round_b[0]
            assert round_a[1] == round_b[1]
            for grid_a, grid_b in zip(round_a[2], round_b[2]):
                assert np.array_equal(grid_a, grid_b)  # bit-identical
            for loc_a, loc_b in zip(round_a[3], round_b[3]):
                assert np.array_equal(loc_a, loc_b)
            assert round_a[4:] == round_b[4:]
