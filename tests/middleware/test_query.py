"""Tests for the query & filtering engine."""

import pytest

from repro.middleware.query import FilterEngine, Predicate, Query, StandingQuery
from repro.sensors.base import SensorReading


def _reading(sensor="temperature", value=21.0, node="n1", t=0.0):
    return SensorReading(
        sensor=sensor, timestamp=t, value=value, node_id=node
    )


class TestPredicate:
    def test_operators(self):
        r = _reading(value=25.0)
        assert Predicate("value", ">", 20.0).matches(r)
        assert Predicate("value", "<=", 25.0).matches(r)
        assert not Predicate("value", "<", 25.0).matches(r)
        assert Predicate("sensor", "==", "temperature").matches(r)
        assert Predicate("sensor", "!=", "gps").matches(r)
        assert Predicate("node_id", "in", {"n1", "n2"}).matches(r)

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Predicate("value", "~=", 1.0)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            Predicate("latitude", "==", 1.0).matches(_reading())

    def test_type_mismatch_is_no_match(self):
        assert not Predicate("value", "<", "abc").matches(_reading())


class TestQuery:
    def _readings(self):
        return [
            _reading(value=v, t=float(i), node=f"n{i % 2}")
            for i, v in enumerate([18.0, 25.0, 30.0, 22.0, 27.0])
        ]

    def test_conjunction(self):
        query = Query(
            predicates=(
                Predicate("value", ">", 20.0),
                Predicate("node_id", "==", "n0"),
            )
        )
        hits = query.run(self._readings())
        assert all(r.value > 20 and r.node_id == "n0" for r in hits)
        assert len(hits) == 2

    def test_newest_first_and_limit(self):
        query = Query(
            predicates=(Predicate("value", ">", 20.0),), limit=2
        )
        hits = query.run(self._readings())
        assert len(hits) == 2
        assert hits[0].timestamp > hits[1].timestamp

    def test_oldest_first(self):
        query = Query(newest_first=False)
        hits = query.run(self._readings())
        assert hits[0].timestamp == 0.0

    def test_empty_query_matches_all(self):
        assert len(Query().run(self._readings())) == 5

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            Query(limit=0)


class TestStandingQueryAndEngine:
    def test_delivery_on_match(self):
        received = []
        sq = StandingQuery(
            query=Query(predicates=(Predicate("value", ">", 30.0),)),
            subscriber="app1",
            callback=received.append,
        )
        engine = FilterEngine()
        engine.register(sq)
        engine.ingest(_reading(value=35.0))
        engine.ingest(_reading(value=10.0))
        assert len(received) == 1
        assert sq.delivered == 1

    def test_fanout_to_multiple_subscribers(self):
        hot, all_readings = [], []
        engine = FilterEngine()
        engine.register(
            StandingQuery(
                Query(predicates=(Predicate("value", ">", 30.0),)),
                "hot-app",
                hot.append,
            )
        )
        engine.register(StandingQuery(Query(), "logger", all_readings.append))
        count = engine.ingest(_reading(value=40.0))
        assert count == 2
        count = engine.ingest(_reading(value=10.0))
        assert count == 1
        assert len(hot) == 1 and len(all_readings) == 2

    def test_suppression_ratio(self):
        engine = FilterEngine()
        engine.register(
            StandingQuery(
                Query(predicates=(Predicate("value", ">", 100.0),)),
                "rare",
                lambda r: None,
            )
        )
        for v in range(10):
            engine.ingest(_reading(value=float(v)))
        assert engine.suppression_ratio == 1.0

    def test_unregister(self):
        engine = FilterEngine()
        engine.register(StandingQuery(Query(), "a", lambda r: None))
        engine.register(StandingQuery(Query(), "a", lambda r: None))
        engine.register(StandingQuery(Query(), "b", lambda r: None))
        assert engine.unregister("a") == 2
        assert len(engine.standing) == 1
