"""Tests for the SenseDroid facade."""

import numpy as np
import pytest

from repro.fields.generators import urban_temperature_field
from repro.middleware.api import SenseDroid
from repro.middleware.config import BrokerConfig, HierarchyConfig
from repro.middleware.query import Predicate, Query
from repro.sensors.base import Environment


@pytest.fixture
def system():
    truth = urban_temperature_field(16, 8, rng=3)
    env = Environment(fields={"temperature": truth})
    with SenseDroid(
        env,
        hierarchy_config=HierarchyConfig(
            zones_x=2, zones_y=1, nodes_per_nanocloud=48
        ),
        broker_config=BrokerConfig(seed=7),
        rng=7,
    ) as s:
        yield s


class TestConstruction:
    def test_unknown_sensor_field(self):
        env = Environment(fields={})
        with pytest.raises(ValueError, match="no field"):
            SenseDroid(env)


class TestSensing:
    def test_sense_field_and_error(self, system):
        system.sense_field()  # warm-up round adapts sparsity
        estimate = system.sense_field()
        assert system.estimate_error(estimate) < 0.15
        assert estimate.total_measurements < system.latest_field().n

    def test_adaptive_requires_budget(self, system):
        with pytest.raises(ValueError):
            system.sense_field(adaptive=True)

    def test_adaptive_budget_respected(self, system):
        estimate = system.sense_field(adaptive=True, total_budget=60)
        assert estimate.total_measurements <= 60

    def test_fixed_budget_split_evenly(self, system):
        estimate = system.sense_field(total_budget=40)
        for result in estimate.zone_results.values():
            assert result.total_measurements <= 20

    def test_rounds_are_logged(self, system):
        system.sense_field()
        assert system.store.reading_count() > 0

    def test_round_counter_advances_timestamps(self, system):
        first = system.sense_field()
        second = system.sense_field()
        assert second.timestamp > first.timestamp


class TestContexts:
    def test_context_round_infers_all_nodes(self, system):
        inferred = system.sense_contexts()
        assert len(inferred) == system.hierarchy.n_nodes
        # Everyone is idle by default.
        accuracy = sum(
            1 for mode in inferred.values() if mode == "idle"
        ) / len(inferred)
        assert accuracy > 0.9

    def test_group_context_rollup(self, system):
        system.sense_contexts()
        rollups = system.group_context("activity")
        assert rollups
        assert any(g.count > 0 for g in rollups)
        populated = [g for g in rollups if g.count]
        assert all(g.consensus == "idle" for g in populated)

    def test_contexts_logged(self, system):
        system.sense_contexts()
        assert len(system.store.contexts(kind="activity")) == system.hierarchy.n_nodes


class TestQueryAndEnergy:
    def test_query_logged_readings(self, system):
        system.sense_field()
        hits = system.query(
            Query(predicates=(Predicate("sensor", "==", "temperature"),))
        )
        assert hits

    def test_energy_summary_keys(self, system):
        system.sense_field()
        summary = system.energy_summary_mj()
        assert summary["node_energy_mj"] > 0
        assert summary["radio_energy_mj"] > 0
        assert summary["messages"] > 0


class TestFleetStatus:
    def test_battery_and_audit_rollup(self, system):
        system.sense_field()
        status = system.fleet_status()
        assert status["nodes"] == system.hierarchy.n_nodes
        assert 0.0 < status["battery_min"] <= status["battery_mean"] <= 1.0
        assert status["readings_shared"] > 0

    def test_batteries_drain_over_rounds(self, system):
        before = system.fleet_status()["battery_mean"]
        for _ in range(3):
            system.sense_field()
            system.sense_contexts()
        after = system.fleet_status()["battery_mean"]
        assert after <= before

    def test_withheld_counted(self, system):
        for lc in system.hierarchy.localclouds.values():
            for nc in lc.nanoclouds:
                for node in nc.nodes.values():
                    node.policy.opt_out()
                    break  # one objector per NanoCloud
                break
            break
        system.sense_field()
        system.sense_field()
        status = system.fleet_status()
        assert status["readings_withheld"] >= 0.0
