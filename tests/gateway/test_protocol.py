"""Unit tests for the hand-rolled HTTP/WebSocket framing layer.

The container ships no websocket library, so :mod:`repro.gateway.
protocol` implements RFC 6455 itself; these tests pin it against the
RFC's own vectors and the frame-size edge cases.
"""

import asyncio
import random

import pytest

from repro.gateway import protocol


def _run(coro):
    return asyncio.run(coro)


async def _reader_for(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


async def _decode(data: bytes):
    return await protocol.ws_read_message(await _reader_for(data))


class TestHandshake:
    def test_accept_key_matches_rfc_vector(self):
        # RFC 6455 section 1.3's worked example.
        assert (
            protocol.websocket_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_handshake_response_carries_accept(self):
        response = protocol.ws_handshake_response(
            "dGhlIHNhbXBsZSBub25jZQ=="
        ).decode("latin-1")
        assert response.startswith("HTTP/1.1 101 ")
        assert "Sec-WebSocket-Accept: s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" in (
            response
        )


class TestHttpParsing:
    def test_get_with_query(self):
        raw = (
            b"GET /sensor/connect?type=temperature&x=3&mode=poll "
            b"HTTP/1.1\r\nHost: gw\r\nUpgrade: WebSocket\r\n"
            b"Connection: keep-alive, Upgrade\r\n\r\n"
        )

        async def scenario():
            return await protocol.read_http_request(
                await _reader_for(raw)
            )

        request = _run(scenario())
        assert request.method == "GET"
        assert request.path == "/sensor/connect"
        assert request.query == {
            "type": "temperature", "x": "3", "mode": "poll",
        }
        assert request.header("host") == "gw"
        assert request.wants_websocket

    def test_body_read_by_content_length(self):
        raw = (
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )

        async def scenario():
            return await protocol.read_http_request(
                await _reader_for(raw)
            )

        request = _run(scenario())
        assert request.method == "POST"
        assert request.body == b"abcd"

    def test_garbage_returns_none(self):
        async def scenario():
            return await protocol.read_http_request(
                await _reader_for(b"\x00\x01 nonsense, no terminator")
            )

        assert _run(scenario()) is None

    def test_http_response_shape(self):
        raw = protocol.http_response(404, b'{"error":"not found"}')
        head, body = raw.split(b"\r\n\r\n", 1)
        assert head.startswith(b"HTTP/1.1 404 Not Found")
        assert b"Content-Length: 21" in head
        assert b"Connection: close" in head
        assert body == b'{"error":"not found"}'


class TestFrames:
    @pytest.mark.parametrize("size", [0, 5, 125, 126, 300, 70_000])
    @pytest.mark.parametrize("mask", [False, True])
    def test_encode_decode_all_length_forms(self, size, mask):
        payload = bytes(range(256)) * (size // 256 + 1)
        payload = payload[:size]
        frame = protocol.ws_encode(
            payload,
            opcode=protocol.OP_BINARY,
            mask=mask,
            rng=random.Random(7),
        )
        assert _run(_decode(frame)) == (protocol.OP_BINARY, payload)

    def test_text_round_trip(self):
        frame = protocol.ws_encode('{"type":"reading","value":20.5}')
        opcode, payload = _run(_decode(frame))
        assert opcode == protocol.OP_TEXT
        assert payload == b'{"type":"reading","value":20.5}'

    def test_masked_frame_is_masked_on_the_wire(self):
        payload = b"sensitive"
        frame = protocol.ws_encode(
            payload, mask=True, rng=random.Random(3)
        )
        assert payload not in frame  # masked bytes differ from payload
        assert _run(_decode(frame))[1] == payload

    def test_seeded_masks_replay(self):
        a = protocol.ws_encode(b"x", mask=True, rng=random.Random(5))
        b = protocol.ws_encode(b"x", mask=True, rng=random.Random(5))
        assert a == b

    def test_close_frame_returns_none(self):
        frame = protocol.ws_encode(b"", opcode=protocol.OP_CLOSE)
        assert _run(_decode(frame)) is None

    def test_eof_returns_none(self):
        assert _run(_decode(b"")) is None

    def test_ping_returned_to_caller(self):
        frame = protocol.ws_encode(b"hb", opcode=protocol.OP_PING)
        assert _run(_decode(frame)) == (protocol.OP_PING, b"hb")

    def test_fragmented_message_reassembled(self):
        # Hand-build TEXT(FIN=0) + CONT(FIN=1): 0x01 = text, no FIN.
        first = bytes([0x01, 3]) + b"abc"
        final = bytes([0x80 | protocol.OP_CONT, 3]) + b"def"
        assert _run(_decode(first + final)) == (
            protocol.OP_TEXT, b"abcdef",
        )

    def test_oversized_message_rejected(self):
        huge = protocol.MAX_WS_MESSAGE_BYTES + 1
        header = bytes([0x80 | protocol.OP_BINARY, 127]) + huge.to_bytes(
            8, "big"
        )
        assert _run(_decode(header)) is None
