"""End-to-end ingestion gateway tests over real localhost sockets.

The acceptance path of PR 8: WebSocket devices connect to
``/sensor/connect``, push readings, the **unmodified**
:class:`repro.middleware.rounds.ZoneRoundDriver` runs real sensing
rounds on the wall clock, and the query frontend serves the resulting
ZoneEstimates over plain HTTP.
"""

import asyncio
import json
import random

import pytest

from repro.gateway import protocol
from repro.gateway.loadgen import LoadGenerator
from repro.gateway.server import GatewayConfig, IngestionGateway

W = H = 4
PERIOD_S = 0.25


@pytest.fixture
def gateway():
    gw = IngestionGateway(
        GatewayConfig(
            zone_width=W, zone_height=H, period_s=PERIOD_S, seed=7
        )
    )
    yield gw
    gw.clock.close()


async def _http_get(port: int, path: str) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode("latin-1")
    )
    await writer.drain()
    raw = await reader.read()  # Connection: close bounds it
    writer.close()
    head, body = raw.split(b"\r\n\r\n", 1)
    return int(head.split()[1]), json.loads(body)


class TestHttpFrontend:
    def test_endpoints_before_any_device(self, gateway):
        async def scenario():
            await gateway.start()
            port = gateway.port
            status, health = await _http_get(port, "/healthz")
            assert status == 200 and health["ok"] is True
            status, latest = await _http_get(port, "/zones/latest")
            assert status == 200
            assert latest == {"round": None, "rounds_completed": 0}
            status, truth = await _http_get(port, "/field/truth")
            assert status == 200
            assert truth["sensor"] == "temperature"
            assert len(truth["grid"]) == H
            assert len(truth["grid"][0]) == W
            status, stats = await _http_get(port, "/stats")
            assert status == 200
            assert stats["devices"] == 0
            assert stats["transport"]["deferred"] is True
            status, _ = await _http_get(port, "/nope")
            assert status == 404
            await gateway.stop()

        gateway.clock.run_until_complete(scenario())


class TestDeviceRoundTrip:
    def test_stream_device_feeds_a_round(self, gateway):
        async def scenario():
            await gateway.start()
            port = gateway.port
            rng = random.Random(11)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            await protocol.ws_client_handshake(
                reader, writer,
                "/sensor/connect?x=1&y=2&mode=stream&id=t1",
                rng=rng,
            )
            opcode, payload = await protocol.ws_read_message(reader)
            joined = json.loads(payload)
            assert joined["type"] == "joined"
            assert joined["node_id"] == "gw/nc0/t1"
            assert joined["cell"] == 1 * H + 2
            assert gateway.nanocloud.broker.members["gw/nc0/t1"] == (
                joined["cell"]
            )

            # Push a reading, then sit through rounds answering pings
            # and counting commands until an estimate lands.
            writer.write(
                protocol.ws_encode(
                    '{"type":"reading","value":21.5,"noise_std":0.4}',
                    mask=True, rng=rng,
                )
            )
            await writer.drain()
            commands = 0
            deadline = gateway.clock.now + 10 * PERIOD_S
            while (
                gateway.driver.rounds_completed < 2
                and gateway.clock.now < deadline
            ):
                try:
                    message = await asyncio.wait_for(
                        protocol.ws_read_message(reader),
                        timeout=PERIOD_S,
                    )
                except asyncio.TimeoutError:
                    continue
                if message is None:
                    break
                opcode, payload = message
                if opcode == protocol.OP_PING:
                    writer.write(
                        protocol.ws_encode(
                            payload, opcode=protocol.OP_PONG,
                            mask=True, rng=rng,
                        )
                    )
                elif opcode == protocol.OP_TEXT:
                    if json.loads(payload).get("type") == "command":
                        commands += 1
            assert gateway.driver.rounds_completed >= 2
            assert commands >= 1
            node = gateway.sessions["gw/nc0/t1"].node
            assert node.readings_received == 1
            assert node.commands_answered >= 1

            status, latest = await _http_get(port, "/zones/latest")
            assert status == 200
            assert latest["rounds_completed"] >= 2
            assert len(latest["field"]) == H
            assert latest["estimates"][0]["reports_ok"] >= 1

            # Disconnect: the member must churn out everywhere.
            writer.write(
                protocol.ws_encode(
                    b"", opcode=protocol.OP_CLOSE, mask=True, rng=rng
                )
            )
            await writer.drain()
            writer.close()
            await asyncio.sleep(0.1)
            assert "gw/nc0/t1" not in gateway.sessions
            assert "gw/nc0/t1" not in gateway.nanocloud.nodes
            assert "gw/nc0/t1" not in gateway.nanocloud.broker.members
            await gateway.stop()

        gateway.clock.run_until_complete(scenario())

    def test_bad_mode_rejected(self, gateway):
        async def scenario():
            await gateway.start()
            port = gateway.port
            status, body = await _http_get(
                port, "/sensor/connect?mode=teleport"
            )
            # Not an upgrade request -> routed as plain HTTP -> 404;
            # an upgrade with a bad mode is refused with 400.
            assert status == 404 or "error" in body
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            with pytest.raises(ConnectionError):
                await protocol.ws_client_handshake(
                    reader, writer, "/sensor/connect?mode=teleport"
                )
            writer.close()
            await gateway.stop()

        gateway.clock.run_until_complete(scenario())


class TestLoadGenerator:
    def test_seeded_fleet_drives_rounds(self, gateway):
        async def scenario():
            await gateway.start()
            port = gateway.port
            load = LoadGenerator(
                "127.0.0.1", port,
                n_clients=20, rate_hz=4.0,
                zone_width=W, zone_height=H, seed=3,
            )
            report = await load.run(1.5)
            status, stats = await _http_get(port, "/stats")
            await gateway.stop()
            return report, status, stats

        report, status, stats = gateway.clock.run_until_complete(
            scenario()
        )
        assert report.connected == 20
        assert report.failures == 0
        assert report.frames_sent >= 20
        assert report.commands_seen >= 1
        assert status == 200
        assert stats["devices_joined"] == 20
        assert stats["frames_in"] >= report.frames_sent
        assert stats["rounds_completed"] >= 2
        assert stats["round_latency_p50_s"] > 0.0
        assert stats["round_latency_p99_s"] >= stats["round_latency_p50_s"]
        assert stats["transport"]["messages"] > 0
