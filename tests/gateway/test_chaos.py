"""Chaos-proxy unit tests: the fault injector must fault on schedule.

The ROB-GATE bench trusts :class:`repro.gateway.chaos.ChaosProxy` to
produce its storm; these tests pin the proxy's own contract against a
plain TCP echo server — transparent passthrough with faults off,
scheduled RST-style kills, mid-chunk truncation, chunk delay, and
seed-deterministic storm victim selection.
"""

import asyncio

import pytest

from repro.gateway.chaos import ChaosConfig, ChaosProxy


async def _start_echo() -> tuple[asyncio.AbstractServer, int]:
    async def handle(reader, writer):
        try:
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    port = int(server.sockets[0].getsockname()[1])
    return server, port


class TestChaosConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(kill_after_s=(0.5, 0.1))
        with pytest.raises(ValueError):
            ChaosConfig(kill_after_s=(-1.0, 1.0))
        with pytest.raises(ValueError):
            ChaosConfig(kill_prob=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(delay_s=(0.2, 0.1))
        with pytest.raises(ValueError):
            ChaosConfig(truncate_prob=-0.1)

    def test_default_is_fault_free(self):
        cfg = ChaosConfig()
        assert cfg.kill_after_s is None
        assert cfg.delay_s == (0.0, 0.0)
        assert cfg.truncate_prob == 0.0


class TestPassthrough:
    def test_faultless_proxy_is_transparent(self):
        async def scenario():
            echo, echo_port = await _start_echo()
            proxy = ChaosProxy("127.0.0.1", echo_port, ChaosConfig())
            await proxy.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.port
            )
            for payload in (b"hello", b"x" * 10_000, b"bye"):
                writer.write(payload)
                await writer.drain()
                got = await asyncio.wait_for(
                    reader.readexactly(len(payload)), timeout=2.0
                )
                assert got == payload
            assert proxy.active == 1
            writer.close()
            await asyncio.sleep(0.05)
            assert proxy.kills == 0
            assert proxy.connections_total == 1
            await proxy.stop()
            echo.close()
            await echo.wait_closed()

        asyncio.run(scenario())

    def test_upstream_refusal_is_counted(self):
        async def scenario():
            # Grab a port that nothing listens on.
            probe = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            dead_port = int(probe.sockets[0].getsockname()[1])
            probe.close()
            await probe.wait_closed()
            proxy = ChaosProxy("127.0.0.1", dead_port, ChaosConfig())
            await proxy.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.port
            )
            assert await reader.read() == b""  # proxy hangs up
            writer.close()
            await asyncio.sleep(0.05)
            assert proxy.upstream_failures == 1
            assert proxy.active == 0
            await proxy.stop()

        asyncio.run(scenario())


class TestKills:
    def test_scheduled_kill_aborts_the_connection(self):
        async def scenario():
            echo, echo_port = await _start_echo()
            proxy = ChaosProxy(
                "127.0.0.1", echo_port,
                ChaosConfig(kill_after_s=(0.1, 0.2), seed=3),
            )
            await proxy.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.port
            )
            writer.write(b"ping")
            await writer.drain()
            assert await reader.readexactly(4) == b"ping"
            # The seeded lifetime fires within the window; the client
            # sees an abrupt EOF/reset, never a clean shutdown it asked
            # for.
            try:
                got = await asyncio.wait_for(reader.read(), timeout=2.0)
            except ConnectionError:
                got = b""
            assert got == b""
            assert proxy.kills == 1
            assert proxy.active == 0
            writer.close()
            await proxy.stop()
            echo.close()
            await echo.wait_closed()

        asyncio.run(scenario())

    def test_kill_prob_zero_never_kills(self):
        async def scenario():
            echo, echo_port = await _start_echo()
            proxy = ChaosProxy(
                "127.0.0.1", echo_port,
                ChaosConfig(kill_after_s=(0.01, 0.02), kill_prob=0.0),
            )
            await proxy.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.port
            )
            await asyncio.sleep(0.2)  # many lifetimes past the window
            writer.write(b"still here")
            await writer.drain()
            assert await asyncio.wait_for(
                reader.readexactly(10), timeout=2.0
            ) == b"still here"
            assert proxy.kills == 0
            writer.close()
            await proxy.stop()
            echo.close()
            await echo.wait_closed()

        asyncio.run(scenario())


class TestTruncation:
    def test_chunk_cut_in_half_then_abort(self):
        async def scenario():
            echo, echo_port = await _start_echo()
            proxy = ChaosProxy(
                "127.0.0.1", echo_port,
                ChaosConfig(truncate_prob=1.0, seed=9),
            )
            await proxy.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.port
            )
            writer.write(b"A" * 100)
            await writer.drain()
            # The upstream (echo) received only the first half; whatever
            # echoes back before the abort is a strict prefix of it.
            try:
                got = await asyncio.wait_for(reader.read(), timeout=2.0)
            except ConnectionError:
                got = b""
            assert len(got) <= 50
            assert proxy.truncations == 1
            assert proxy.active == 0
            writer.close()
            await proxy.stop()
            echo.close()
            await echo.wait_closed()

        asyncio.run(scenario())


class TestDelay:
    def test_forward_delay_is_applied(self):
        async def scenario():
            echo, echo_port = await _start_echo()
            proxy = ChaosProxy(
                "127.0.0.1", echo_port,
                ChaosConfig(delay_s=(0.15, 0.2), seed=4),
            )
            await proxy.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.port
            )
            loop = asyncio.get_running_loop()
            start = loop.time()
            writer.write(b"slow")
            await writer.drain()
            got = await asyncio.wait_for(
                reader.readexactly(4), timeout=2.0
            )
            elapsed = loop.time() - start
            assert got == b"slow"
            # One delayed hop each way: at least 2 * 0.15 s.
            assert elapsed >= 0.3
            writer.close()
            await proxy.stop()
            echo.close()
            await echo.wait_closed()

        asyncio.run(scenario())


class TestStorm:
    async def _open_fleet(self, proxy: ChaosProxy, n: int):
        conns = []
        for _ in range(n):
            conns.append(
                await asyncio.open_connection("127.0.0.1", proxy.port)
            )
        await asyncio.sleep(0.05)  # let the proxy book them all
        return conns

    async def _survivors(self, conns) -> set[int]:
        alive = set()
        for idx, (reader, writer) in enumerate(conns):
            try:
                writer.write(b"?")
                await writer.drain()
                got = await asyncio.wait_for(
                    reader.readexactly(1), timeout=1.0
                )
                if got == b"?":
                    alive.add(idx)
            except (
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ):
                pass
        return alive

    def test_storm_kills_the_requested_fraction(self):
        async def scenario():
            echo, echo_port = await _start_echo()
            proxy = ChaosProxy(
                "127.0.0.1", echo_port, ChaosConfig(seed=7)
            )
            await proxy.start()
            conns = await self._open_fleet(proxy, 10)
            assert proxy.active == 10
            killed = proxy.storm(0.3)
            assert killed == 3
            assert proxy.storm_kills == 3
            assert proxy.active == 7
            survivors = await self._survivors(conns)
            assert len(survivors) == 7
            for reader, writer in conns:
                writer.close()
            await proxy.stop()
            echo.close()
            await echo.wait_closed()
            return survivors

        asyncio.run(scenario())

    def test_storm_victims_are_seed_deterministic(self):
        async def run_once(seed: int) -> set[int]:
            echo, echo_port = await _start_echo()
            proxy = ChaosProxy(
                "127.0.0.1", echo_port, ChaosConfig(seed=seed)
            )
            await proxy.start()
            conns = await self._open_fleet(proxy, 8)
            proxy.storm(0.5)
            survivors = await self._survivors(conns)
            for reader, writer in conns:
                writer.close()
            await proxy.stop()
            echo.close()
            await echo.wait_closed()
            return survivors

        async def scenario():
            first = await run_once(21)
            second = await run_once(21)
            other = await run_once(22)
            return first, second, other

        first, second, other = asyncio.run(scenario())
        assert len(first) == 4
        assert first == second  # same seed, same victims
        # A different seed is allowed to pick the same cohort by luck,
        # but with C(8,4)=70 cohorts these seeds were checked to differ.
        assert first != other

    def test_storm_rejects_bad_fraction(self):
        proxy = ChaosProxy("127.0.0.1", 1, ChaosConfig())
        with pytest.raises(ValueError):
            proxy.storm(1.5)
        with pytest.raises(ValueError):
            proxy.storm(-0.1)
        assert proxy.storm(0.5) == 0  # no connections: a no-op
