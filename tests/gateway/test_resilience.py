"""Gateway session-resilience tests over real localhost sockets.

The PR-9 acceptance path: seeded resume tokens reattach a reconnecting
device to its parked session (same node id, same trust ledger entry,
same cached reading), server-initiated ping/pong probes evict dead
peers on an idle deadline, admission control sheds connections with
HTTP 503 / WebSocket close 1013, per-session token buckets bound
inbound rates, and every eviction is counted by reason.  Everything is
default-off: with a default :class:`ResilienceConfig` the gateway runs
the PR-8 path untouched (the unmodified ``test_gateway.py`` suite is
that regression gate).
"""

import asyncio
import json
import random

import pytest

from repro.gateway import protocol
from repro.gateway.chaos import ChaosConfig, ChaosProxy
from repro.gateway.loadgen import LoadGenerator
from repro.gateway.server import (
    GatewayConfig,
    IngestionGateway,
    ResilienceConfig,
)

W = H = 4
PERIOD_S = 0.25


def make_gateway(resilience: ResilienceConfig, **kwargs) -> IngestionGateway:
    return IngestionGateway(
        GatewayConfig(
            zone_width=W,
            zone_height=H,
            period_s=PERIOD_S,
            seed=7,
            resilience=resilience,
            **kwargs,
        )
    )


async def _http_get(port: int, path: str) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode("latin-1")
    )
    await writer.drain()
    raw = await reader.read()  # Connection: close bounds it
    writer.close()
    head, body = raw.split(b"\r\n\r\n", 1)
    return int(head.split()[1]), json.loads(body)


class _Device:
    """Minimal scripted WebSocket device for lifecycle tests."""

    def __init__(self, port: int, path: str, seed: int = 11) -> None:
        self.port = port
        self.path = path
        self.rng = random.Random(seed)
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def connect(self) -> dict:
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        await protocol.ws_client_handshake(
            self.reader, self.writer, self.path, rng=self.rng
        )
        greeting = await self.read_json()
        assert greeting is not None
        return greeting

    async def read_json(
        self, timeout: float = 2.0, *, answer_pings: bool = True
    ) -> dict | None:
        """Next OP_TEXT frame as JSON; ``None`` on EOF or timeout."""
        assert self.reader is not None and self.writer is not None
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                return None
            try:
                message = await asyncio.wait_for(
                    protocol.ws_read_message(
                        self.reader, include_close=True
                    ),
                    timeout=remaining,
                )
            except asyncio.TimeoutError:
                return None
            if message is None:
                return None
            opcode, payload = message
            if opcode == protocol.OP_PING:
                if answer_pings:
                    self.writer.write(
                        protocol.ws_encode(
                            payload, opcode=protocol.OP_PONG,
                            mask=True, rng=self.rng,
                        )
                    )
                continue
            if opcode == protocol.OP_CLOSE:
                return {"type": "__closed__", **dict(
                    zip(("code", "reason"), protocol.ws_parse_close(payload))
                )}
            if opcode == protocol.OP_TEXT:
                return json.loads(payload)

    async def read_close(
        self, timeout: float = 2.0, *, answer_pings: bool = True
    ) -> tuple[int | None, str]:
        """Drain frames until the server's close frame (or EOF)."""
        while True:
            frame = await self.read_json(
                timeout, answer_pings=answer_pings
            )
            if frame is None:
                return None, ""
            if frame.get("type") == "__closed__":
                return frame["code"], frame["reason"]

    def push_reading(self, value: float, noise_std: float = 0.4) -> None:
        assert self.writer is not None
        self.writer.write(
            protocol.ws_encode(
                json.dumps(
                    {"type": "reading", "value": value,
                     "noise_std": noise_std},
                    separators=(",", ":"),
                ),
                mask=True, rng=self.rng,
            )
        )

    async def close(self) -> None:
        assert self.writer is not None
        try:
            self.writer.write(
                protocol.ws_encode(
                    protocol.ws_close_payload(protocol.CLOSE_NORMAL),
                    opcode=protocol.OP_CLOSE, mask=True, rng=self.rng,
                )
            )
            await self.writer.drain()
        except ConnectionError:
            pass
        self.writer.close()


class TestResilienceConfig:
    def test_default_is_fully_off(self):
        cfg = ResilienceConfig()
        assert cfg.any_enabled is False
        assert cfg.sweep_interval_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(ping_interval_s=-1.0)
        with pytest.raises(ValueError):
            ResilienceConfig(idle_timeout_s=-0.1)
        with pytest.raises(ValueError):
            ResilienceConfig(resume_ttl_s=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_sessions=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(shed_at_level=4)
        with pytest.raises(ValueError):
            ResilienceConfig(rate_limit_hz=-2.0)
        with pytest.raises(ValueError):
            ResilienceConfig(rate_limit_burst=0)

    def test_sweep_interval_tracks_fastest_need(self):
        assert ResilienceConfig(
            ping_interval_s=0.4
        ).sweep_interval_s == pytest.approx(0.4)
        assert ResilienceConfig(
            ping_interval_s=0.4, idle_timeout_s=0.5
        ).sweep_interval_s == pytest.approx(0.25)
        assert ResilienceConfig(
            resume_enabled=True, resume_ttl_s=2.0
        ).sweep_interval_s == pytest.approx(0.5)
        # Rate limiting alone needs no sweep.
        assert ResilienceConfig(rate_limit_hz=2.0).sweep_interval_s == 0.0

    def test_default_gateway_arms_no_sweep_and_issues_no_token(self):
        gw = make_gateway(ResilienceConfig())

        async def scenario():
            await gw.start()
            assert gw._sweep is None
            device = _Device(gw.port, "/sensor/connect?x=1&y=1&id=t0")
            joined = await device.connect()
            assert joined["type"] == "joined"
            assert "resume" not in joined  # byte-identical PR-8 greeting
            await device.close()
            await asyncio.sleep(0.05)
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()


class TestResume:
    def test_resume_retains_identity_trust_and_reading(self):
        gw = make_gateway(
            ResilienceConfig(resume_enabled=True, resume_ttl_s=5.0)
        )

        async def scenario():
            await gw.start()
            port = gw.port
            device = _Device(port, "/sensor/connect?x=1&y=2&id=t1")
            joined = await device.connect()
            assert joined["type"] == "joined"
            node_id = joined["node_id"]
            assert node_id == "gw/nc0/t1"
            token = joined["resume"]
            assert isinstance(token, str) and token

            device.push_reading(21.5)
            await device.writer.drain()
            await asyncio.sleep(0.05)
            node = gw.sessions[node_id].node
            assert node.readings_received == 1

            # Give the node distinctive trust standing to carry across.
            record = gw.nanocloud.broker.trust.get(node_id)
            record.trust = 0.42
            record.accepted = 9
            record.rejected = 3

            await device.close()
            await asyncio.sleep(0.1)
            # Parked, not churned: the live book dropped it, the zone
            # did not.
            assert node_id not in gw.sessions
            assert node_id in gw.nanocloud.nodes
            assert node_id in gw.nanocloud.broker.members
            assert gw.sessions_parked == 1
            status, stats = await _http_get(port, "/stats")
            assert status == 200
            assert stats["resilience"]["parked"] == 1

            # Reconnect presenting the token: same node, same ledger.
            back = _Device(
                port, f"/sensor/connect?x=1&y=2&id=t1&resume={token}",
                seed=13,
            )
            resumed = await back.connect()
            assert resumed["type"] == "resumed"
            assert resumed["node_id"] == node_id
            assert resumed["resume"] == token
            assert gw.sessions_resumed == 1
            assert gw.sessions[node_id].node is node  # the same object

            # Trust continuity across the reconnect (acceptance).
            carried = gw.nanocloud.broker.trust.get(node_id)
            assert carried.trust == pytest.approx(0.42)
            assert carried.accepted == 9 and carried.rejected == 3
            # The cached reading survived too; new pushes accumulate.
            back.push_reading(22.0)
            await back.writer.drain()
            await asyncio.sleep(0.05)
            assert node.readings_received == 2

            await back.close()
            await asyncio.sleep(0.05)
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()

    def test_unknown_token_falls_back_to_fresh_join(self):
        gw = make_gateway(
            ResilienceConfig(resume_enabled=True, resume_ttl_s=5.0)
        )

        async def scenario():
            await gw.start()
            device = _Device(
                gw.port, "/sensor/connect?x=0&y=0&id=t9&resume=rdeadbeef"
            )
            joined = await device.connect()
            assert joined["type"] == "joined"
            assert joined["resume"] != "rdeadbeef"
            assert gw.resume_misses == 1
            assert gw.sessions_resumed == 0
            await device.close()
            await asyncio.sleep(0.05)
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()

    def test_parked_session_expires_after_ttl(self):
        gw = make_gateway(
            ResilienceConfig(resume_enabled=True, resume_ttl_s=0.3)
        )

        async def scenario():
            await gw.start()
            device = _Device(gw.port, "/sensor/connect?x=1&y=1&id=t2")
            joined = await device.connect()
            node_id = joined["node_id"]
            await device.close()
            await asyncio.sleep(0.1)
            assert node_id in gw.nanocloud.broker.members  # parked
            await asyncio.sleep(0.7)  # past TTL + a sweep period
            assert node_id not in gw.nanocloud.nodes
            assert node_id not in gw.nanocloud.broker.members
            assert gw.evictions["expired"] == 1
            assert not gw._parked
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()


class TestLiveness:
    def test_silent_peer_evicted_with_going_away(self):
        gw = make_gateway(
            ResilienceConfig(ping_interval_s=0.1, idle_timeout_s=0.35)
        )

        async def scenario():
            await gw.start()
            device = _Device(gw.port, "/sensor/connect?x=1&y=1&id=mute")
            joined = await device.connect()
            node_id = joined["node_id"]
            # Go silent: never answer pings, never push.  The sweep
            # must evict after the idle deadline and say why.
            code, reason = await device.read_close(
                timeout=3.0, answer_pings=False
            )
            assert code == protocol.CLOSE_GOING_AWAY
            assert "idle" in reason
            assert gw.evictions["idle"] == 1
            assert node_id not in gw.sessions
            # No resume configured: eviction is a full churn.
            assert node_id not in gw.nanocloud.broker.members
            await asyncio.sleep(0.05)
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()

    async def _responsive_device(self, gw, duration_s):
        device = _Device(gw.port, "/sensor/connect?x=1&y=1&id=alive")
        joined = await device.connect()
        deadline = asyncio.get_running_loop().time() + duration_s
        while asyncio.get_running_loop().time() < deadline:
            # read_json answers pings internally; commands are ignored.
            await device.read_json(timeout=0.2)
        return device, joined["node_id"]

    def test_responsive_peer_survives_idle_deadline(self):
        gw = make_gateway(
            ResilienceConfig(ping_interval_s=0.1, idle_timeout_s=0.35)
        )

        async def scenario():
            await gw.start()
            device, node_id = await self._responsive_device(gw, 1.0)
            # Lived ~3x the idle deadline on pong liveness alone.
            assert node_id in gw.sessions
            assert gw.pings_sent > 0
            assert gw.pongs_received > 0
            assert gw.evictions["idle"] == 0
            await device.close()
            await asyncio.sleep(0.05)
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()

    def test_write_failure_evicts_immediately(self):
        """Satellite: a half-open peer must not linger in the live book
        until the next read fails — the first failed *write* evicts it."""
        gw = make_gateway(ResilienceConfig(ping_interval_s=5.0))

        async def scenario():
            await gw.start()
            device = _Device(gw.port, "/sensor/connect?x=1&y=1&id=gone")
            joined = await device.connect()
            node_id = joined["node_id"]
            session = gw.sessions[node_id]
            # Simulate the half-open state: the server-side transport is
            # dead but the read loop hasn't noticed yet.
            session.writer.transport.close()
            assert node_id in gw.sessions
            # The next uplink write (here: a command notification path,
            # driven directly) detects the dead transport and evicts.
            session.node.send_json({"type": "command", "sensor": "t"})
            assert node_id not in gw.sessions
            assert gw.evictions["reset"] == 1
            assert session.closed_reason == "reset"
            await asyncio.sleep(0.05)
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()


class TestAdmission:
    def test_over_capacity_sheds_with_1013_and_503(self):
        gw = make_gateway(ResilienceConfig(max_sessions=1))

        async def scenario():
            await gw.start()
            port = gw.port
            first = _Device(port, "/sensor/connect?x=0&y=0&id=a")
            joined = await first.connect()
            assert joined["type"] == "joined"

            # WebSocket upgrade over capacity: handshake completes, then
            # an RFC 6455 close with 1013 "try again later".
            second = _Device(port, "/sensor/connect?x=0&y=1&id=b", seed=12)
            second.reader, second.writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            await protocol.ws_client_handshake(
                second.reader, second.writer, second.path, rng=second.rng
            )
            code, reason = await second.read_close()
            assert code == protocol.CLOSE_TRY_AGAIN_LATER
            assert reason == "capacity"
            assert gw.evictions["shed"] == 1
            assert len(gw.sessions) == 1
            second.writer.close()

            # Plain HTTP connect over capacity: a real 503.
            status, body = await _http_get(port, "/sensor/connect")
            assert status == 503
            assert body["retry"] is True
            status, health = await _http_get(port, "/healthz")
            assert health["shedding"] is True
            assert health["shed_reason"] == "capacity"

            # Capacity freed: the next connect is admitted again.
            await first.close()
            await asyncio.sleep(0.1)
            third = _Device(port, "/sensor/connect?x=0&y=2&id=c", seed=14)
            joined = await third.connect()
            assert joined["type"] == "joined"
            await third.close()
            await asyncio.sleep(0.05)
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()

    def test_plain_connect_without_upgrade_is_400_when_not_shedding(self):
        gw = make_gateway(ResilienceConfig())

        async def scenario():
            await gw.start()
            status, body = await _http_get(gw.port, "/sensor/connect")
            assert status == 400
            assert "upgrade" in body["error"]
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()


class TestRateLimit:
    def test_token_bucket_bounds_inbound_frames(self):
        gw = make_gateway(
            ResilienceConfig(rate_limit_hz=2.0, rate_limit_burst=3)
        )

        async def scenario():
            await gw.start()
            device = _Device(gw.port, "/sensor/connect?x=1&y=1&id=flood")
            joined = await device.connect()
            node = gw.sessions[joined["node_id"]].node
            for i in range(12):
                device.push_reading(20.0 + i)
            await device.writer.drain()
            await asyncio.sleep(0.2)
            # Burst of 3 plus at most ~1 refilled token in 0.2 s.
            assert node.readings_received <= 5
            assert gw.frames_rate_limited >= 7
            assert (
                node.readings_received + gw.frames_rate_limited == 12
            )
            status, stats = await _http_get(gw.port, "/stats")
            assert (
                stats["resilience"]["frames_rate_limited"]
                == gw.frames_rate_limited
            )
            await device.close()
            await asyncio.sleep(0.05)
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()


class TestDuplicateIds:
    def test_renamed_session_is_independently_addressable(self):
        """Satellite: two devices claiming one id must become two fully
        independent sessions, and resume tokens must never collide with
        either node id."""
        gw = make_gateway(
            ResilienceConfig(resume_enabled=True, resume_ttl_s=5.0)
        )

        async def scenario():
            await gw.start()
            a = _Device(gw.port, "/sensor/connect?x=1&y=1&id=dup")
            joined_a = await a.connect()
            b = _Device(gw.port, "/sensor/connect?x=2&y=2&id=dup", seed=12)
            joined_b = await b.connect()

            assert joined_a["node_id"] == "gw/nc0/dup"
            assert joined_b["node_id"] != joined_a["node_id"]
            assert joined_b["node_id"].startswith("gw/nc0/dup.")
            # Both live in every membership book under distinct ids.
            for node_id in (joined_a["node_id"], joined_b["node_id"]):
                assert node_id in gw.sessions
                assert node_id in gw.nanocloud.nodes
                assert node_id in gw.nanocloud.broker.members
                assert gw.transport.endpoint(node_id) is not None

            # Independently addressable: each socket feeds its own node.
            a.push_reading(21.0)
            b.push_reading(25.0)
            await a.writer.drain()
            await b.writer.drain()
            await asyncio.sleep(0.05)
            node_a = gw.sessions[joined_a["node_id"]].node
            node_b = gw.sessions[joined_b["node_id"]].node
            assert node_a.readings_received == 1
            assert node_b.readings_received == 1
            assert node_a.latest.value == pytest.approx(21.0)
            assert node_b.latest.value == pytest.approx(25.0)

            # Distinct resume tokens, colliding with no node id.
            tokens = {joined_a["resume"], joined_b["resume"]}
            assert len(tokens) == 2
            node_ids = set(gw.sessions)
            assert tokens.isdisjoint(node_ids)

            # A third claimant while both squat on the name still lands
            # on a free id.
            c = _Device(gw.port, "/sensor/connect?x=3&y=3&id=dup", seed=13)
            joined_c = await c.connect()
            assert joined_c["node_id"] not in (
                joined_a["node_id"], joined_b["node_id"]
            )
            assert joined_c["resume"] not in tokens

            for device in (a, b, c):
                await device.close()
            await asyncio.sleep(0.05)
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()

    def test_stranger_cannot_steal_a_parked_identity(self):
        gw = make_gateway(
            ResilienceConfig(resume_enabled=True, resume_ttl_s=5.0)
        )

        async def scenario():
            await gw.start()
            owner = _Device(gw.port, "/sensor/connect?x=1&y=1&id=me")
            joined = await owner.connect()
            await owner.close()
            await asyncio.sleep(0.1)
            assert joined["node_id"] in gw.nanocloud.broker.members

            # Same id, no token: admitted as a *renamed* stranger — the
            # parked node keeps its slot for the rightful resumer.
            stranger = _Device(
                gw.port, "/sensor/connect?x=1&y=1&id=me", seed=12
            )
            joined_s = await stranger.connect()
            assert joined_s["node_id"] != joined["node_id"]
            assert joined["node_id"] in gw.nanocloud.broker.members
            await stranger.close()
            await asyncio.sleep(0.05)
            await gw.stop()

        gw.clock.run_until_complete(scenario())
        gw.clock.close()


class TestLoadgenResilience:
    def test_fleet_outlives_chaos_kills_via_resume(self):
        gw = make_gateway(
            ResilienceConfig(
                resume_enabled=True,
                resume_ttl_s=5.0,
                ping_interval_s=0.5,
                idle_timeout_s=2.0,
            )
        )

        async def scenario():
            await gw.start()
            proxy = ChaosProxy(
                "127.0.0.1",
                gw.port,
                ChaosConfig(kill_after_s=(0.2, 0.6), seed=5),
            )
            await proxy.start()
            load = LoadGenerator(
                "127.0.0.1", proxy.port,
                n_clients=5, rate_hz=8.0,
                zone_width=W, zone_height=H, seed=3,
                reconnect=True, resume=True,
                backoff_initial_s=0.02, backoff_max_s=0.2,
            )
            report = await load.run(2.0)
            await proxy.stop()
            await asyncio.sleep(0.1)  # let aborted sessions tear down
            await gw.stop()
            return report

        report = gw.clock.run_until_complete(scenario())
        gw.clock.close()
        # Every client survived the kill schedule by reconnecting, and
        # the gateway reattached (not re-admitted) at least some of
        # them via their resume tokens.
        assert report.connected == 5
        assert report.failures == 0
        assert report.reconnects > 0
        assert report.resumes > 0
        # A "resumed" frame can be killed in flight before the client
        # reads it, so the server count dominates the client count.
        assert gw.sessions_resumed >= report.resumes
        assert report.frames_sent > 0
