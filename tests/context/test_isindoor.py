"""Tests for the compressive IsIndoor flag (GPS/WiFi duty cycling)."""

import numpy as np
import pytest

from repro.context.isindoor import detect_indoor_trace, observe_indoor
from repro.fields.field import SpatialField
from repro.fields.generators import indicator_field
from repro.sensors.base import Environment, NodeState
from repro.sensors.physical import GPSSensor, WiFiSensor


@pytest.fixture
def env():
    return Environment(indoor_map=indicator_field(32, 32, n_regions=5, rng=2))


def _walk_states(n=200, seed=0, step_std=0.25):
    """A slow pedestrian walk: indoor/outdoor periods last tens of steps,
    which is the piecewise-constant regime the compressive IsIndoor flag
    assumes (people do not teleport between buildings every second)."""
    rng = np.random.default_rng(seed)
    xs = np.clip(16 + np.cumsum(rng.normal(0, step_std, n)), 0, 31)
    ys = np.clip(16 + np.cumsum(rng.normal(0, step_std, n)), 0, 31)
    return [NodeState(x=float(x), y=float(y)) for x, y in zip(xs, ys)]


class TestObserve:
    def test_indoor_cell_flags_indoor(self, env):
        grid = env.indoor_map.grid
        j, i = np.argwhere(grid > 0.5)[0]
        state = NodeState(x=float(i), y=float(j))
        votes = [
            observe_indoor(
                GPSSensor(rng=s), WiFiSensor(rng=s), env, state, 0.0
            ).is_indoor
            for s in range(20)
        ]
        assert np.mean(votes) > 0.8

    def test_outdoor_cell_flags_outdoor(self, env):
        grid = env.indoor_map.grid
        j, i = np.argwhere(grid < 0.5)[0]
        state = NodeState(x=float(i), y=float(j))
        votes = [
            observe_indoor(
                GPSSensor(rng=s), WiFiSensor(rng=s), env, state, 0.0
            ).is_indoor
            for s in range(20)
        ]
        assert np.mean(votes) < 0.3

    def test_energy_is_gps_plus_wifi(self, env):
        gps, wifi = GPSSensor(rng=0), WiFiSensor(rng=0)
        obs = observe_indoor(gps, wifi, env, NodeState(), 0.0)
        assert obs.energy_mj == pytest.approx(
            gps.spec.energy_per_sample_mj + wifi.spec.energy_per_sample_mj
        )


class TestTraceDetection:
    def test_full_duty_cycle_accuracy(self, env):
        result = detect_indoor_trace(
            _walk_states(), env, duty_cycle=1.0, rng=1
        )
        assert result.accuracy > 0.85
        assert result.duty_cycle == 1.0

    def test_low_duty_cycle_similar_accuracy(self, env):
        """The paper's claim: compressive GPS/WiFi sampling keeps
        'similar accuracy while saving energy'."""
        full = detect_indoor_trace(_walk_states(), env, duty_cycle=1.0, rng=2)
        fifth = detect_indoor_trace(_walk_states(), env, duty_cycle=0.2, rng=2)
        assert fifth.accuracy > full.accuracy - 0.1

    def test_energy_scales_with_duty_cycle(self, env):
        full = detect_indoor_trace(_walk_states(), env, duty_cycle=1.0, rng=3)
        tenth = detect_indoor_trace(_walk_states(), env, duty_cycle=0.1, rng=3)
        assert tenth.energy_mj < 0.15 * full.energy_mj

    def test_all_outdoor_environment(self):
        env = Environment(
            indoor_map=SpatialField(grid=np.zeros((8, 8)))
        )
        result = detect_indoor_trace(
            _walk_states(50, seed=4), env, duty_cycle=0.2, rng=4
        )
        assert result.accuracy > 0.9

    def test_flag_lengths_match(self, env):
        states = _walk_states(77, seed=5)
        result = detect_indoor_trace(states, env, duty_cycle=0.3, rng=5)
        assert result.flags.size == result.truth.size == 77

    def test_instant_zero_always_sampled(self, env):
        result = detect_indoor_trace(
            _walk_states(50, seed=6), env, duty_cycle=0.05, rng=6
        )
        assert 0 in result.sampled_instants.tolist()

    def test_validation(self, env):
        with pytest.raises(ValueError):
            detect_indoor_trace([], env)
        with pytest.raises(ValueError):
            detect_indoor_trace(_walk_states(5), env, duty_cycle=0.0)
