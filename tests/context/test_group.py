"""Tests for group context aggregation."""

import pytest

from repro.context.group import ContextReport, GroupAggregator


def _report(node, kind, value, t=0.0):
    return ContextReport(node_id=node, timestamp=t, kind=kind, value=value)


class TestCategorical:
    def test_consensus_and_distribution(self):
        agg = GroupAggregator()
        for i, mode in enumerate(["driving"] * 3 + ["idle"]):
            agg.add(_report(f"n{i}", "activity", mode))
        ctx = agg.aggregate("activity", now=0.0)
        assert ctx.consensus == "driving"
        assert ctx.count == 4
        assert ctx.distribution["driving"] == pytest.approx(0.75)
        assert ctx.mean is None


class TestNumeric:
    def test_mean_and_binning(self):
        agg = GroupAggregator()
        for i, stress in enumerate([0.1, 0.2, 0.8, 0.9]):
            agg.add(_report(f"n{i}", "stress", stress))
        ctx = agg.aggregate("stress", now=0.0)
        assert ctx.mean == pytest.approx(0.5)
        assert ctx.distribution["low"] == pytest.approx(0.5)
        assert ctx.distribution["high"] == pytest.approx(0.5)

    def test_stress_quotient(self):
        agg = GroupAggregator()
        agg.add(_report("mom", "stress", 0.4))
        agg.add(_report("dad", "stress", 0.6))
        assert agg.stress_quotient(now=0.0) == pytest.approx(0.5)

    def test_stress_quotient_none_when_unshared(self):
        assert GroupAggregator().stress_quotient(now=0.0) is None

    def test_identical_values_single_bin(self):
        agg = GroupAggregator()
        for i in range(3):
            agg.add(_report(f"n{i}", "exposure", 5.0))
        ctx = agg.aggregate("exposure", now=0.0)
        assert ctx.distribution == {"low": 1.0}


class TestWindowing:
    def test_old_reports_excluded(self):
        agg = GroupAggregator(window_s=10.0)
        agg.add(_report("n1", "activity", "idle", t=0.0))
        agg.add(_report("n2", "activity", "driving", t=95.0))
        ctx = agg.aggregate("activity", now=100.0)
        assert ctx.count == 1
        assert ctx.consensus == "driving"

    def test_empty_window(self):
        agg = GroupAggregator()
        ctx = agg.aggregate("activity", now=0.0)
        assert ctx.count == 0
        assert ctx.consensus is None

    def test_prune(self):
        agg = GroupAggregator(window_s=10.0)
        agg.add(_report("n1", "activity", "idle", t=0.0))
        agg.add(_report("n2", "activity", "idle", t=50.0))
        assert agg.prune(now=55.0) == 1


class TestValidation:
    def test_mixed_types_rejected(self):
        agg = GroupAggregator()
        agg.add(_report("n1", "weird", 1.0))
        agg.add(_report("n2", "weird", "label"))
        with pytest.raises(ValueError, match="mixes"):
            agg.aggregate("weird", now=0.0)
