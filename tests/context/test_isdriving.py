"""Tests for the compressive IsDriving pipeline (Fig. 4)."""

import numpy as np
import pytest

from repro.context.isdriving import (
    compressive_vs_uniform_trial,
    detect_is_driving,
)
from repro.sensors.physical import accelerometer_window


class TestDetection:
    def test_detects_driving_at_m30(self):
        """The paper's operating point: 30 of 256 samples suffice."""
        correct = 0
        for seed in range(10):
            sig = accelerometer_window("driving", 256, rng=seed)
            d = detect_is_driving(sig, 32.0, m=30, rng=100 + seed)
            correct += d.is_driving
        assert correct >= 9

    def test_rejects_walking_and_idle(self):
        for mode in ("idle", "walking"):
            hits = 0
            for seed in range(10):
                sig = accelerometer_window(mode, 256, rng=seed)
                d = detect_is_driving(sig, 32.0, m=30, rng=200 + seed)
                hits += d.is_driving
            assert hits <= 1

    def test_error_decreases_with_m(self):
        """Fig. 4's y-axis: median reconstruction error falls as M grows."""
        sig = accelerometer_window("driving", 256, rng=3)
        medians = []
        for m in (15, 40, 100):
            errs = [
                detect_is_driving(
                    sig, 32.0, m=m, rng=s
                ).reconstruction_error
                for s in range(7)
            ]
            medians.append(np.median(errs))
        assert medians[0] > medians[1] > medians[2]

    def test_compression_ratio(self):
        sig = accelerometer_window("driving", 256, rng=4)
        d = detect_is_driving(sig, 32.0, m=32, rng=0)
        assert d.compression_ratio == pytest.approx(32 / 256)

    def test_explicit_locations(self):
        sig = accelerometer_window("driving", 256, rng=5)
        loc = np.arange(0, 256, 4)
        d = detect_is_driving(sig, 32.0, locations=loc)
        assert d.m == 64

    def test_default_m_is_one_eighth(self):
        sig = accelerometer_window("driving", 256, rng=6)
        d = detect_is_driving(sig, 32.0, rng=1)
        assert d.m == 32

    def test_short_window_rejected(self):
        with pytest.raises(ValueError):
            detect_is_driving(np.zeros(8), 32.0)


class TestTrial:
    def test_matched_comparison(self):
        sig = accelerometer_window("driving", 256, rng=7)
        outcome = compressive_vs_uniform_trial(
            sig, "driving", 32.0, m=32, rng=2
        )
        assert outcome.uniform_samples == 256
        assert outcome.compressive_samples == 32
        assert outcome.uniform_mode == "driving"
        assert outcome.compressive_mode == "driving"

    def test_accuracy_parity_at_paper_operating_point(self):
        """Compressive classification matches uniform on >=90% of windows
        while taking 8x fewer samples — the paper's 'similar accuracy
        while saving energy'."""
        agree = 0
        trials = 0
        for mode in ("idle", "walking", "driving"):
            for seed in range(8):
                sig = accelerometer_window(mode, 256, rng=seed)
                outcome = compressive_vs_uniform_trial(
                    sig, mode, 32.0, m=32, rng=300 + seed
                )
                agree += outcome.uniform_mode == outcome.compressive_mode
                trials += 1
        assert agree / trials >= 0.9
