"""Tests for window feature extraction."""

import numpy as np
import pytest

from repro.context.features import band_energy, extract_features
from repro.sensors.physical import accelerometer_window


class TestBandEnergy:
    def test_pure_tone_lands_in_its_band(self):
        rate = 32.0
        n = 256
        t = np.arange(n) / rate
        tone = np.sin(2 * np.pi * 2.0 * t)  # 2 Hz
        in_band = band_energy(tone, rate, 1.5, 2.5)
        out_band = band_energy(tone, rate, 8.0, 16.0)
        assert in_band > 100 * max(out_band, 1e-12)

    def test_empty_band_is_zero(self):
        assert band_energy(np.ones(64), 32.0, 15.9, 15.95) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            band_energy(np.array([]), 32.0, 0, 1)
        with pytest.raises(ValueError):
            band_energy(np.ones(8), 0.0, 0, 1)
        with pytest.raises(ValueError):
            band_energy(np.ones(8), 32.0, 2.0, 1.0)


class TestExtractFeatures:
    def test_idle_has_tiny_rms(self):
        sig = accelerometer_window("idle", 256, rng=0)
        features = extract_features(sig, 32.0)
        assert features.rms < 0.1

    def test_walking_dominated_by_step_band(self):
        sig = accelerometer_window("walking", 256, rng=1)
        features = extract_features(sig, 32.0)
        assert features.step_energy > features.engine_energy
        assert features.step_energy > features.sway_energy

    def test_driving_dominated_by_sway_plus_engine(self):
        sig = accelerometer_window("driving", 256, rng=2)
        features = extract_features(sig, 32.0)
        assert (
            features.sway_energy + features.engine_energy
            > features.step_energy
        )

    def test_as_array_shape(self):
        sig = accelerometer_window("walking", 128, rng=3)
        assert extract_features(sig, 32.0).as_array().shape == (5,)

    def test_too_short_window(self):
        with pytest.raises(ValueError):
            extract_features(np.ones(4), 32.0)
