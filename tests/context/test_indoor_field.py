"""The IsIndoor *spatial field* use case (Section 3's earthquake story).

"This 'IsIndoor' flag spatial field can be used, for instance, during an
earthquake to assess the potential dangers to human life."  These tests
exercise the pipeline: many phones report their locally inferred flag,
the broker reconstructs the 0/1 occupancy field compressively — and the
right basis for a piecewise-constant field is Haar, not DCT.
"""

import numpy as np
import pytest

from repro.core import metrics
from repro.core.basis import dct_basis, haar_basis
from repro.core.reconstruction import reconstruct
from repro.core.sampling import random_locations
from repro.fields.field import SpatialField
from repro.fields.generators import indicator_field


def _indoor_vector(n=256, seed=2):
    """A 0/1 indoor map vectorised to length n (16x16 grid)."""
    field = indicator_field(16, 16, n_regions=4, region_size=(4, 8), rng=seed)
    return field.vector()


class TestIndoorFieldReconstruction:
    def test_haar_beats_dct_on_indicator_fields(self):
        """Piecewise-constant flag fields are sparser in Haar."""
        x = _indoor_vector()
        n = x.size
        haar = haar_basis(n)
        dct = dct_basis(n)
        m = 96
        haar_errs, dct_errs = [], []
        for seed in range(5):
            loc = random_locations(n, m, seed)
            for phi, errs in ((haar, haar_errs), (dct, dct_errs)):
                result = reconstruct(
                    x[loc], loc, phi, solver="omp", sparsity=m // 3,
                    center=True,
                )
                errs.append(metrics.rmse(x, result.x_hat))
        assert np.median(haar_errs) < np.median(dct_errs)

    def test_thresholded_flag_field_accuracy(self):
        """After thresholding the reconstruction at 0.5, most cells carry
        the correct indoor/outdoor danger label."""
        x = _indoor_vector(seed=3)
        n = x.size
        phi = haar_basis(n)
        loc = random_locations(n, 160, 7)
        result = reconstruct(
            x[loc], loc, phi, solver="omp", sparsity=60, center=True
        )
        flags = (result.x_hat > 0.5).astype(float)
        accuracy = float(np.mean(flags == x))
        assert accuracy > 0.9

    def test_occupancy_rate_estimate(self):
        """The cloud-level 'danger' statistic — fraction of population
        indoors — is accurate even from the compressed field."""
        x = _indoor_vector(seed=4)
        n = x.size
        phi = haar_basis(n)
        loc = random_locations(n, 100, 9)
        result = reconstruct(
            x[loc], loc, phi, solver="omp", sparsity=36, center=True
        )
        true_rate = float(np.mean(x))
        estimated_rate = float(np.mean(np.clip(result.x_hat, 0, 1)))
        assert abs(estimated_rate - true_rate) < 0.08
