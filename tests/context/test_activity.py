"""Tests for the activity classifier."""

import numpy as np
import pytest

from repro.context.activity import MODES, classify_window
from repro.sensors.physical import accelerometer_window


class TestClassification:
    @pytest.mark.parametrize("mode", MODES)
    def test_full_window_accuracy(self, mode):
        correct = 0
        trials = 20
        for seed in range(trials):
            sig = accelerometer_window(mode, 256, rng=seed)
            estimate = classify_window(sig, 32.0)
            correct += estimate.mode == mode
        assert correct / trials >= 0.95

    def test_confidence_in_unit_interval(self):
        for mode in MODES:
            sig = accelerometer_window(mode, 256, rng=0)
            estimate = classify_window(sig, 32.0)
            assert 0.0 <= estimate.confidence <= 1.0

    def test_scores_sum_to_one(self):
        sig = accelerometer_window("walking", 256, rng=1)
        estimate = classify_window(sig, 32.0)
        assert sum(estimate.scores.values()) == pytest.approx(1.0)

    def test_idle_is_deterministic_on_silence(self):
        estimate = classify_window(np.zeros(128), 32.0)
        assert estimate.mode == "idle"
        assert estimate.confidence == 1.0

    def test_mode_matches_argmax_score(self):
        for mode in MODES:
            sig = accelerometer_window(mode, 256, rng=2)
            estimate = classify_window(sig, 32.0)
            best = max(estimate.scores, key=estimate.scores.get)
            assert estimate.mode == best
