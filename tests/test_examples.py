"""Smoke tests: the shipped examples must run cleanly end to end.

Only the fast examples run here (the full set is exercised manually /
in docs); each is executed as a real subprocess so import paths, CLI
behaviour and output all get checked the way a user would hit them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "health_group.py",
    "spacetime_window.py",
    "byzantine_zone.py",
    "overload_zone.py",
    "live_gateway.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"


def test_all_examples_exist():
    expected = {
        "quickstart.py",
        "fire_response.py",
        "smart_building.py",
        "health_group.py",
        "traffic_sensing.py",
        "spacetime_window.py",
        "earthquake_response.py",
        "byzantine_zone.py",
        "overload_zone.py",
        "live_gateway.py",
    }
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= present
