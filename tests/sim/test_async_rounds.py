"""Event-driven rounds: zero-mode equivalence, determinism, async engine.

The acceptance contract of the event-driven round pipeline:

1. With ``latency_mode="zero"`` the event-driven drivers reproduce the
   synchronous lockstep rounds *bit-identically* — same zone estimates,
   same sampling plans, same traffic counters (property-tested across
   seeds and zone layouts).
2. With nonzero link latency, loss, and different per-zone periods and
   offsets, a run is deterministic: the same seed replays the same
   :class:`repro.sim.engine.SimulationResult` event for event.
3. The async engine records per-zone rounds with the simulated
   command-to-estimate latency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields.generators import smooth_field
from repro.middleware.api import SenseDroid
from repro.middleware.config import BrokerConfig, HierarchyConfig
from repro.sensors.base import Environment
from repro.sim.clock import SimClock
from repro.sim.engine import SimulationEngine
from repro.sim.scenario import ZoneSchedule, smart_building_scenario


def _system(seed, zones_x=2, zones_y=1, nodes_per_nc=10, width=16, height=8):
    gen = np.random.default_rng(seed)
    truth = smooth_field(
        width, height, cutoff=0.2, amplitude=4.0, offset=20.0,
        rng=gen.integers(2**31),
    )
    env = Environment(fields={"temperature": truth})
    system = SenseDroid(
        env,
        hierarchy_config=HierarchyConfig(
            zones_x=zones_x, zones_y=zones_y, nodes_per_nanocloud=nodes_per_nc
        ),
        broker_config=BrokerConfig(),
        rng=gen.integers(2**31),
    )
    return env, system


def _estimates_identical(lcr_a, lcr_b) -> bool:
    """Bit-exact comparison of two LocalCloudResults."""
    if not np.array_equal(lcr_a.field.grid, lcr_b.field.grid):
        return False
    for ea, eb in zip(lcr_a.nc_estimates, lcr_b.nc_estimates):
        if not np.array_equal(ea.reconstruction.x_hat, eb.reconstruction.x_hat):
            return False
        if not np.array_equal(ea.plan.locations, eb.plan.locations):
            return False
        if (
            ea.sparsity_estimate != eb.sparsity_estimate
            or ea.planned_m != eb.planned_m
            or ea.reports_ok != eb.reports_ok
            or ea.reports_refused != eb.reports_refused
            or ea.infra_reads != eb.infra_reads
            or ea.commands_lost != eb.commands_lost
            or ea.reports_lost != eb.reports_lost
            or ea.retries_used != eb.retries_used
        ):
            return False
    return True


class TestZeroModeBitIdentity:
    """latency_mode="zero" event-driven == synchronous lockstep."""

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_drivers_reproduce_lockstep_rounds(self, seed):
        period = 30.0
        times = (30.0, 60.0, 90.0)

        # Arm A: the synchronous lockstep path.
        env_a, sys_a = _system(seed)
        results_a = [
            sys_a.hierarchy.run_global_round(env_a, t) for t in times
        ]

        # Arm B: event-driven drivers in zero mode on the same cadence.
        env_b, sys_b = _system(seed)
        clock = SimClock()
        sys_b.hierarchy.bus.attach_clock(clock, "zero")
        outcomes = []
        drivers = sys_b.hierarchy.async_drivers(
            env_b, clock, default_period_s=period,
            on_complete=outcomes.append,
        )
        for zone_id in sorted(drivers):
            drivers[zone_id].start(until=times[-1])
        clock.run_until(times[-1])

        by_zone = {}
        for outcome in outcomes:
            by_zone.setdefault(outcome.zone_id, []).append(outcome)
        for i, global_estimate in enumerate(results_a):
            for zone_id, lcr_a in global_estimate.zone_results.items():
                outcome = by_zone[zone_id][i]
                assert outcome.started_at == global_estimate.timestamp
                assert outcome.latency_s == 0.0
                assert not outcome.partial
                assert _estimates_identical(lcr_a, outcome.result)

        # Traffic accounting: counts and bytes bit-exact globally and
        # per endpoint; energy/latency sums only reorder across zones
        # (float addition is not associative), so compare tightly.
        stats_a = sys_a.hierarchy.bus.stats
        stats_b = sys_b.hierarchy.bus.stats
        assert stats_a.messages == stats_b.messages
        assert stats_a.bytes == stats_b.bytes
        assert dict(stats_a.by_kind) == dict(stats_b.by_kind)
        assert stats_a.transmit_energy_mj == pytest.approx(
            stats_b.transmit_energy_mj, rel=1e-12
        )
        assert stats_a.latency_sum_s == pytest.approx(
            stats_b.latency_sum_s, rel=1e-12
        )
        assert sys_a.hierarchy.bus.messages_lost == (
            sys_b.hierarchy.bus.messages_lost
        )
        bus_a, bus_b = sys_a.hierarchy.bus, sys_b.hierarchy.bus
        for address in bus_a.addresses:
            ep_a, ep_b = bus_a.endpoint(address), bus_b.endpoint(address)
            assert ep_a.stats.messages == ep_b.stats.messages
            assert ep_a.stats.bytes == ep_b.stats.bytes
            assert ep_a.outbound_lost == ep_b.outbound_lost
            assert ep_a.inbound_lost == ep_b.inbound_lost

        # Node-side energy (sensing posts) must also agree bit-exactly.
        assert sys_a.hierarchy.total_node_energy_mj() == (
            sys_b.hierarchy.total_node_energy_mj()
        )


def _async_result(seed=7):
    """One two-zone async run: different periods/offsets, real latency,
    channel loss — returns (engine, result)."""
    scenario = smart_building_scenario(
        width=16, height=8, zones_x=2, zones_y=1, nodes_per_nc=10,
        zone_periods={0: 20.0, 1: 30.0},
        zone_offsets={0: 5.0, 1: 12.0},
        latency_mode="link",
        link_latency_s=0.3,
        rng=seed,
    )
    bus = scenario.system.hierarchy.bus
    bus.loss_rate = 0.05
    bus._loss_rng.seed(99)  # the hierarchy builds its bus unseeded
    engine = SimulationEngine(
        scenario.system,
        round_mode="async",
        zone_schedules=scenario.schedules,
        latency_mode=scenario.latency_mode,
        report_deadline_s=8.0,
        rng=3,
    )
    result = engine.run(120.0)
    return engine, result


class TestAsyncDeterminism:
    def test_same_seed_identical_simulation_result(self):
        _, first = _async_result(seed=7)
        _, second = _async_result(seed=7)
        assert len(first.rounds) == len(second.rounds)
        for ra, rb in zip(first.rounds, second.rounds):
            assert ra == rb or (
                # round_wall_s is real wall time and may differ; all
                # simulated quantities must match exactly.
                ra.timestamp == rb.timestamp
                and ra.zone_id == rb.zone_id
                and ra.measurements == rb.measurements
                and ra.relative_error == rb.relative_error
                and ra.messages_cum == rb.messages_cum
                and ra.node_energy_cum_mj == rb.node_energy_cum_mj
                and ra.radio_energy_cum_mj == rb.radio_energy_cum_mj
                and ra.round_latency_s == rb.round_latency_s
            )


class TestAsyncEngine:
    def test_zones_run_on_own_periods_with_latency(self):
        engine, result = _async_result(seed=7)
        by_zone = result.rounds_by_zone()
        assert set(by_zone) == {0, 1}
        # Zone 0: offset 5, period 20 -> starts 5, 25, 45, ...
        starts_0 = [r.timestamp for r in by_zone[0]]
        assert starts_0[:3] == [5.0, 25.0, 45.0]
        # Zone 1: offset 12, period 30 -> starts 12, 42, 72, ...
        starts_1 = [r.timestamp for r in by_zone[1]]
        assert starts_1[:3] == [12.0, 42.0, 72.0]
        # Real link latency: every round takes simulated time and every
        # record carries it.
        for record in result.rounds:
            assert record.round_latency_s > 0.0
            assert record.zone_id in (0, 1)
        assert result.mean_round_latency_s() > 0.0

    def test_per_zone_errors_are_reasonable(self):
        _, result = _async_result(seed=7)
        # Lossy channel and partial rounds allowed; the estimates must
        # still track the truth per zone.
        assert result.mean_error() < 0.5

    def test_lockstep_mode_unchanged_by_default(self):
        scenario = smart_building_scenario(
            width=16, height=8, zones_x=2, zones_y=1, nodes_per_nc=10,
            rng=5,
        )
        engine = SimulationEngine(scenario.system, rng=3)
        assert engine.round_mode == "lockstep"
        result = engine.run(60.0)
        # Lockstep records keep the defaults for the async-only fields.
        assert all(r.zone_id == -1 for r in result.rounds)
        assert all(r.round_latency_s == 0.0 for r in result.rounds)

    def test_async_engine_rejects_unknown_mode(self):
        scenario = smart_building_scenario(
            width=16, height=8, zones_x=2, zones_y=1, nodes_per_nc=10,
            rng=5,
        )
        with pytest.raises(ValueError):
            SimulationEngine(scenario.system, round_mode="warp")


class TestScenarioKnobs:
    def test_schedules_built_from_period_and_offset_maps(self):
        scenario = smart_building_scenario(
            width=16, height=8, zones_x=2, zones_y=1, nodes_per_nc=10,
            zone_periods={0: 20.0}, zone_offsets={1: 7.0}, rng=5,
        )
        assert scenario.schedules[0] == ZoneSchedule(period_s=20.0)
        assert scenario.schedules[1] == ZoneSchedule(
            period_s=30.0, offset_s=7.0
        )

    def test_no_knobs_means_no_schedules(self):
        scenario = smart_building_scenario(
            width=16, height=8, zones_x=2, zones_y=1, nodes_per_nc=10,
            rng=5,
        )
        assert scenario.schedules is None
        assert scenario.latency_mode == "zero"

    def test_link_latency_override_applies_everywhere(self):
        scenario = smart_building_scenario(
            width=16, height=8, zones_x=2, zones_y=1, nodes_per_nc=10,
            link_latency_s=0.25, rng=5,
        )
        bus = scenario.system.hierarchy.bus
        assert bus.default_link.base_latency_s == 0.25
        for address in bus.addresses:
            assert bus.endpoint(address).link.base_latency_s == 0.25
