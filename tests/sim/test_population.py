"""Struct-of-arrays population: vector engine pinned to the object path.

The array core is only allowed to exist because it is *provably* the
same simulation: ``engine="vector"`` must match ``engine="object"``
(real NodeState objects stepped through the scalar mobility models)
bit-for-bit — positions, velocities, modes, zone ids and every sensed
value — the same oracle pattern ``engine="reference"`` provides for the
fast solvers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.models import MODE_NAMES
from repro.sensors.faults import CalibrationBias, SensorFaultInjector, StuckAt
from repro.sim.population import NodePopulation, PopulationConfig


def _pair(seed: int, mobility: str, **overrides):
    base = dict(
        n_nodes=120,
        width=32,
        height=16,
        zones_x=2,
        zones_y=2,
        mobility=mobility,
        seed=seed,
    )
    base.update(overrides)
    vector = NodePopulation(PopulationConfig(engine="vector", **base))
    objects = NodePopulation(PopulationConfig(engine="object", **base))
    return vector, objects


def _assert_identical(vector: NodePopulation, objects: NodePopulation) -> None:
    for attr in ("x", "y", "speed", "heading", "mode", "zone_id"):
        a, b = getattr(vector, attr), getattr(objects, attr)
        assert np.array_equal(a, b), f"{attr} diverged"


class TestEngineBitIdentity:
    @pytest.mark.parametrize(
        "mobility", ["static", "random_waypoint", "gauss_markov"]
    )
    def test_construction_identical(self, mobility):
        vector, objects = _pair(11, mobility)
        _assert_identical(vector, objects)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_gauss_markov_ticks_identical(self, seed):
        vector, objects = _pair(seed, "gauss_markov")
        for _ in range(6):
            vector.tick()
            objects.tick()
            _assert_identical(vector, objects)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_waypoint_ticks_identical(self, seed):
        # Long-enough ticks that legs complete and pauses elapse, so
        # every branch (cruise, arrive+redraw, pause, resume) is hit.
        vector, objects = _pair(
            seed,
            "random_waypoint",
            pause_range=(0.0, 2.0),
            dt=2.5,
        )
        for _ in range(10):
            vector.tick()
            objects.tick()
            _assert_identical(vector, objects)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_sense_rounds_identical(self, seed):
        vector, objects = _pair(seed, "gauss_markov")
        rng = np.random.default_rng(123)
        truth = rng.normal(size=(32, 16))
        for round_index in range(4):
            vector.tick()
            objects.tick()
            fv = vector.sense_round(
                truth, round_index=round_index, reports_per_zone=16
            )
            fo = objects.sense_round(
                truth, round_index=round_index, reports_per_zone=16
            )
            assert len(fv) == len(fo)
            for a, b in zip(fv, fo):
                assert a.zone_id == b.zone_id
                assert np.array_equal(a.node_ids, b.node_ids)
                assert np.array_equal(a.values, b.values)
                assert np.array_equal(a.noise_stds, b.noise_stds)


class TestPopulationBehaviour:
    def test_zone_partition_covers_all_nodes(self):
        pop = NodePopulation(
            PopulationConfig(
                n_nodes=500, width=32, height=32, zones_x=4, zones_y=2, seed=3
            )
        )
        assert pop.zone_id.min() >= 0
        assert pop.zone_id.max() < 8
        total = sum(pop.zone_members(z).size for z in range(8))
        assert total == 500

    def test_cells_in_zone_bounds(self):
        pop = NodePopulation(
            PopulationConfig(
                n_nodes=300, width=24, height=24, zones_x=3, zones_y=3, seed=5
            )
        )
        for _ in range(3):
            pop.tick()
        idx = np.arange(300)
        cells = pop.cells_in_zone(idx)
        assert cells.min() >= 0
        assert cells.max() < 8 * 8

    def test_rwp_nodes_keep_moving_after_pauses(self):
        # Regression for the pause-freeze bug: leg speed must be
        # restored when a pause expires, so nodes re-plan forever.
        pop = NodePopulation(
            PopulationConfig(
                n_nodes=50,
                width=16,
                height=16,
                mobility="random_waypoint",
                pause_range=(0.5, 1.0),
                dt=4.0,
                seed=9,
            )
        )
        before_x, before_y = pop.x.copy(), pop.y.copy()
        for _ in range(30):
            pop.tick()
        moved = np.abs(pop.x - before_x) + np.abs(pop.y - before_y)
        assert (moved > 0).all(), "some nodes froze after their first pause"

    def test_mode_names_map(self):
        pop = NodePopulation(
            PopulationConfig(n_nodes=20, width=8, height=8, seed=1)
        )
        names = pop.mode_names()
        assert len(names) == 20
        assert set(names) <= set(MODE_NAMES)

    def test_sensor_faults_ride_batched_path(self):
        vector, objects = _pair(21, "static")
        injector = SensorFaultInjector()
        # Afflict a handful of nodes; ids follow the population naming.
        injector.attach(vector.node_name(0), StuckAt(99.0))
        injector.attach(vector.node_name(1), CalibrationBias(5.0))
        truth = np.zeros((32, 16))
        frames_v = vector.sense_round(
            truth,
            round_index=0,
            reports_per_zone=200,
            fault_injector=injector,
        )
        injector2 = SensorFaultInjector()
        injector2.attach(objects.node_name(0), StuckAt(99.0))
        injector2.attach(objects.node_name(1), CalibrationBias(5.0))
        frames_o = objects.sense_round(
            truth,
            round_index=0,
            reports_per_zone=200,
            fault_injector=injector2,
        )
        all_ids = np.concatenate([f.node_ids for f in frames_v])
        all_vals = np.concatenate([f.values for f in frames_v])
        stuck = all_vals[all_ids == 0]
        assert stuck.size == 1 and float(stuck[0]) == 99.0
        assert injector.corruptions_by_reason["stuck-at"] == 1
        for a, b in zip(frames_v, frames_o):
            assert np.array_equal(a.values, b.values)

    def test_trust_update_and_quarantine_hysteresis(self):
        pop = NodePopulation(
            PopulationConfig(n_nodes=10, width=8, height=8, seed=2)
        )
        bad = np.array([0, 1])
        for _ in range(8):
            pop.update_trust(bad, np.array([True, True]))
        assert pop.quarantined[[0, 1]].all()
        assert not pop.quarantined[2:].any()
        # Quarantined nodes drop out of zone membership.
        members = np.concatenate(
            [pop.zone_members(z) for z in range(pop.config.n_zones)]
        )
        assert 0 not in members and 1 not in members
        # Sustained good behaviour releases them.
        for _ in range(12):
            pop.update_trust(bad, np.array([False, False]))
        assert not pop.quarantined[[0, 1]].any()

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_nodes=10, width=10, height=10, zones_x=3)
        with pytest.raises(ValueError):
            PopulationConfig(n_nodes=10, width=8, height=8, mobility="nope")
        with pytest.raises(ValueError):
            PopulationConfig(n_nodes=10, width=8, height=8, engine="gpu")
        with pytest.raises(ValueError):
            PopulationConfig(n_nodes=0, width=8, height=8)
