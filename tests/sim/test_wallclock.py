"""WallClock: SimClock's scheduling interface on real asyncio time.

The contract (see ``repro/sim/wallclock.py``): identical
``schedule``/``schedule_in``/``schedule_periodic``/``cancel`` semantics,
with two sanctioned divergences — past schedules clamp to "fire now"
instead of raising, and there is no ``run_until`` (real time cannot be
fast-forwarded; ``run_for`` drives the loop for a wall duration).

The closing test is the acceptance pin of PR 8's realtime story:
:class:`repro.middleware.rounds.ZoneRoundDriver` — written against
SimClock — completes sensing rounds unmodified on a WallClock.
"""

import numpy as np
import pytest

from repro.fields.generators import smooth_field
from repro.middleware.localcloud import LocalCloud
from repro.middleware.rounds import ZoneRoundDriver
from repro.network.bus import MessageBus
from repro.sensors.base import Environment
from repro.sim.wallclock import WallClock, WallPeriodicHandle


@pytest.fixture
def clock():
    wall = WallClock()
    yield wall
    wall.close()


class TestScheduling:
    def test_now_starts_near_zero_and_advances(self, clock):
        assert 0.0 <= clock.now < 0.5
        clock.run_for(0.02)
        assert clock.now >= 0.02

    def test_schedule_in_fires_with_clock_now(self, clock):
        fired = []
        clock.schedule_in(0.01, fired.append)
        clock.run_for(0.1)
        assert len(fired) == 1
        assert fired[0] >= 0.01
        assert clock.events_run == 1

    def test_past_schedule_clamps_to_immediate(self, clock):
        # Divergence from SimClock (which raises): on a wall clock a
        # past target is a lost race, and the callback is simply due.
        fired = []
        clock.schedule(clock.now - 5.0, fired.append)
        clock.run_for(0.05)
        assert len(fired) == 1

    def test_negative_delay_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.schedule_in(-0.1, lambda now: None)

    def test_cancel_one_shot(self, clock):
        fired = []
        event = clock.schedule_in(0.01, fired.append)
        clock.cancel(event)
        clock.run_for(0.05)
        assert fired == []
        assert clock.events_run == 0

    def test_no_run_until(self, clock):
        # Real time cannot be fast-forwarded; the SimClock-only API
        # must not leak onto the wall clock.
        assert not hasattr(clock, "run_until")


class TestPeriodic:
    def test_fires_repeatedly_then_cancel_stops(self, clock):
        fired = []
        handle = clock.schedule_periodic(0.02, fired.append)
        assert isinstance(handle, WallPeriodicHandle)
        clock.run_for(0.11)
        count = len(fired)
        assert count >= 3
        assert fired == sorted(fired)
        clock.cancel(handle)
        clock.run_for(0.05)
        assert len(fired) == count

    def test_until_bounds_the_chain(self, clock):
        fired = []
        clock.schedule_periodic(0.02, fired.append, until=0.05)
        clock.run_for(0.12)
        assert 1 <= len(fired) <= 3
        assert all(t <= 0.08 for t in fired)

    def test_invalid_period_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.schedule_periodic(0.0, lambda now: None)


class TestZoneRoundDriverOnWallClock:
    """The realtime acceptance pin: the driver runs unmodified."""

    def test_rounds_complete_in_real_time(self, clock):
        truth = smooth_field(
            8, 8, cutoff=0.25, amplitude=4.0, offset=20.0, rng=11
        )
        env = Environment(fields={"temperature": truth})
        bus = MessageBus()
        bus.attach_clock(clock, "link")
        lc = LocalCloud(
            "wall-lc", bus, 8, 8, n_nanoclouds=1, nodes_per_nc=16, rng=5
        )
        outcomes = []
        driver = ZoneRoundDriver(
            0, lc, env, clock, period_s=0.15,
            on_complete=outcomes.append,
        )
        driver.start()
        clock.run_for(0.6)
        driver.stop()

        assert driver.rounds_completed >= 2
        completed = [o for o in outcomes if o.result is not None]
        assert completed
        for outcome in completed:
            assert outcome.latency_s > 0.0  # real link latency elapsed
            estimate = outcome.result.nc_estimates[0]
            assert estimate.reports_ok > 0
            assert np.isfinite(outcome.result.field.grid).all()
