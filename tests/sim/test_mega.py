"""City-scale rounds: sharded == serial, stale-serve, overload, trust.

The load-bearing pin is :class:`TestSerialShardedIdentity`: the
multiprocess fan-out must produce byte-for-byte the same estimates and
trust state as the in-process solve, because collect (all RNG) stays
serial, the solve kernel is pure, and the workers attach the exact
basis bytes the parent exported.  The remaining tests exercise the
overload (PR 6) and Byzantine (PR 4) layers on top of the array core.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import contracts
from repro.core.shardmem import exported_segment_names
from repro.sensors.faults import SensorFaultInjector, StuckAt
from repro.sim.mega import MegaConfig, MegaSimulation
from repro.sim.population import PopulationConfig


def _pop(seed: int, **overrides) -> PopulationConfig:
    base = dict(
        n_nodes=200,
        width=16,
        height=16,
        zones_x=2,
        zones_y=2,
        mobility="gauss_markov",
        seed=seed,
    )
    base.update(overrides)
    return PopulationConfig(**base)


class TestSerialShardedIdentity:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=5, deadline=None)
    def test_sharded_rounds_bit_identical(self, seed):
        pop = _pop(seed)
        serial = MegaSimulation(
            MegaConfig(population=pop, reports_per_zone=48, sparsity=8)
        )
        with MegaSimulation(
            MegaConfig(
                population=pop,
                reports_per_zone=48,
                sparsity=8,
                sharded=True,
                workers=2,
            )
        ) as sharded:
            for _ in range(3):
                a = serial.run_round()
                b = sharded.run_round()
                assert np.array_equal(serial.estimate, sharded.estimate)
                assert np.array_equal(
                    serial.population.trust, sharded.population.trust
                )
                assert np.array_equal(
                    serial.population.quarantined,
                    sharded.population.quarantined,
                )
                assert a == b

    def test_worker_count_does_not_change_results(self):
        pop = _pop(77)
        estimates = []
        for workers in (1, 3):
            with MegaSimulation(
                MegaConfig(
                    population=pop,
                    reports_per_zone=48,
                    sparsity=8,
                    sharded=True,
                    workers=workers,
                )
            ) as sim:
                for _ in range(2):
                    sim.run_round()
                estimates.append(sim.estimate.copy())
        assert np.array_equal(estimates[0], estimates[1])


class TestRoundMechanics:
    def test_rounds_recover_sparse_truth(self):
        sim = MegaSimulation(
            MegaConfig(
                population=_pop(5), reports_per_zone=64, sparsity=8
            )
        )
        record = sim.run_round()
        assert record.zones_solved == 4
        assert record.zones_stale == 0
        expected = sum(
            min(64, sim.population.zone_members(z).size) for z in range(4)
        )
        assert record.reports_delivered == expected
        # 64 noisy reports per 64-cell zone and K=4 truth: the
        # compressive solve should land well under the noise floor.
        assert record.rmse < 1.0

    def test_lost_zone_is_served_stale(self):
        sim = MegaSimulation(
            MegaConfig(
                population=_pop(8), reports_per_zone=48, sparsity=8
            )
        )
        first = sim.run_round()
        assert first.zones_solved == 4
        snapshot = sim.estimate.copy()
        sim.bus.loss_rate = 1.0  # kill the uplink for one round
        second = sim.run_round()
        assert second.zones_solved == 0
        assert second.zones_stale == 4
        assert np.array_equal(sim.estimate, snapshot)
        sim.bus.loss_rate = 0.0
        third = sim.run_round()
        assert third.zones_solved == 4 and third.zones_stale == 0

    def test_backpressure_sheds_zone_frames(self):
        sim = MegaSimulation(
            MegaConfig(
                population=_pop(9),
                reports_per_zone=32,
                sparsity=8,
                inbox_capacity=1,
                drop_policy="drop-newest",
            )
        )
        record = sim.run_round()
        assert record.zones_solved == 1
        assert sim._cloud.dropped_backpressure == 3

    def test_stuck_sensors_get_rejected_then_quarantined(self):
        injector = SensorFaultInjector()
        bad = list(range(12))
        for index in bad:
            injector.attach(f"meganode-{index}", StuckAt(1e6))
        sim = MegaSimulation(
            MegaConfig(
                population=_pop(13),
                reports_per_zone=200,  # every member reports every round
                sparsity=8,
            ),
            sensor_fault_injector=injector,
        )
        records = [sim.run_round() for _ in range(6)]
        assert records[0].reports_rejected >= len(bad)
        assert records[-1].quarantined_nodes == len(bad)
        assert sim.population.quarantined[bad].all()
        assert not sim.population.quarantined[len(bad) :].any()
        # Quarantined reporters stop being sampled, so late rounds solve
        # from honest nodes only and the field estimate stays sane.
        assert records[-1].rmse < 1.0

    def test_trust_updates_can_be_disabled(self):
        injector = SensorFaultInjector()
        injector.attach("meganode-0", StuckAt(1e6))
        sim = MegaSimulation(
            MegaConfig(
                population=_pop(13),
                reports_per_zone=200,
                sparsity=8,
                trust_updates=False,
            ),
            sensor_fault_injector=injector,
        )
        for _ in range(4):
            record = sim.run_round()
        assert record.quarantined_nodes == 0
        assert (sim.population.trust == 1.0).all()


class TestShardedSanitizer:
    def test_fanout_passes_checksum_verification(self):
        was_enabled = contracts.enabled()
        contracts.enable()
        try:
            with MegaSimulation(
                MegaConfig(
                    population=_pop(3),
                    reports_per_zone=32,
                    sparsity=8,
                    sharded=True,
                    workers=2,
                )
            ) as sim:
                record = sim.run_round()
                assert record.zones_solved == 4
        finally:
            contracts.enable(was_enabled)

    def test_shutdown_unlinks_basis_segment(self):
        sim = MegaSimulation(
            MegaConfig(
                population=_pop(4),
                reports_per_zone=32,
                sparsity=8,
                sharded=True,
                workers=2,
            )
        )
        spec = sim._basis_spec
        assert spec is not None
        assert spec.name in exported_segment_names()
        sim.run_round()
        sim.shutdown()
        assert spec.name not in exported_segment_names()
        sim.shutdown()  # idempotent

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MegaConfig(population=_pop(1), reports_per_zone=0)
        with pytest.raises(ValueError):
            MegaConfig(population=_pop(1), sparsity=0)
        with pytest.raises(ValueError):
            MegaConfig(population=_pop(1), sharded=True, workers=0)
