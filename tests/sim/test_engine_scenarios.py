"""Tests for the simulation engine and scenario builders."""

import numpy as np
import pytest

from repro.fields.temporal import ar1_evolution
from repro.mobility.models import RandomWaypoint
from repro.sim.engine import SimulationEngine
from repro.sim.scenario import (
    fire_scenario,
    smart_building_scenario,
    traffic_scenario,
)


class TestScenarios:
    def test_fire_scenario_shape(self):
        sc = fire_scenario(nodes_per_nc=24, rng=0)
        assert sc.system.sensor_name == "fire_intensity"
        assert sc.criticality is not None
        # Criticality peaks at the front zone column.
        front_col = int(0.4 * 4)
        assert np.argmax(sc.criticality[0]) == front_col

    def test_fire_round_works(self):
        sc = fire_scenario(nodes_per_nc=24, rng=1)
        estimate = sc.system.sense_field(adaptive=True, total_budget=160)
        assert sc.system.estimate_error(estimate) < 0.6
        assert estimate.total_measurements <= 160

    def test_smart_building_scenario(self):
        sc = smart_building_scenario(nodes_per_nc=24, rng=2)
        assert "humidity" in sc.env.fields
        assert sc.env.is_indoor(5, 5)  # fully indoor facility
        sc.system.sense_field()
        estimate = sc.system.sense_field()
        assert sc.system.estimate_error(estimate) < 0.15

    def test_traffic_scenario_bounded_field(self):
        sc = traffic_scenario(nodes_per_nc=24, rng=3)
        congestion = sc.truth
        assert congestion.grid.min() >= 0.0
        assert congestion.grid.max() <= 1.0


class TestEngine:
    def _engine(self, **kwargs):
        sc = smart_building_scenario(
            width=12, height=12, zones_x=2, zones_y=2, nodes_per_nc=20,
            rng=4,
        )
        defaults = dict(
            sensing_period_s=30.0,
            context_period_s=60.0,
            rng=5,
        )
        defaults.update(kwargs)
        return sc, SimulationEngine(sc.system, **defaults)

    def test_records_rounds(self):
        sc, engine = self._engine()
        result = engine.run(120.0)
        assert len(result.rounds) == 4
        assert result.duration_s == 120.0
        assert np.isfinite(result.mean_error())

    def test_context_accuracy_recorded(self):
        sc, engine = self._engine()
        result = engine.run(120.0)
        assert len(result.context_accuracy) == 2
        assert all(a > 0.8 for a in result.context_accuracy)

    def test_energy_monotone_across_rounds(self):
        sc, engine = self._engine()
        result = engine.run(150.0)
        energies = [
            r.node_energy_cum_mj + r.radio_energy_cum_mj
            for r in result.rounds
        ]
        assert all(b >= a for a, b in zip(energies, energies[1:]))
        assert result.final_energy_mj() == energies[-1]

    def test_mobility_moves_nodes(self):
        sc, engine = self._engine(
            mobility=RandomWaypoint(12, 12, pause_range=(0.0, 0.0), rng=6),
            mobility_period_s=1.0,
        )
        before = {
            node.node_id: node.state.position()
            for lc in sc.system.hierarchy.localclouds.values()
            for nc in lc.nanoclouds
            for node in nc.nodes.values()
        }
        engine.run(60.0)
        moved = 0
        for lc in sc.system.hierarchy.localclouds.values():
            for nc in lc.nanoclouds:
                for node in nc.nodes.values():
                    if node.state.position() != before[node.node_id]:
                        moved += 1
        assert moved > 0

    def test_field_evolution_changes_truth(self):
        sc, engine = self._engine(
            field_step=ar1_evolution(rho=0.9, innovation_std=0.5),
            field_period_s=10.0,
        )
        before = sc.truth.grid.copy()
        engine.run(60.0)
        after = sc.system.env.fields[sc.system.sensor_name].grid
        assert not np.allclose(before, after)

    def test_validation(self):
        sc, engine = self._engine()
        with pytest.raises(ValueError):
            engine.run(0.0)
        with pytest.raises(ValueError):
            SimulationEngine(sc.system, sensing_period_s=0.0)


class TestEarthquakeScenario:
    def test_flag_field_reconstruction_quality(self):
        from repro.sim.scenario import earthquake_scenario

        sc = earthquake_scenario(rng=31)
        sc.system.sense_field()
        estimate = sc.system.sense_field()
        danger = (estimate.field.grid > 0.5).astype(float)
        accuracy = float(np.mean(danger == sc.truth.grid))
        assert accuracy > 0.85
        assert estimate.total_measurements < sc.truth.n

    def test_criticality_follows_building_density(self):
        from repro.sim.scenario import earthquake_scenario

        sc = earthquake_scenario(rng=31)
        zone_grid = sc.system.hierarchy.zone_grid
        densities = []
        for zone in zone_grid:
            block = sc.truth.grid[
                zone.y0 : zone.y0 + zone.height,
                zone.x0 : zone.x0 + zone.width,
            ]
            densities.append(float(block.mean()))
        crits = [z.criticality for z in zone_grid]
        # Criticality ordering matches occupancy ordering.
        assert np.argmax(crits) == np.argmax(densities)
        assert np.argmin(crits) == np.argmin(densities)
