"""Tests for the discrete-event clock."""

import pytest

from repro.sim.clock import SimClock


class TestScheduling:
    def test_events_run_in_time_order(self):
        clock = SimClock()
        order = []
        clock.schedule(5.0, lambda t: order.append(("b", t)))
        clock.schedule(1.0, lambda t: order.append(("a", t)))
        clock.run_until(10.0)
        assert order == [("a", 1.0), ("b", 5.0)]

    def test_ties_break_by_insertion(self):
        clock = SimClock()
        order = []
        clock.schedule(1.0, lambda t: order.append("first"))
        clock.schedule(1.0, lambda t: order.append("second"))
        clock.run_until(1.0)
        assert order == ["first", "second"]

    def test_schedule_in_past_rejected(self):
        clock = SimClock()
        clock.schedule(5.0, lambda t: None)
        clock.run_until(5.0)
        with pytest.raises(ValueError):
            clock.schedule(4.0, lambda t: None)

    def test_schedule_in_relative(self):
        clock = SimClock()
        hits = []
        clock.schedule(2.0, lambda t: clock.schedule_in(3.0, hits.append))
        clock.run_until(10.0)
        assert hits == [5.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimClock().schedule_in(-1.0, lambda t: None)

    def test_cancel(self):
        clock = SimClock()
        hits = []
        event = clock.schedule(1.0, hits.append)
        clock.cancel(event)
        clock.run_until(2.0)
        assert hits == []
        assert clock.pending == 0


class TestPeriodic:
    def test_fires_on_period(self):
        clock = SimClock()
        hits = []
        clock.schedule_periodic(2.0, hits.append, until=10.0)
        clock.run_until(10.0)
        assert hits == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_custom_start(self):
        clock = SimClock()
        hits = []
        clock.schedule_periodic(5.0, hits.append, start=1.0, until=12.0)
        clock.run_until(12.0)
        assert hits == [1.0, 6.0, 11.0]

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            SimClock().schedule_periodic(0.0, lambda t: None)


class TestCancellation:
    def test_cancel_pending_periodic_before_first_fire(self):
        clock = SimClock()
        hits = []
        handle = clock.schedule_periodic(2.0, hits.append)
        clock.cancel(handle)
        clock.run_until(10.0)
        assert hits == []
        assert clock.pending == 0

    def test_cancel_periodic_mid_chain(self):
        clock = SimClock()
        hits = []
        handle = clock.schedule_periodic(2.0, hits.append)
        clock.schedule(5.0, lambda t: clock.cancel(handle))
        clock.run_until(20.0)
        assert hits == [2.0, 4.0]
        assert clock.pending == 0

    def test_cancel_from_inside_own_callback(self):
        clock = SimClock()
        hits = []
        handle_box = []

        def fire(now):
            hits.append(now)
            if len(hits) == 3:
                clock.cancel(handle_box[0])

        handle_box.append(clock.schedule_periodic(1.0, fire))
        clock.run_until(10.0)
        assert hits == [1.0, 2.0, 3.0]
        assert clock.pending == 0

    def test_cancelled_event_not_counted_as_run(self):
        clock = SimClock()
        event = clock.schedule(1.0, lambda t: None)
        clock.schedule(2.0, lambda t: None)
        clock.cancel(event)
        clock.run_until(5.0)
        assert clock.events_run == 1


class TestPeriodicComposition:
    def test_periodic_callback_scheduling_one_shots(self):
        # A periodic round that schedules its own follow-up events (the
        # driver pattern: round fires, timeouts/deadlines ride along).
        clock = SimClock()
        order = []

        def round_fire(now):
            order.append(("round", now))
            clock.schedule_in(0.5, lambda t: order.append(("deadline", t)))

        clock.schedule_periodic(2.0, round_fire, until=6.0)
        clock.run_until(7.0)
        assert order == [
            ("round", 2.0), ("deadline", 2.5),
            ("round", 4.0), ("deadline", 4.5),
            ("round", 6.0), ("deadline", 6.5),
        ]

    def test_interleaved_schedules_tie_break_deterministically(self):
        # Two identical runs with interleaved schedule/schedule_in calls
        # landing on the same instants must replay identically.
        def run():
            clock = SimClock()
            order = []
            clock.schedule_periodic(1.0, lambda t: order.append(("p1", t)))
            clock.schedule_periodic(1.0, lambda t: order.append(("p2", t)))
            clock.schedule(3.0, lambda t: order.append(("one", t)))
            clock.schedule(
                2.0, lambda t: clock.schedule_in(1.0, lambda u: order.append(("nested", u)))
            )
            clock.run_until(4.0)
            return order

        first, second = run(), run()
        assert first == second
        # Same-instant ordering follows insertion order: p1 before p2,
        # and the t=3 events in the order they entered the queue.
        assert first.index(("p1", 3.0)) < first.index(("p2", 3.0))
        assert first.index(("one", 3.0)) < first.index(("nested", 3.0))


class TestRunUntil:
    def test_clock_lands_on_end_time(self):
        clock = SimClock()
        clock.schedule(1.0, lambda t: None)
        clock.run_until(7.5)
        assert clock.now == 7.5

    def test_future_events_stay_queued(self):
        clock = SimClock()
        clock.schedule(10.0, lambda t: None)
        executed = clock.run_until(5.0)
        assert executed == 0
        assert clock.pending == 1

    def test_cannot_run_backwards(self):
        clock = SimClock()
        clock.run_until(5.0)
        with pytest.raises(ValueError):
            clock.run_until(4.0)

    def test_step_returns_false_when_empty(self):
        assert SimClock().step() is False

    def test_events_run_counter(self):
        clock = SimClock()
        for t in (1.0, 2.0, 3.0):
            clock.schedule(t, lambda _: None)
        clock.run_until(10.0)
        assert clock.events_run == 3
