"""Tests for the discrete-event clock."""

import pytest

from repro.sim.clock import SimClock


class TestScheduling:
    def test_events_run_in_time_order(self):
        clock = SimClock()
        order = []
        clock.schedule(5.0, lambda t: order.append(("b", t)))
        clock.schedule(1.0, lambda t: order.append(("a", t)))
        clock.run_until(10.0)
        assert order == [("a", 1.0), ("b", 5.0)]

    def test_ties_break_by_insertion(self):
        clock = SimClock()
        order = []
        clock.schedule(1.0, lambda t: order.append("first"))
        clock.schedule(1.0, lambda t: order.append("second"))
        clock.run_until(1.0)
        assert order == ["first", "second"]

    def test_schedule_in_past_rejected(self):
        clock = SimClock()
        clock.schedule(5.0, lambda t: None)
        clock.run_until(5.0)
        with pytest.raises(ValueError):
            clock.schedule(4.0, lambda t: None)

    def test_schedule_in_relative(self):
        clock = SimClock()
        hits = []
        clock.schedule(2.0, lambda t: clock.schedule_in(3.0, hits.append))
        clock.run_until(10.0)
        assert hits == [5.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimClock().schedule_in(-1.0, lambda t: None)

    def test_cancel(self):
        clock = SimClock()
        hits = []
        event = clock.schedule(1.0, hits.append)
        clock.cancel(event)
        clock.run_until(2.0)
        assert hits == []
        assert clock.pending == 0


class TestPeriodic:
    def test_fires_on_period(self):
        clock = SimClock()
        hits = []
        clock.schedule_periodic(2.0, hits.append, until=10.0)
        clock.run_until(10.0)
        assert hits == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_custom_start(self):
        clock = SimClock()
        hits = []
        clock.schedule_periodic(5.0, hits.append, start=1.0, until=12.0)
        clock.run_until(12.0)
        assert hits == [1.0, 6.0, 11.0]

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            SimClock().schedule_periodic(0.0, lambda t: None)


class TestRunUntil:
    def test_clock_lands_on_end_time(self):
        clock = SimClock()
        clock.schedule(1.0, lambda t: None)
        clock.run_until(7.5)
        assert clock.now == 7.5

    def test_future_events_stay_queued(self):
        clock = SimClock()
        clock.schedule(10.0, lambda t: None)
        executed = clock.run_until(5.0)
        assert executed == 0
        assert clock.pending == 1

    def test_cannot_run_backwards(self):
        clock = SimClock()
        clock.run_until(5.0)
        with pytest.raises(ValueError):
            clock.run_until(4.0)

    def test_step_returns_false_when_empty(self):
        assert SimClock().step() is False

    def test_events_run_counter(self):
        clock = SimClock()
        for t in (1.0, 2.0, 3.0):
            clock.schedule(t, lambda _: None)
        clock.run_until(10.0)
        assert clock.events_run == 3
