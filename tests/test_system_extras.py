"""Final system-level extras: on-disk persistence, exact space-time
recovery, and the engine driving an auto-linked deployment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import dct_basis
from repro.core.spatiotemporal import SpaceTimeSample, reconstruct_spacetime
from repro.middleware.storage import DataStore
from repro.sensors.base import SensorReading


class TestOnDiskStore:
    def test_sqlite_file_persists_across_connections(self, tmp_path):
        path = str(tmp_path / "sensedroid.db")
        with DataStore(path) as store:
            store.log_reading(
                SensorReading(
                    sensor="temperature", timestamp=1.0, value=21.5,
                    node_id="n1",
                )
            )
        # A fresh connection sees the logged data.
        with DataStore(path) as store:
            got = store.readings(sensor="temperature")
            assert len(got) == 1
            assert got[0].value == 21.5


class TestSpacetimeExactness:
    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=15, deadline=None)
    def test_exactly_sparse_block_recovered_exactly(self, seed):
        """A block that is exactly K-sparse in the Kronecker basis is
        recovered to machine precision once samples are plentiful."""
        rng = np.random.default_rng(seed)
        t, n, k = 4, 16, 3
        phi_t, phi_s = dct_basis(t), dct_basis(n)
        alpha = np.zeros((t, n))
        flat = rng.choice(t * n, size=k, replace=False)
        alpha[np.unravel_index(flat, (t, n))] = rng.uniform(1, 3, k)
        block = phi_t @ alpha @ phi_s.T
        # Sample 60% of space-time, scattered.
        pairs = [(ts, cell) for ts in range(t) for cell in range(n)]
        picked = rng.choice(len(pairs), size=int(0.6 * t * n), replace=False)
        samples = [
            SpaceTimeSample(*pairs[i], block[pairs[i]]) for i in picked
        ]
        result = reconstruct_spacetime(
            samples, t, n, phi_space=phi_s, sparsity=k, center=False
        )
        assert np.allclose(result.block, block, atol=1e-7)


class TestEngineWithAutoLinks:
    def test_simulated_run_over_mixed_radios(self):
        from collections import Counter

        from repro.fields import urban_temperature_field
        from repro.middleware import BrokerConfig, Hierarchy, HierarchyConfig
        from repro.sensors import Environment

        truth = urban_temperature_field(16, 16, rng=1)
        env = Environment(fields={"temperature": truth})
        hierarchy = Hierarchy(
            16, 16,
            config=HierarchyConfig(zones_x=2, zones_y=2,
                                   nodes_per_nanocloud=32),
            broker_config=BrokerConfig(seed=2),
            auto_link=True,
            cell_size_m=25.0,
            rng=2,
        )
        estimate = hierarchy.run_global_round(env)
        assert estimate.total_measurements > 0
        links = Counter(
            hierarchy.bus.endpoint(a).link.name
            for a in hierarchy.bus.addresses
            if "/node" in a
        )
        assert len(links) >= 2  # genuinely mixed radios in one deployment
