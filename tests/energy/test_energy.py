"""Tests for the energy model and accounting."""

import pytest

from repro.energy.accounting import (
    EnergyLedger,
    FleetEnergyReport,
    savings_percent,
)
from repro.energy.model import DEFAULT_CPU, Battery, CpuModel


class TestCpuModel:
    def test_energy_scales_with_flops(self):
        cpu = CpuModel()
        assert cpu.energy_mj(2e9) == pytest.approx(2 * cpu.energy_mj(1e9))

    def test_reconstruction_flops_grow_with_problem(self):
        cpu = DEFAULT_CPU
        small = cpu.reconstruction_flops(10, 100, 5)
        large = cpu.reconstruction_flops(40, 400, 20)
        assert large > small

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuModel(active_power_mw=0.0)
        with pytest.raises(ValueError):
            DEFAULT_CPU.energy_mj(-1.0)
        with pytest.raises(ValueError):
            DEFAULT_CPU.reconstruction_flops(0, 10, 1)


class TestBattery:
    def test_drain_and_level(self):
        battery = Battery(capacity_mj=100.0)
        battery.drain(25.0)
        assert battery.remaining_mj == 75.0
        assert battery.level == pytest.approx(0.75)
        assert not battery.empty

    def test_clamps_at_empty(self):
        battery = Battery(capacity_mj=10.0)
        battery.drain(100.0)
        assert battery.remaining_mj == 0.0
        assert battery.empty

    def test_lifetime(self):
        battery = Battery(capacity_mj=3600.0)  # 1 mWh * 1000...
        assert battery.lifetime_hours(average_draw_mw=1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_mj=0.0)
        with pytest.raises(ValueError):
            Battery().drain(-1.0)
        with pytest.raises(ValueError):
            Battery().lifetime_hours(0.0)


class TestLedger:
    def test_categories_accumulate(self):
        ledger = EnergyLedger(node_id="n1")
        ledger.post("sensing", 2.0)
        ledger.post("sensing", 3.0)
        ledger.post("radio_tx", 1.0)
        assert ledger.total_mj() == 6.0
        assert ledger.category_mj("sensing") == 5.0
        assert ledger.breakdown() == {"radio_tx": 1.0, "sensing": 5.0}

    def test_battery_drained_via_ledger(self):
        battery = Battery(capacity_mj=10.0)
        ledger = EnergyLedger(node_id="n1", battery=battery)
        ledger.post("cpu", 4.0)
        assert battery.remaining_mj == 6.0

    def test_merge(self):
        a = EnergyLedger(node_id="a")
        b = EnergyLedger(node_id="b")
        a.post("sensing", 1.0)
        b.post("sensing", 2.0)
        b.post("cpu", 3.0)
        a.merge(b)
        assert a.total_mj() == 6.0

    def test_validation(self):
        ledger = EnergyLedger()
        with pytest.raises(ValueError):
            ledger.post("", 1.0)
        with pytest.raises(ValueError):
            ledger.post("x", -1.0)


class TestFleetReport:
    def _fleet(self):
        ledgers = []
        for i, amount in enumerate([1.0, 2.0, 3.0]):
            ledger = EnergyLedger(node_id=f"n{i}")
            ledger.post("sensing", amount)
            ledgers.append(ledger)
        return FleetEnergyReport(ledgers)

    def test_aggregates(self):
        report = self._fleet()
        assert report.total_mj() == 6.0
        assert report.mean_mj() == 2.0
        assert report.max_mj() == 3.0
        assert report.breakdown() == {"sensing": 6.0}

    def test_empty_fleet(self):
        report = FleetEnergyReport([])
        assert report.total_mj() == 0.0
        assert report.mean_mj() == 0.0
        assert report.max_mj() == 0.0


class TestSavings:
    def test_percent(self):
        assert savings_percent(100.0, 20.0) == pytest.approx(80.0)
        assert savings_percent(100.0, 100.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            savings_percent(0.0, 1.0)
        with pytest.raises(ValueError):
            savings_percent(1.0, -1.0)
