"""Tests for sensor base abstractions: specs, readings, environment."""

import numpy as np
import pytest

from repro.fields.field import SpatialField
from repro.sensors.base import (
    Environment,
    NodeState,
    Sensor,
    SensorReading,
    SensorSpec,
)


class ConstantSensor(Sensor):
    """Test double: always observes the same true value."""

    def __init__(self, value: float, spec: SensorSpec, rng=None):
        super().__init__(spec, rng)
        self._value = value

    def _true_value(self, env, state, timestamp):
        return self._value


class TestSensorSpec:
    def test_variance(self):
        spec = SensorSpec("x", noise_std=3.0)
        assert spec.variance == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorSpec("")
        with pytest.raises(ValueError):
            SensorSpec("x", noise_std=-1.0)
        with pytest.raises(ValueError):
            SensorSpec("x", max_rate_hz=0.0)
        with pytest.raises(ValueError):
            SensorSpec("x", energy_per_sample_mj=-0.1)


class TestSensorReading:
    def test_rejects_nonfinite_timestamp(self):
        with pytest.raises(ValueError):
            SensorReading(sensor="x", timestamp=float("nan"), value=1.0)


class TestSensorNoiseLayers:
    def test_noiseless_returns_truth(self):
        sensor = ConstantSensor(7.0, SensorSpec("x"))
        reading = sensor.read(Environment(), NodeState(), 0.0)
        assert reading.value == 7.0

    def test_bias_applied(self):
        sensor = ConstantSensor(7.0, SensorSpec("x", bias=1.5))
        assert sensor.read(Environment(), NodeState(), 0.0).value == 8.5

    def test_noise_statistics(self):
        sensor = ConstantSensor(0.0, SensorSpec("x", noise_std=2.0), rng=0)
        values = [
            sensor.read(Environment(), NodeState(), float(t)).value
            for t in range(500)
        ]
        assert 1.8 < np.std(values) < 2.2
        assert abs(np.mean(values)) < 0.3

    def test_quantisation(self):
        sensor = ConstantSensor(7.3, SensorSpec("x", resolution=0.5))
        assert sensor.read(Environment(), NodeState(), 0.0).value == 7.5

    def test_energy_accounting(self):
        spec = SensorSpec("x", energy_per_sample_mj=0.2)
        sensor = ConstantSensor(0.0, spec)
        env, state = Environment(), NodeState()
        for t in range(5):
            sensor.read(env, state, float(t))
        assert sensor.samples_taken == 5
        assert sensor.energy_spent_mj == pytest.approx(1.0)


class TestEnvironment:
    def test_field_value_nearest_cell(self):
        grid = np.arange(12, dtype=float).reshape(3, 4)
        env = Environment(fields={"temp": SpatialField(grid=grid)})
        assert env.field_value("temp", 1.2, 2.4) == grid[2, 1]

    def test_field_value_clamps_out_of_range(self):
        grid = np.arange(4, dtype=float).reshape(2, 2)
        env = Environment(fields={"t": SpatialField(grid=grid)})
        assert env.field_value("t", -5.0, -5.0) == grid[0, 0]
        assert env.field_value("t", 99.0, 99.0) == grid[1, 1]

    def test_missing_field(self):
        with pytest.raises(KeyError, match="no field"):
            Environment().field_value("nope", 0, 0)

    def test_is_indoor_without_map(self):
        assert Environment().is_indoor(0, 0) is False

    def test_is_indoor_with_map(self):
        grid = np.zeros((2, 2))
        grid[1, 1] = 1.0
        env = Environment(indoor_map=SpatialField(grid=grid))
        assert env.is_indoor(1, 1) is True
        assert env.is_indoor(0, 0) is False


class TestNodeState:
    def test_position(self):
        assert NodeState(x=2.0, y=3.0).position() == (2.0, 3.0)

    def test_defaults(self):
        state = NodeState()
        assert state.mode == "idle" and not state.indoor
