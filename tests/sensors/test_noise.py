"""Tests for heterogeneity tiers and the GLS covariance builders."""

import numpy as np
import pytest

from repro.sensors.noise import (
    STANDARD_TIERS,
    QualityTier,
    covariance_for_tiers,
    covariance_from_stds,
    draw_tiers,
    heterogeneity_ratio,
)


class TestQualityTier:
    def test_validation(self):
        with pytest.raises(ValueError):
            QualityTier("x", noise_multiplier=0.0, population_share=0.5)
        with pytest.raises(ValueError):
            QualityTier("x", noise_multiplier=1.0, population_share=1.5)

    def test_standard_mix_sums_to_one(self):
        assert sum(t.population_share for t in STANDARD_TIERS) == pytest.approx(1.0)


class TestDrawTiers:
    def test_count_and_membership(self):
        tiers = draw_tiers(50, rng=0)
        assert len(tiers) == 50
        assert all(t in STANDARD_TIERS for t in tiers)

    def test_population_shares_respected(self):
        tiers = draw_tiers(3000, rng=1)
        budget_share = sum(t.name == "budget" for t in tiers) / 3000
        assert 0.25 < budget_share < 0.35

    def test_zero_count(self):
        assert draw_tiers(0, rng=2) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            draw_tiers(-1)
        with pytest.raises(ValueError):
            draw_tiers(3, tiers=())


class TestCovariance:
    def test_diagonal_from_stds(self):
        v = covariance_from_stds(np.array([1.0, 2.0]))
        assert np.allclose(v, np.diag([1.0, 4.0]))

    def test_zero_std_floored(self):
        v = covariance_from_stds(np.array([0.0]))
        assert v[0, 0] > 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            covariance_from_stds(np.array([-1.0]))

    def test_for_tiers(self):
        tiers = [STANDARD_TIERS[0], STANDARD_TIERS[2]]  # flagship, budget
        v = covariance_for_tiers(tiers, base_noise_std=2.0)
        assert v[0, 0] == pytest.approx(1.0)  # (2*0.5)^2
        assert v[1, 1] == pytest.approx(25.0)  # (2*2.5)^2


class TestHeterogeneityRatio:
    def test_homogeneous_is_one(self):
        assert heterogeneity_ratio(np.eye(4)) == pytest.approx(1.0)

    def test_ratio(self):
        v = np.diag([1.0, 9.0])
        assert heterogeneity_ratio(v) == pytest.approx(9.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            heterogeneity_ratio(np.zeros((0, 0)))
        with pytest.raises(ValueError):
            heterogeneity_ratio(np.diag([0.0, 1.0]))
