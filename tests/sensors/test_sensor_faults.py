"""Tests for the sensor data-fault substrate (repro.sensors.faults)."""

import math

import pytest

from repro.fields.generators import urban_temperature_field
from repro.middleware.node import MobileNode
from repro.network.bus import MessageBus
from repro.network.message import Message, MessageKind
from repro.sensors.base import Environment, NodeState
from repro.sensors.faults import (
    Adversarial,
    CalibrationBias,
    Drift,
    SensorFaultInjector,
    SpikeBurst,
    StuckAt,
    afflict_fraction,
)
from repro.sensors.physical import TemperatureSensor


class TestFaultModels:
    def test_stuck_at_freezes_value_keeps_std(self):
        fault = StuckAt(42.0)
        assert fault.apply(20.0, 0.3, 5.0) == (42.0, 0.3)
        assert fault.apply(-3.0, 0.1, 99.0) == (42.0, 0.1)

    def test_drift_grows_from_window_start(self):
        fault = Drift(rate_per_s=0.5, start=10.0)
        value, std = fault.apply(20.0, 0.3, 14.0)
        assert value == pytest.approx(20.0 + 0.5 * 4.0)
        assert std == 0.3

    def test_calibration_bias_constant_offset(self):
        fault = CalibrationBias(bias=-1.5)
        assert fault.apply(20.0, 0.3, 0.0) == (18.5, 0.3)
        assert fault.apply(20.0, 0.3, 1e6) == (18.5, 0.3)

    def test_adversarial_understates_std(self):
        fault = Adversarial(offset=3.0, claimed_std=0.01)
        value, std = fault.apply(20.0, 0.3, 0.0)
        assert value == 23.0
        assert std == 0.01

    def test_spike_burst_seeded_replay(self):
        fault = SpikeBurst(magnitude=10.0, probability=0.5, seed=7)
        first = [fault.apply(0.0, 0.3, t) for t in range(50)]
        fault.reset()
        replay = [fault.apply(0.0, 0.3, t) for t in range(50)]
        assert first == replay
        spiked = [v for v, _ in first if v != 0.0]
        assert spiked  # some spikes happened
        assert all(abs(v) == 10.0 for v in spiked)
        assert len(spiked) < 50  # ... but not on every read

    def test_activity_window(self):
        fault = StuckAt(1.0, start=5.0, end=10.0)
        assert not fault.active(4.9)
        assert fault.active(5.0)
        assert fault.active(9.9)
        assert not fault.active(10.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window end"):
            StuckAt(1.0, start=5.0, end=5.0)

    def test_bad_spike_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            SpikeBurst(magnitude=1.0, probability=1.5)

    def test_negative_claimed_std_rejected(self):
        with pytest.raises(ValueError, match="claimed_std"):
            Adversarial(offset=1.0, claimed_std=-0.1)


class TestInjector:
    def test_corrupt_applies_only_active_models(self):
        injector = SensorFaultInjector()
        injector.attach("n1", CalibrationBias(2.0, start=10.0))
        assert injector.corrupt("n1", 1.0, 0.3, 5.0) == (1.0, 0.3)
        assert injector.corrupt("n1", 1.0, 0.3, 12.0) == (3.0, 0.3)

    def test_models_compose_in_attach_order(self):
        injector = SensorFaultInjector()
        injector.attach("n1", CalibrationBias(2.0), Adversarial(0.0, 0.05))
        value, std = injector.corrupt("n1", 1.0, 0.3, 0.0)
        assert value == 3.0  # bias first, adversarial keeps the value
        assert std == 0.05

    def test_unafflicted_nodes_untouched(self):
        injector = SensorFaultInjector()
        injector.attach("bad", StuckAt(0.0))
        assert injector.corrupt("good", 7.0, 0.2, 0.0) == (7.0, 0.2)
        assert injector.faulty_nodes == {"bad"}

    def test_is_faulty_respects_window(self):
        injector = SensorFaultInjector()
        injector.attach("n1", StuckAt(0.0, start=5.0, end=10.0))
        assert injector.is_faulty("n1")  # no time: any model counts
        assert not injector.is_faulty("n1", now=0.0)
        assert injector.is_faulty("n1", now=7.0)
        assert not injector.is_faulty("n2")

    def test_accounting_counts_actual_corruptions(self):
        injector = SensorFaultInjector()
        injector.attach("n1", StuckAt(5.0))
        injector.corrupt("n1", 1.0, 0.3, 0.0)
        injector.corrupt("n1", 5.0, 0.3, 1.0)  # already 5.0: no change
        assert injector.corruptions_by_reason["stuck-at"] == 1

    def test_reset_rewinds_models_and_accounting(self):
        injector = SensorFaultInjector()
        injector.attach("n1", SpikeBurst(magnitude=4.0, probability=0.5, seed=3))
        first = [injector.corrupt("n1", 0.0, 0.3, t) for t in range(30)]
        injector.reset()
        assert injector.corruptions_by_reason == {}
        replay = [injector.corrupt("n1", 0.0, 0.3, t) for t in range(30)]
        assert first == replay

    def test_attach_requires_models(self):
        with pytest.raises(ValueError, match="at least one"):
            SensorFaultInjector().attach("n1")

    def test_clock_overrides_timestamp(self):
        class _Clock:
            now = 20.0

        injector = SensorFaultInjector(clock=_Clock())
        injector.attach("n1", CalibrationBias(1.0, start=15.0))
        # Reading timestamp says 0.0 but the clock says 20.0 — active.
        assert injector.now_or(0.0) == 20.0
        assert injector.corrupt("n1", 1.0, 0.3, injector.now_or(0.0)) == (
            2.0,
            0.3,
        )


class TestAfflictFraction:
    def test_seeded_choice_is_deterministic(self):
        ids = [f"n{i:02d}" for i in range(20)]
        chosen_a = afflict_fraction(
            SensorFaultInjector(), ids, 0.25, lambda nid: StuckAt(0.0), seed=5
        )
        chosen_b = afflict_fraction(
            SensorFaultInjector(), ids, 0.25, lambda nid: StuckAt(0.0), seed=5
        )
        assert chosen_a == chosen_b
        assert len(chosen_a) == 5
        assert chosen_a == sorted(chosen_a)

    def test_factory_may_return_multiple_models(self):
        injector = SensorFaultInjector()
        afflict_fraction(
            injector,
            ["a", "b"],
            1.0,
            lambda nid: [CalibrationBias(1.0), Adversarial(0.0, 0.01)],
            seed=0,
        )
        assert all(len(injector.models_for(n)) == 2 for n in ("a", "b"))

    def test_zero_fraction_afflicts_nobody(self):
        injector = SensorFaultInjector()
        assert (
            afflict_fraction(
                injector, ["a", "b"], 0.0, lambda nid: StuckAt(0.0)
            )
            == []
        )
        assert injector.faulty_nodes == set()

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            afflict_fraction(
                SensorFaultInjector(), ["a"], 1.5, lambda nid: StuckAt(0.0)
            )


@pytest.fixture
def env():
    return Environment(
        fields={"temperature": urban_temperature_field(16, 8, rng=0)}
    )


def _node(node_id="n1", injector=None):
    node = MobileNode(
        node_id,
        sensors={"temperature": TemperatureSensor(rng=1)},
        state=NodeState(x=3, y=3),
        rng=0,
    )
    node.fault_injector = injector
    return node


class TestNodeIntegration:
    def test_faulty_node_reports_corrupted_reading(self, env):
        injector = SensorFaultInjector()
        injector.attach("n1", Adversarial(offset=5.0, claimed_std=0.01))
        honest = _node().read_sensor("temperature", env, 0.0)
        faulty = _node(injector=injector).read_sensor("temperature", env, 0.0)
        assert faulty.value == pytest.approx(honest.value + 5.0)
        assert faulty.noise_std == 0.01
        assert honest.noise_std > 0.01

    def test_unafflicted_node_identical_with_injector(self, env):
        injector = SensorFaultInjector()
        injector.attach("other", StuckAt(0.0))
        honest = _node().read_sensor("temperature", env, 0.0)
        attached = _node(injector=injector).read_sensor(
            "temperature", env, 0.0
        )
        assert attached.value == honest.value
        assert attached.noise_std == honest.noise_std

    def test_corruption_flows_through_sense_report(self, env):
        injector = SensorFaultInjector()
        injector.attach("n1", StuckAt(99.0))
        node = _node(injector=injector)
        bus = MessageBus()
        bus.register("broker")
        bus.register("n1")
        command = Message(
            kind=MessageKind.SENSE_COMMAND,
            source="broker",
            destination="n1",
            payload={"sensor": "temperature", "grid_index": 7},
            timestamp=2.0,
        )
        reply = node.handle_command(command, env, bus)
        assert reply.payload["ok"]
        assert reply.payload["value"] == 99.0
        assert injector.corruptions_by_reason["stuck-at"] == 1

    def test_fault_window_over_sim_time(self, env):
        injector = SensorFaultInjector()
        injector.attach("n1", StuckAt(99.0, start=10.0, end=20.0))
        node = _node(injector=injector)
        before = node.read_sensor("temperature", env, 5.0)
        during = node.read_sensor("temperature", env, 15.0)
        after = node.read_sensor("temperature", env, 25.0)
        assert before.value != 99.0
        assert during.value == 99.0
        assert after.value != 99.0

    def test_drift_is_infinite_window_by_default(self):
        assert Drift(0.1).end == math.inf
