"""Tests for the physical sensor models and the Fig.-4 signal generator."""

import numpy as np
import pytest

from repro.core.basis import dct_basis
from repro.core.sparsity import energy_sparsity
from repro.fields.field import SpatialField
from repro.fields.generators import indicator_field, urban_temperature_field
from repro.sensors.base import Environment, NodeState
from repro.sensors.physical import (
    DEFAULT_SPECS,
    AccelerometerSensor,
    BarometerSensor,
    GPSSensor,
    LightSensor,
    MicrophoneSensor,
    TemperatureSensor,
    WiFiSensor,
    accelerometer_window,
)


@pytest.fixture
def env():
    return Environment(
        fields={"temperature": urban_temperature_field(16, 16, rng=0)},
        indoor_map=indicator_field(16, 16, n_regions=3, rng=1),
    )


def _indoor_and_outdoor_cells(env):
    grid = env.indoor_map.grid
    indoor = np.argwhere(grid > 0.5)[0]
    outdoor = np.argwhere(grid < 0.5)[0]
    return (
        NodeState(x=float(indoor[1]), y=float(indoor[0])),
        NodeState(x=float(outdoor[1]), y=float(outdoor[0])),
    )


class TestFieldSensors:
    def test_temperature_reads_field(self, env):
        sensor = TemperatureSensor(rng=0)
        state = NodeState(x=5, y=5)
        truth = env.field_value("temperature", 5, 5)
        readings = [sensor.read(env, state, t).value for t in range(50)]
        assert abs(np.mean(readings) - truth) < 0.3

    def test_barometer_default_pressure(self):
        sensor = BarometerSensor(rng=0)
        value = sensor.read(Environment(), NodeState(), 0.0).value
        assert 1012 < value < 1015


class TestIndoorSensitiveSensors:
    def test_gps_degrades_indoors(self, env):
        indoor, outdoor = _indoor_and_outdoor_cells(env)
        gps = GPSSensor(rng=2)
        err_in = np.mean([gps.read(env, indoor, t).value for t in range(20)])
        err_out = np.mean([gps.read(env, outdoor, t).value for t in range(20)])
        assert err_in > 5 * err_out

    def test_wifi_count_rises_indoors(self, env):
        indoor, outdoor = _indoor_and_outdoor_cells(env)
        wifi = WiFiSensor(rng=3)
        aps_in = np.mean([wifi.read(env, indoor, t).value for t in range(30)])
        aps_out = np.mean([wifi.read(env, outdoor, t).value for t in range(30)])
        assert aps_in > aps_out + 3

    def test_light_attenuated_indoors(self, env):
        indoor, outdoor = _indoor_and_outdoor_cells(env)
        light = LightSensor(rng=4)
        lux_in = light.read(env, indoor, 0.0).value
        lux_out = light.read(env, outdoor, 0.0).value
        assert lux_out > 5 * lux_in


class TestMicrophone:
    def test_driving_is_louder_than_idle(self):
        mic = MicrophoneSensor(rng=5)
        env = Environment()
        idle = np.mean(
            [mic.read(env, NodeState(mode="idle"), t).value for t in range(20)]
        )
        driving = np.mean(
            [mic.read(env, NodeState(mode="driving"), t).value for t in range(20)]
        )
        assert driving > idle + 10


class TestAccelerometerWindow:
    @pytest.mark.parametrize("mode", ["idle", "walking", "driving"])
    def test_window_length_and_determinism(self, mode):
        a = accelerometer_window(mode, 128, rng=7)
        b = accelerometer_window(mode, 128, rng=7)
        assert a.shape == (128,)
        assert np.array_equal(a, b)

    def test_idle_is_quiet(self):
        sig = accelerometer_window("idle", 256, rng=8)
        assert np.sqrt(np.mean(sig**2)) < 0.1

    def test_moving_modes_have_energy(self):
        for mode in ("walking", "driving"):
            sig = accelerometer_window(mode, 256, rng=9)
            assert np.sqrt(np.mean(sig**2)) > 0.5

    def test_windows_are_dct_compressible(self):
        """The Fig. 4 premise: ~10 coefficients capture 95% of energy."""
        phi = dct_basis(256)
        for mode in ("walking", "driving"):
            for seed in range(5):
                sig = accelerometer_window(mode, 256, rng=seed)
                k = energy_sparsity(phi.T @ sig, 0.95)
                assert k <= 20, f"{mode} seed {seed} has K95={k}"

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            accelerometer_window("flying", 128)

    def test_invalid_length_and_rate(self):
        with pytest.raises(ValueError):
            accelerometer_window("idle", 0)
        with pytest.raises(ValueError):
            accelerometer_window("idle", 128, rate_hz=0)


class TestAccelerometerSensor:
    def test_idle_reads_near_zero(self):
        acc = AccelerometerSensor(rng=10)
        value = acc.read(Environment(), NodeState(mode="idle"), 0.25).value
        assert abs(value) < 0.3


class TestDefaultSpecs:
    def test_gps_is_most_expensive(self):
        gps_cost = DEFAULT_SPECS["gps"].energy_per_sample_mj
        for name, spec in DEFAULT_SPECS.items():
            if name != "gps":
                assert spec.energy_per_sample_mj < gps_cost

    def test_all_named_consistently(self):
        for name, spec in DEFAULT_SPECS.items():
            assert spec.name == name
