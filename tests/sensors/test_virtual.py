"""Tests for virtual (fused) sensors — Fig. 3's right-hand column."""

import numpy as np
import pytest

from repro.sensors.base import Environment, NodeState, SensorSpec
from repro.sensors.physical import TemperatureSensor
from repro.sensors.virtual import (
    CompassSensor,
    InclinometerSensor,
    OrientationSensor,
    VirtualSensor,
)


class TestCompass:
    def test_recovers_heading(self):
        env = Environment()
        compass = CompassSensor(rng=0)
        for heading in (0.1, 1.0, 2.5, 4.0):
            state = NodeState(heading=heading, mode="idle")
            values = [compass.read(env, state, t).value for t in range(10)]
            assert np.mean(values) == pytest.approx(heading, abs=0.1)

    def test_declination_included(self):
        env = Environment(magnetic_declination=0.3)
        compass = CompassSensor(rng=1)
        state = NodeState(heading=1.0, mode="idle")
        values = [compass.read(env, state, t).value for t in range(10)]
        assert np.mean(values) == pytest.approx(1.3, abs=0.1)

    def test_inputs_charged_for_sampling(self):
        compass = CompassSensor(rng=2)
        env, state = Environment(), NodeState()
        before = compass.inputs[0].samples_taken
        compass.read(env, state, 0.0)
        assert compass.inputs[0].samples_taken == before + 1
        assert compass.total_energy_mj > compass.energy_spent_mj


class TestInclinometer:
    def test_mode_specific_pitch(self):
        env = Environment()
        inclinometer = InclinometerSensor(rng=3)
        idle = np.mean(
            [
                inclinometer.read(env, NodeState(mode="idle"), t).value
                for t in range(20)
            ]
        )
        walking = np.mean(
            [
                inclinometer.read(env, NodeState(mode="walking"), t).value
                for t in range(20)
            ]
        )
        assert abs(idle) < 0.05
        assert walking == pytest.approx(0.6, abs=0.05)


class TestOrientation:
    def test_read_orientation_tuple(self):
        env = Environment()
        orientation = OrientationSensor(rng=4)
        heading, pitch, roll = orientation.read_orientation(
            env, NodeState(heading=2.0, mode="walking"), 0.0
        )
        assert heading == pytest.approx(2.0, abs=0.1)
        assert pitch == pytest.approx(0.6, abs=0.05)
        assert roll == pytest.approx(0.0, abs=0.05)

    def test_heading_wraps(self):
        env = Environment()
        orientation = OrientationSensor(rng=5)
        state = NodeState(heading=7.0)  # > 2*pi
        value = orientation.read(env, state, 0.0).value
        assert 0.0 <= value < 2 * np.pi + 0.1


class TestVirtualSensorGeneric:
    def test_custom_fusion_function(self):
        """Build a 'heat index' virtual sensor from temperature."""
        env = Environment(
            fields={
                "temperature": __import__(
                    "repro.fields.generators", fromlist=["urban_temperature_field"]
                ).urban_temperature_field(8, 8, rng=0)
            }
        )
        thermometer = TemperatureSensor(rng=1)

        def heat_index(e, s, t):
            return e.field_value("temperature", s.x, s.y) * 1.1 + 2.0

        virtual = VirtualSensor(
            SensorSpec("heat-index", noise_std=0.0, energy_per_sample_mj=0.001),
            heat_index,
            inputs=[thermometer],
        )
        state = NodeState(x=3, y=3)
        expected = env.field_value("temperature", 3, 3) * 1.1 + 2.0
        assert virtual.read(env, state, 0.0).value == pytest.approx(expected)
        assert thermometer.samples_taken == 1
