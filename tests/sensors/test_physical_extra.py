"""Additional physical-sensor tests: humidity, gyroscope, magnetometer,
barometer-with-field, and sensor determinism guarantees."""

import numpy as np
import pytest

from repro.fields.field import SpatialField
from repro.fields.generators import smooth_field
from repro.sensors.base import Environment, NodeState
from repro.sensors.physical import (
    BarometerSensor,
    GyroscopeSensor,
    HumiditySensor,
    MagnetometerSensor,
    accelerometer_window,
)


class TestHumidity:
    def test_reads_field(self):
        humidity = smooth_field(8, 8, offset=50.0, amplitude=10.0, rng=0)
        env = Environment(fields={"humidity": humidity})
        sensor = HumiditySensor(rng=1)
        state = NodeState(x=4, y=4)
        truth = env.field_value("humidity", 4, 4)
        readings = [sensor.read(env, state, t).value for t in range(60)]
        assert abs(np.mean(readings) - truth) < 1.5

    def test_requires_field(self):
        sensor = HumiditySensor(rng=2)
        with pytest.raises(KeyError):
            sensor.read(Environment(), NodeState(), 0.0)


class TestBarometerWithField:
    def test_pressure_field_preferred_over_default(self):
        pressure = SpatialField(grid=np.full((4, 4), 980.0))
        env = Environment(fields={"pressure": pressure})
        sensor = BarometerSensor(rng=3)
        values = [sensor.read(env, NodeState(x=1, y=1), t).value for t in range(30)]
        assert abs(np.mean(values) - 980.0) < 1.0


class TestGyroscope:
    def test_idle_is_still(self):
        sensor = GyroscopeSensor(rng=4)
        values = [
            sensor.read(Environment(), NodeState(mode="idle"), t).value
            for t in np.linspace(0, 10, 50)
        ]
        assert np.max(np.abs(values)) < 0.1

    def test_walking_turns_more_than_driving(self):
        env = Environment()
        gyro = GyroscopeSensor(rng=5)
        walk = [
            gyro.read(env, NodeState(mode="walking"), t).value
            for t in np.linspace(0, 10, 100)
        ]
        drive = [
            gyro.read(env, NodeState(mode="driving"), t).value
            for t in np.linspace(0, 10, 100)
        ]
        assert np.std(walk) > np.std(drive)


class TestMagnetometer:
    def test_heading_dependence(self):
        env = Environment()
        sensor = MagnetometerSensor(rng=6)
        north = np.mean(
            [sensor.read(env, NodeState(heading=0.0), t).value for t in range(30)]
        )
        east = np.mean(
            [
                sensor.read(env, NodeState(heading=np.pi / 2), t).value
                for t in range(30)
            ]
        )
        assert north == pytest.approx(MagnetometerSensor.EARTH_FIELD_UT, abs=1.0)
        assert abs(east) < 1.0

    def test_declination_shifts_reading(self):
        plain = Environment()
        shifted = Environment(magnetic_declination=np.pi / 2)
        sensor = MagnetometerSensor(rng=7)
        state = NodeState(heading=0.0)
        a = np.mean([sensor.read(plain, state, t).value for t in range(30)])
        b = np.mean([sensor.read(shifted, state, t).value for t in range(30)])
        assert a > 40 and abs(b) < 2.0


class TestWindowProperties:
    def test_different_seeds_differ(self):
        a = accelerometer_window("driving", 128, rng=0)
        b = accelerometer_window("driving", 128, rng=1)
        assert not np.allclose(a, b)

    def test_rate_changes_spectrum_not_length(self):
        slow = accelerometer_window("walking", 128, rate_hz=16.0, rng=2)
        fast = accelerometer_window("walking", 128, rate_hz=64.0, rng=2)
        assert slow.shape == fast.shape == (128,)
        assert not np.allclose(slow, fast)
