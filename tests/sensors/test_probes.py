"""Tests for configurable sensing probes (uniform vs compressive)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors.base import Environment, NodeState, SensorSpec
from repro.sensors.physical import AccelerometerSensor, accelerometer_window
from repro.sensors.probes import ProbeConfig, SensingProbe


class TestProbeConfig:
    def test_grid_and_sample_count_uniform(self):
        cfg = ProbeConfig(rate_hz=32.0, duration_s=8.0)
        assert cfg.grid_size == 256
        assert cfg.sample_count == 256

    def test_compressive_count(self):
        cfg = ProbeConfig(
            rate_hz=32.0, duration_s=8.0, mode="compressive", duty_cycle=0.125
        )
        assert cfg.sample_count == 32

    @given(duty=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_sample_count_bounds(self, duty):
        cfg = ProbeConfig(
            rate_hz=10.0, duration_s=10.0, mode="compressive", duty_cycle=duty
        )
        assert 1 <= cfg.sample_count <= cfg.grid_size

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeConfig(rate_hz=0, duration_s=1)
        with pytest.raises(ValueError):
            ProbeConfig(rate_hz=1, duration_s=0)
        with pytest.raises(ValueError):
            ProbeConfig(rate_hz=1, duration_s=1, mode="sparse")
        with pytest.raises(ValueError):
            ProbeConfig(rate_hz=1, duration_s=1, duty_cycle=0.0)


class TestSensingProbe:
    def test_rejects_rate_above_sensor_max(self):
        sensor = AccelerometerSensor()
        with pytest.raises(ValueError, match="at most"):
            SensingProbe(sensor, ProbeConfig(rate_hz=500.0, duration_s=1.0))

    def test_uniform_window_samples_all_instants(self):
        sensor = AccelerometerSensor(rng=0)
        probe = SensingProbe(sensor, ProbeConfig(rate_hz=16.0, duration_s=2.0))
        series = probe.sample_window(Environment(), NodeState(), 0.0)
        assert len(series) == 32
        assert np.array_equal(series.grid_indices, np.arange(32))

    def test_compressive_window_is_sparse_sorted_distinct(self):
        sensor = AccelerometerSensor(rng=1)
        probe = SensingProbe(
            sensor,
            ProbeConfig(
                rate_hz=16.0, duration_s=2.0, mode="compressive",
                duty_cycle=0.25, seed=3,
            ),
        )
        series = probe.sample_window(Environment(), NodeState(), 0.0)
        assert len(series) == 8
        assert np.all(np.diff(series.grid_indices) > 0)

    def test_timestamps_match_grid(self):
        sensor = AccelerometerSensor(rng=2)
        probe = SensingProbe(
            sensor,
            ProbeConfig(rate_hz=8.0, duration_s=1.0, mode="compressive",
                        duty_cycle=0.5, seed=0),
        )
        series = probe.sample_window(Environment(), NodeState(), start_time=10.0)
        assert np.allclose(
            series.timestamps, 10.0 + series.grid_indices / 8.0
        )

    def test_energy_proportional_to_samples(self):
        spec_cost = AccelerometerSensor().spec.energy_per_sample_mj
        sensor = AccelerometerSensor(rng=3)
        probe = SensingProbe(
            sensor,
            ProbeConfig(rate_hz=16.0, duration_s=4.0, mode="compressive",
                        duty_cycle=0.25, seed=1),
        )
        series = probe.sample_window(Environment(), NodeState(), 0.0)
        assert series.energy_mj == pytest.approx(len(series) * spec_cost)


class TestSampleSignal:
    def test_reads_given_signal_at_chosen_instants(self):
        signal = accelerometer_window("driving", 64, rng=4)
        quiet = AccelerometerSensor(
            spec=SensorSpec("accelerometer", noise_std=0.0), rng=5
        )
        probe = SensingProbe(
            quiet,
            ProbeConfig(rate_hz=16.0, duration_s=4.0, mode="compressive",
                        duty_cycle=0.5, seed=2),
        )
        series = probe.sample_signal(signal)
        assert np.array_equal(series.values, signal[series.grid_indices])

    def test_noise_added_when_configured(self):
        signal = np.zeros(64)
        noisy = AccelerometerSensor(
            spec=SensorSpec("accelerometer", noise_std=1.0), rng=6
        )
        probe = SensingProbe(
            noisy, ProbeConfig(rate_hz=16.0, duration_s=4.0)
        )
        series = probe.sample_signal(signal)
        assert series.values.std() > 0.5

    def test_length_mismatch(self):
        probe = SensingProbe(
            AccelerometerSensor(rng=7),
            ProbeConfig(rate_hz=16.0, duration_s=4.0),
        )
        with pytest.raises(ValueError):
            probe.sample_signal(np.zeros(100))

    def test_sensor_sample_counter_advances(self):
        sensor = AccelerometerSensor(rng=8)
        probe = SensingProbe(
            sensor,
            ProbeConfig(rate_hz=16.0, duration_s=1.0, mode="compressive",
                        duty_cycle=0.5, seed=0),
        )
        probe.sample_signal(np.zeros(16))
        assert sensor.samples_taken == 8
