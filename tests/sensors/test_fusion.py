"""Tests for sensor-fusion primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors.fusion import (
    GRAVITY,
    complementary_filter,
    exponential_smoother,
    heading_from_magnetometer,
    moving_average,
    tilt_from_gravity,
)


class TestTiltFromGravity:
    def test_flat_device(self):
        pitch, roll = tilt_from_gravity(0.0, 0.0, GRAVITY)
        assert pitch == pytest.approx(0.0)
        assert roll == pytest.approx(0.0)

    def test_known_pitch(self):
        angle = 0.4
        ax = -GRAVITY * np.sin(angle)
        az = GRAVITY * np.cos(angle)
        pitch, roll = tilt_from_gravity(ax, 0.0, az)
        assert pitch == pytest.approx(angle, abs=1e-9)
        assert roll == pytest.approx(0.0, abs=1e-9)

    def test_known_roll(self):
        angle = -0.3
        ay = GRAVITY * np.sin(angle)
        az = GRAVITY * np.cos(angle)
        _, roll = tilt_from_gravity(0.0, ay, az)
        assert roll == pytest.approx(angle, abs=1e-9)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            tilt_from_gravity(0.0, 0.0, 0.0)

    @given(st.floats(min_value=-1.2, max_value=1.2))
    @settings(max_examples=30, deadline=None)
    def test_pitch_roundtrip(self, angle):
        ax = -GRAVITY * np.sin(angle)
        az = GRAVITY * np.cos(angle)
        pitch, _ = tilt_from_gravity(ax, 0.0, az)
        assert pitch == pytest.approx(angle, abs=1e-8)


class TestHeading:
    @given(st.floats(min_value=0.0, max_value=2 * np.pi - 0.01))
    @settings(max_examples=30, deadline=None)
    def test_level_device_recovers_heading(self, theta):
        mx, my = 50 * np.cos(theta), 50 * np.sin(theta)
        heading = heading_from_magnetometer(mx, my, 0.0, 0.0, 0.0)
        assert heading == pytest.approx(theta, abs=1e-8)

    def test_declination_shift(self):
        h0 = heading_from_magnetometer(50.0, 0.0, 0.0, 0.0, 0.0)
        h1 = heading_from_magnetometer(
            50.0, 0.0, 0.0, 0.0, 0.0, declination=0.5
        )
        assert (h1 - h0) % (2 * np.pi) == pytest.approx(0.5, abs=1e-9)

    def test_result_in_range(self):
        h = heading_from_magnetometer(-30.0, -40.0, 10.0, 0.2, -0.1)
        assert 0.0 <= h < 2 * np.pi


class TestComplementaryFilter:
    def test_tracks_static_angle(self):
        n = 200
        accel = np.full(n, 0.7)
        gyro = np.zeros(n)
        theta = complementary_filter(gyro, accel, dt=0.01, alpha=0.95)
        assert theta[-1] == pytest.approx(0.7, abs=1e-6)

    def test_gyro_integration_dominates_transients(self):
        n = 100
        gyro = np.full(n, 1.0)  # steady rotation 1 rad/s
        accel = np.zeros(n)  # accel says 0 (e.g. disturbed)
        theta = complementary_filter(gyro, accel, dt=0.01, alpha=1.0)
        assert theta[-1] == pytest.approx(0.99, abs=1e-9)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            complementary_filter(np.zeros(3), np.zeros(4), dt=0.1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            complementary_filter(np.zeros(3), np.zeros(3), dt=0.0)
        with pytest.raises(ValueError):
            complementary_filter(np.zeros(3), np.zeros(3), dt=0.1, alpha=1.5)

    def test_empty(self):
        assert complementary_filter(np.zeros(0), np.zeros(0), 0.1).size == 0


class TestSmoothers:
    def test_moving_average_constant(self):
        x = np.full(10, 3.0)
        assert np.allclose(moving_average(x, 4), 3.0)

    def test_moving_average_reduces_noise(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(500)
        assert moving_average(x, 10).std() < x.std() * 0.6

    def test_moving_average_length_preserved(self):
        assert moving_average(np.arange(7, dtype=float), 3).size == 7

    def test_moving_average_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(3), 0)

    def test_exponential_smoother_alpha_one_is_identity(self):
        x = np.array([1.0, 5.0, -2.0])
        assert np.array_equal(exponential_smoother(x, 1.0), x)

    def test_exponential_smoother_converges_to_constant(self):
        x = np.concatenate([[0.0], np.full(200, 4.0)])
        y = exponential_smoother(x, 0.2)
        assert y[-1] == pytest.approx(4.0, abs=1e-6)

    def test_exponential_invalid_alpha(self):
        with pytest.raises(ValueError):
            exponential_smoother(np.ones(3), 0.0)
