"""Tests for prior-driven basis learning from field history."""

import numpy as np
import pytest

from repro.core.basis import dct_basis
from repro.core.reconstruction import reconstruct
from repro.core.sampling import random_locations
from repro.fields.field import SpatialField
from repro.fields.generators import smooth_field
from repro.fields.priors import (
    build_zone_prior,
    estimate_prior_sparsity,
    learn_prior_basis,
)
from repro.fields.temporal import FieldTrace, ar1_evolution, evolve_field


def _low_rank_trace(t=20, w=8, h=8, rank=3, seed=0):
    """Fields drawn from a rank-3 process, as one zone's history."""
    rng = np.random.default_rng(seed)
    factors = rng.standard_normal((rank, w * h))
    trace = FieldTrace()
    for step in range(t):
        weights = rng.standard_normal(rank) * np.array([5.0, 2.0, 1.0])[:rank]
        x = weights @ factors + 20.0
        trace.append(SpatialField.from_vector(x, w, h), float(step))
    return trace


class TestLearnPriorBasis:
    def test_orthogonal(self):
        phi = learn_prior_basis(_low_rank_trace())
        assert phi.shape == (64, 64)
        assert np.allclose(phi.T @ phi, np.eye(64), atol=1e-8)

    def test_needs_two_snapshots(self):
        trace = FieldTrace()
        trace.append(SpatialField(grid=np.zeros((2, 2))), 0.0)
        with pytest.raises(ValueError):
            learn_prior_basis(trace)


class TestEstimatePriorSparsity:
    def test_low_rank_process_is_low(self):
        trace = _low_rank_trace(rank=3)
        basis = learn_prior_basis(trace)
        k = estimate_prior_sparsity(trace, basis=basis)
        assert k <= 3

    def test_defaults_to_dct(self):
        initial = smooth_field(8, 8, cutoff=0.2, rng=1)
        trace = evolve_field(
            initial, ar1_evolution(rho=0.95, innovation_std=0.05),
            steps=10, rng=2,
        )
        k = estimate_prior_sparsity(trace)
        assert 1 <= k <= 64

    def test_empty_trace(self):
        with pytest.raises(ValueError):
            estimate_prior_sparsity(FieldTrace())

    def test_basis_shape_check(self):
        trace = _low_rank_trace()
        with pytest.raises(ValueError):
            estimate_prior_sparsity(trace, basis=np.eye(10))


class TestZonePrior:
    def test_center_uncenter_roundtrip(self):
        prior = build_zone_prior(_low_rank_trace())
        x = np.random.default_rng(3).standard_normal(64)
        loc = np.arange(0, 64, 4)
        centered = prior.center(x[loc], loc)
        assert np.allclose(
            centered + prior.mean_vector[loc], x[loc], atol=1e-12
        )
        assert np.allclose(
            prior.uncenter(x) - prior.mean_vector, x, atol=1e-12
        )

    def test_prior_basis_beats_dct_on_process_fields(self):
        """The headline claim: a basis learned from zone history needs
        fewer measurements than generic DCT for the same accuracy."""
        trace = _low_rank_trace(t=30, seed=4)
        prior = build_zone_prior(trace)
        # A fresh field from the same process:
        rng = np.random.default_rng(99)
        factors_trace = trace.matrix() - trace.matrix().mean(axis=0)
        # build new sample inside the same subspace:
        combo = rng.standard_normal(trace.t)
        x = trace.matrix().mean(axis=0) + combo @ factors_trace / np.sqrt(trace.t)
        m = 12
        loc = random_locations(64, m, rng)
        centered = x[loc] - prior.mean_vector[loc]
        with_prior = reconstruct(
            centered, loc, prior.basis, solver="omp",
            sparsity=max(prior.typical_sparsity, 3),
        )
        err_prior = np.linalg.norm(
            prior.uncenter(with_prior.x_hat) - x
        ) / np.linalg.norm(x)
        generic = reconstruct(
            x[loc], loc, dct_basis(64), solver="omp", sparsity=6
        )
        err_dct = np.linalg.norm(generic.x_hat - x) / np.linalg.norm(x)
        assert err_prior < err_dct
