"""Tests for zone partitioning and measurement allocation (Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields.field import SpatialField
from repro.fields.generators import urban_temperature_field
from repro.fields.zones import Zone, ZoneGrid, allocate_measurements


class TestZone:
    def test_n(self):
        assert Zone(0, 0, 0, 4, 3).n == 12

    def test_local_to_global_identity_when_origin_zero(self):
        zone = Zone(0, 0, 0, 4, 3)
        for k in range(zone.n):
            assert zone.local_to_global(k, parent_height=3) == k

    def test_local_to_global_offset(self):
        # Parent 8 wide x 4 high; zone at x0=4, y0=2, 2x2.
        zone = Zone(1, 4, 2, 2, 2)
        # local k=0 -> (i=4, j=2) -> global 4*4+2 = 18
        assert zone.local_to_global(0, parent_height=4) == 18

    def test_local_out_of_range(self):
        with pytest.raises(IndexError):
            Zone(0, 0, 0, 2, 2).local_to_global(4, 4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Zone(0, 0, 0, 0, 2)
        with pytest.raises(ValueError):
            Zone(0, -1, 0, 2, 2)
        with pytest.raises(ValueError):
            Zone(0, 0, 0, 2, 2, criticality=-1.0)


class TestZoneGrid:
    def test_partition_is_exact(self):
        zg = ZoneGrid(12, 8, 3, 2)
        assert len(zg) == 6
        covered = set()
        for zone in zg:
            for i in range(zone.x0, zone.x0 + zone.width):
                for j in range(zone.y0, zone.y0 + zone.height):
                    assert (i, j) not in covered
                    covered.add((i, j))
        assert len(covered) == 96

    def test_rejects_uneven_split(self):
        with pytest.raises(ValueError):
            ZoneGrid(10, 8, 3, 2)

    def test_extract_assemble_roundtrip(self, small_field):
        zg = ZoneGrid(small_field.width, small_field.height, 4, 2)
        subs = {z.zone_id: zg.extract(small_field, z) for z in zg}
        rebuilt = zg.assemble(subs)
        assert np.array_equal(rebuilt.grid, small_field.grid)

    def test_assemble_missing_zone(self, small_field):
        zg = ZoneGrid(small_field.width, small_field.height, 2, 2)
        subs = {z.zone_id: zg.extract(small_field, z) for z in zg}
        del subs[0]
        with pytest.raises(ValueError, match="missing"):
            zg.assemble(subs)

    def test_assemble_wrong_shape(self, small_field):
        zg = ZoneGrid(small_field.width, small_field.height, 2, 2)
        subs = {z.zone_id: zg.extract(small_field, z) for z in zg}
        subs[0] = SpatialField(grid=np.zeros((1, 1)))
        with pytest.raises(ValueError):
            zg.assemble(subs)

    def test_extract_checks_parent_shape(self):
        zg = ZoneGrid(8, 8, 2, 2)
        wrong = SpatialField(grid=np.zeros((4, 4)))
        with pytest.raises(ValueError):
            zg.extract(wrong, zg.zones[0])

    def test_criticality_matrix(self):
        crit = np.array([[1.0, 2.0], [3.0, 4.0]])
        zg = ZoneGrid(8, 8, 2, 2, criticality=crit)
        assert [z.criticality for z in zg] == [1.0, 2.0, 3.0, 4.0]

    def test_criticality_shape_check(self):
        with pytest.raises(ValueError):
            ZoneGrid(8, 8, 2, 2, criticality=np.ones((3, 2)))

    def test_local_sparsities_reflect_structure(self):
        """Zones containing a heat island need more coefficients."""
        truth = urban_temperature_field(
            32, 16, n_heat_islands=0, gradient=0.0, rng=0
        )
        # Add one sharp island confined to the left half.
        xs, ys = np.meshgrid(np.arange(32), np.arange(16))
        bump = 10.0 * np.exp(-(((xs - 4) ** 2 + (ys - 8) ** 2) / 4.0))
        truth = SpatialField(grid=truth.grid + bump)
        zg = ZoneGrid(32, 16, 2, 1)
        sparsities = zg.local_sparsities(truth)
        assert sparsities[0] > sparsities[1]


class TestAllocateMeasurements:
    def _grid(self):
        return ZoneGrid(16, 16, 2, 2)

    def test_sums_to_budget(self):
        zg = self._grid()
        sparsities = {0: 2, 1: 8, 2: 4, 3: 16}
        alloc = allocate_measurements(zg, sparsities, total_budget=100)
        assert sum(alloc.values()) == 100

    def test_sparser_zones_get_fewer(self):
        zg = self._grid()
        sparsities = {0: 1, 1: 30, 2: 1, 3: 30}
        alloc = allocate_measurements(zg, sparsities, total_budget=80)
        assert alloc[1] > alloc[0]
        assert alloc[3] > alloc[2]

    def test_criticality_shifts_allocation(self):
        crit = np.array([[5.0, 1.0], [1.0, 1.0]])
        zg = ZoneGrid(16, 16, 2, 2, criticality=crit)
        sparsities = {i: 8 for i in range(4)}
        alloc = allocate_measurements(zg, sparsities, total_budget=80)
        assert alloc[0] > alloc[1]

    def test_respects_min_per_zone(self):
        zg = self._grid()
        sparsities = {0: 1, 1: 100, 2: 1, 3: 100}
        alloc = allocate_measurements(
            zg, sparsities, total_budget=60, min_per_zone=5
        )
        assert all(v >= 5 for v in alloc.values())

    def test_respects_zone_capacity(self):
        zg = self._grid()  # each zone has 64 cells
        sparsities = {0: 1000, 1: 1, 2: 1, 3: 1}
        alloc = allocate_measurements(zg, sparsities, total_budget=120)
        assert alloc[0] <= 64

    @given(budget=st.integers(min_value=12, max_value=256))
    @settings(max_examples=30, deadline=None)
    def test_budget_always_exact_within_feasible_range(self, budget):
        zg = ZoneGrid(16, 16, 2, 2)
        sparsities = {0: 3, 1: 9, 2: 5, 3: 20}
        alloc = allocate_measurements(zg, sparsities, budget)
        assert sum(alloc.values()) == budget
        for zone in zg:
            assert 3 <= alloc[zone.zone_id] <= zone.n

    def test_infeasible_budgets_rejected(self):
        zg = self._grid()
        sparsities = {i: 4 for i in range(4)}
        with pytest.raises(ValueError):
            allocate_measurements(zg, sparsities, total_budget=4)
        with pytest.raises(ValueError):
            allocate_measurements(zg, sparsities, total_budget=1000)

    def test_sparsities_must_cover_zones(self):
        zg = self._grid()
        with pytest.raises(ValueError):
            allocate_measurements(zg, {0: 4}, total_budget=40)
