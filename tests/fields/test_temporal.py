"""Tests for field traces and evolution models."""

import numpy as np
import pytest

from repro.fields.field import SpatialField
from repro.fields.generators import gaussian_plume_field, smooth_field
from repro.fields.temporal import (
    FieldTrace,
    ar1_evolution,
    drift_plume,
    evolve_field,
)


def _field(value=0.0, w=6, h=4):
    return SpatialField(grid=np.full((h, w), float(value)))


class TestFieldTrace:
    def test_append_and_matrix(self):
        trace = FieldTrace()
        trace.append(_field(1.0), 0.0)
        trace.append(_field(2.0), 1.0)
        matrix = trace.matrix()
        assert matrix.shape == (2, 24)
        assert np.all(matrix[0] == 1.0) and np.all(matrix[1] == 2.0)

    def test_timestamps_must_increase(self):
        trace = FieldTrace()
        trace.append(_field(), 5.0)
        with pytest.raises(ValueError):
            trace.append(_field(), 5.0)
        with pytest.raises(ValueError):
            trace.append(_field(), 4.0)

    def test_shape_consistency_enforced(self):
        trace = FieldTrace()
        trace.append(_field(w=6, h=4), 0.0)
        with pytest.raises(ValueError):
            trace.append(_field(w=4, h=6), 1.0)

    def test_mismatched_init_lists(self):
        with pytest.raises(ValueError):
            FieldTrace(snapshots=[_field()], timestamps=[])

    def test_iteration_order(self):
        trace = FieldTrace()
        for t in (0.0, 1.0, 2.0):
            trace.append(_field(t), t)
        times = [t for t, _ in trace]
        assert times == [0.0, 1.0, 2.0]

    def test_mean_field(self):
        trace = FieldTrace()
        trace.append(_field(0.0), 0.0)
        trace.append(_field(4.0), 1.0)
        assert np.allclose(trace.mean_field().grid, 2.0)

    def test_empty_trace_errors(self):
        trace = FieldTrace()
        with pytest.raises(ValueError):
            trace.matrix()
        with pytest.raises(ValueError):
            trace.mean_field()


class TestEvolveField:
    def test_records_initial_plus_steps(self):
        initial = smooth_field(8, 8, rng=0)
        trace = evolve_field(initial, ar1_evolution(), steps=5, rng=1)
        assert len(trace) == 6
        assert trace.timestamps == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert trace.at(0) is initial

    def test_invalid_args(self):
        initial = _field()
        with pytest.raises(ValueError):
            evolve_field(initial, ar1_evolution(), steps=-1)
        with pytest.raises(ValueError):
            evolve_field(initial, ar1_evolution(), steps=2, dt=0.0)


class TestAR1Evolution:
    def test_preserves_mean_roughly(self):
        initial = _field(10.0)
        trace = evolve_field(
            initial, ar1_evolution(rho=0.9, innovation_std=0.1), steps=20, rng=2
        )
        assert abs(trace.at(-1).grid.mean() - 10.0) < 1.0

    def test_zero_innovation_contracts_to_mean(self):
        rng = np.random.default_rng(3)
        initial = SpatialField(grid=rng.standard_normal((5, 5)) * 10)
        step = ar1_evolution(rho=0.5, innovation_std=0.0)
        trace = evolve_field(initial, step, steps=30, rng=4)
        final = trace.at(-1).grid
        assert final.std() < initial.grid.std() * 0.01

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ar1_evolution(rho=1.5)
        with pytest.raises(ValueError):
            ar1_evolution(innovation_std=-0.1)


class TestDriftPlume:
    def test_total_mass_decays(self):
        initial = gaussian_plume_field(20, 20, rng=5)
        step = drift_plume(velocity=(1.0, 0.0), decay=0.9)
        trace = evolve_field(initial, step, steps=5, rng=6)
        masses = [snap.grid.sum() for _, snap in trace]
        assert all(b < a for a, b in zip(masses, masses[1:]))

    def test_no_decay_preserves_mass(self):
        initial = gaussian_plume_field(16, 16, rng=7)
        step = drift_plume(velocity=(0.5, 0.5), decay=1.0)
        trace = evolve_field(initial, step, steps=3, rng=8)
        assert trace.at(-1).grid.sum() == pytest.approx(
            initial.grid.sum(), rel=1e-6
        )

    def test_advection_moves_centroid(self):
        grid = np.zeros((16, 16))
        grid[8, 4] = 100.0
        initial = SpatialField(grid=grid)
        step = drift_plume(velocity=(3.0, 0.0), decay=1.0)
        trace = evolve_field(initial, step, steps=1, rng=0)
        moved = trace.at(-1).grid
        xs = np.arange(16)
        centroid_before = (grid.sum(axis=0) @ xs) / grid.sum()
        centroid_after = (moved.sum(axis=0) @ xs) / moved.sum()
        assert centroid_after > centroid_before + 2.0

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            drift_plume(decay=0.0)
