"""Tests for spatial/temporal coverage metrics ([28]-style)."""

import numpy as np
import pytest

from repro.fields.coverage import (
    coverage_report,
    largest_gap_radius,
    spatial_coverage,
    temporal_coverage,
)


class TestSpatialCoverage:
    def test_strict_fraction(self):
        assert spatial_coverage(np.array([0, 1, 2]), n=12) == 0.25

    def test_duplicates_counted_once(self):
        assert spatial_coverage(np.array([3, 3, 3]), n=12) == 1 / 12

    def test_radius_one_expands_coverage(self):
        # One sample in the middle of a 4x4 zone covers its 3x3 patch.
        n, height = 16, 4
        center = 1 * 4 + 1  # (i=1, j=1)
        strict = spatial_coverage(np.array([center]), n)
        relaxed = spatial_coverage(
            np.array([center]), n, cell_radius=1, height=height
        )
        assert strict == 1 / 16
        assert relaxed == 9 / 16

    def test_full_coverage(self):
        assert spatial_coverage(np.arange(16), 16) == 1.0

    def test_radius_needs_height(self):
        with pytest.raises(ValueError):
            spatial_coverage(np.array([0]), 16, cell_radius=1)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            spatial_coverage(np.array([16]), 16)


class TestLargestGap:
    def test_sample_everywhere_is_zero(self):
        assert largest_gap_radius(np.arange(16), 16, height=4) == 0.0

    def test_corner_sample_gap(self):
        # Only cell (0,0) sampled in a 4x4 zone -> farthest cell (3,3)
        # is Chebyshev distance 3 away.
        assert largest_gap_radius(np.array([0]), 16, height=4) == 3.0

    def test_no_samples(self):
        with pytest.raises(ValueError):
            largest_gap_radius(np.array([], dtype=int), 16, height=4)


class TestTemporalCoverage:
    def test_dense_sampling_full_coverage(self):
        times = np.arange(0, 100, 5.0)
        assert temporal_coverage(times, (0.0, 100.0), max_staleness=10.0) == 1.0

    def test_gap_reduces_coverage(self):
        times = np.array([0.0, 50.0])
        fraction = temporal_coverage(times, (0.0, 100.0), max_staleness=10.0)
        assert fraction == pytest.approx(0.2)

    def test_overlapping_intervals_not_double_counted(self):
        times = np.array([0.0, 1.0, 2.0])
        fraction = temporal_coverage(times, (0.0, 10.0), max_staleness=5.0)
        assert fraction == pytest.approx(0.7)

    def test_empty(self):
        assert temporal_coverage(np.array([]), (0.0, 10.0), 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            temporal_coverage(np.array([0.0]), (5.0, 5.0), 1.0)
        with pytest.raises(ValueError):
            temporal_coverage(np.array([0.0]), (0.0, 5.0), 0.0)


class TestReport:
    def test_combined_report(self):
        report = coverage_report(
            locations=np.array([0, 5, 10, 15]),
            timestamps=np.arange(0, 60, 10.0),
            n=16,
            height=4,
            window=(0.0, 60.0),
            max_staleness=15.0,
        )
        assert 0.0 < report.spatial_fraction <= 1.0
        assert report.spatial_fraction_r1 >= report.spatial_fraction
        assert report.largest_gap >= 0.0
        assert report.temporal_fraction == 1.0
        assert report.quality == min(
            report.spatial_fraction_r1, report.temporal_fraction
        )
