"""Tests for SpatialField and the eq.-(1) vectorisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields.field import SpatialField, devectorize, vectorize


class TestVectorize:
    def test_column_stacking_order(self):
        """Eq. (1): columns of the map occupy contiguous runs."""
        grid = np.array([[1.0, 3.0], [2.0, 4.0]])  # H=2, W=2
        assert np.array_equal(vectorize(grid), [1.0, 2.0, 3.0, 4.0])

    @given(
        w=st.integers(min_value=1, max_value=12),
        h=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, w, h):
        rng = np.random.default_rng(w * 100 + h)
        grid = rng.standard_normal((h, w))
        assert np.array_equal(devectorize(vectorize(grid), w, h), grid)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            vectorize(np.ones(4))

    def test_devectorize_length_mismatch(self):
        with pytest.raises(ValueError):
            devectorize(np.ones(5), 2, 2)

    def test_devectorize_bad_dims(self):
        with pytest.raises(ValueError):
            devectorize(np.ones(4), 0, 4)


class TestSpatialField:
    def test_dimensions(self):
        f = SpatialField(grid=np.zeros((3, 5)))
        assert f.width == 5 and f.height == 3 and f.n == 15

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SpatialField(grid=np.zeros((0, 3)))

    def test_from_vector_roundtrip(self):
        rng = np.random.default_rng(0)
        f = SpatialField(grid=rng.standard_normal((4, 6)))
        g = SpatialField.from_vector(f.vector(), f.width, f.height)
        assert np.array_equal(f.grid, g.grid)

    @given(
        i=st.integers(min_value=0, max_value=5),
        j=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=24, deadline=None)
    def test_index_coords_roundtrip(self, i, j):
        f = SpatialField(grid=np.zeros((4, 6)))
        k = f.index_of(i, j)
        assert f.coords_of(k) == (i, j)

    def test_value_at_matches_grid(self):
        rng = np.random.default_rng(1)
        f = SpatialField(grid=rng.standard_normal((4, 6)))
        for k in range(f.n):
            i, j = f.coords_of(k)
            assert f.value_at(k) == f.grid[j, i]
            assert f.vector()[k] == f.value_at(k)

    def test_index_out_of_range(self):
        f = SpatialField(grid=np.zeros((2, 2)))
        with pytest.raises(IndexError):
            f.index_of(2, 0)
        with pytest.raises(IndexError):
            f.coords_of(4)
        with pytest.raises(IndexError):
            f.value_at(-1)

    def test_sample_noiseless(self):
        f = SpatialField(grid=np.arange(6, dtype=float).reshape(2, 3))
        loc = np.array([0, 3, 5])
        assert np.array_equal(f.sample(loc), f.vector()[loc])

    def test_sample_noise_statistics(self):
        f = SpatialField(grid=np.zeros((10, 10)))
        samples = f.sample(np.arange(100), noise_std=2.0, rng=0)
        assert 1.5 < samples.std() < 2.5

    def test_sample_heterogeneous_noise(self):
        f = SpatialField(grid=np.zeros((1, 2)))
        stds = np.array([0.0, 10.0])
        draws = np.array(
            [f.sample(np.array([0, 1]), stds, rng=s) for s in range(50)]
        )
        assert np.all(draws[:, 0] == 0.0)
        assert draws[:, 1].std() > 5.0

    def test_sample_negative_noise_rejected(self):
        f = SpatialField(grid=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            f.sample(np.array([0]), noise_std=-1.0)

    def test_subfield_extracts_rectangle(self):
        grid = np.arange(24, dtype=float).reshape(4, 6)
        f = SpatialField(grid=grid)
        sub = f.subfield(2, 1, 3, 2)
        assert np.array_equal(sub.grid, grid[1:3, 2:5])

    def test_subfield_out_of_bounds(self):
        f = SpatialField(grid=np.zeros((4, 6)))
        with pytest.raises(ValueError):
            f.subfield(4, 0, 3, 2)
        with pytest.raises(ValueError):
            f.subfield(0, 0, 0, 2)

    def test_rmse_to(self):
        a = SpatialField(grid=np.zeros((2, 2)))
        b = SpatialField(grid=np.full((2, 2), 3.0))
        assert a.rmse_to(b) == pytest.approx(3.0)

    def test_rmse_shape_mismatch(self):
        a = SpatialField(grid=np.zeros((2, 2)))
        b = SpatialField(grid=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            a.rmse_to(b)
