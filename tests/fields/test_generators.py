"""Tests for the synthetic field generators."""

import numpy as np
import pytest

from repro.core.basis import dct_basis
from repro.core.sparsity import energy_sparsity
from repro.fields.generators import (
    fire_intensity_field,
    gaussian_plume_field,
    indicator_field,
    smooth_field,
    sparse_dct_field,
    urban_temperature_field,
)


class TestSmoothField:
    def test_shape_and_offset(self):
        f = smooth_field(16, 8, offset=20.0, amplitude=5.0, rng=0)
        assert (f.width, f.height) == (16, 8)
        assert 15.0 <= f.grid.mean() <= 25.0

    def test_deterministic_by_seed(self):
        a = smooth_field(8, 8, rng=5)
        b = smooth_field(8, 8, rng=5)
        assert np.array_equal(a.grid, b.grid)

    def test_smaller_cutoff_is_sparser(self):
        phi = dct_basis(16 * 16)
        smoother = smooth_field(16, 16, cutoff=0.08, rng=1)
        rougher = smooth_field(16, 16, cutoff=0.5, rng=1)
        k_smooth = energy_sparsity(phi.T @ (smoother.vector() - smoother.vector().mean()), 0.99)
        k_rough = energy_sparsity(phi.T @ (rougher.vector() - rougher.vector().mean()), 0.99)
        assert k_smooth < k_rough

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            smooth_field(8, 8, cutoff=0.0)


class TestPlumeField:
    def test_nonnegative_above_background(self):
        f = gaussian_plume_field(20, 20, background=1.0, rng=2)
        assert np.all(f.grid >= 1.0 - 1e-12)

    def test_peak_scales_with_intensity(self):
        low = gaussian_plume_field(20, 20, max_intensity=10.0, rng=3)
        high = gaussian_plume_field(20, 20, max_intensity=1000.0, rng=3)
        assert high.grid.max() > low.grid.max() * 10

    def test_zero_sources_is_flat(self):
        f = gaussian_plume_field(10, 10, n_sources=0, background=5.0, rng=0)
        assert np.allclose(f.grid, 5.0)

    def test_negative_sources_rejected(self):
        with pytest.raises(ValueError):
            gaussian_plume_field(10, 10, n_sources=-1)


class TestSparseDCTField:
    def test_exact_sparsity(self):
        field, alpha = sparse_dct_field(8, 8, sparsity=5, rng=4)
        assert np.count_nonzero(alpha) == 5
        phi = dct_basis(64)
        assert np.allclose(field.vector(), phi @ alpha, atol=1e-10)

    def test_low_frequency_support(self):
        _, alpha = sparse_dct_field(
            8, 8, sparsity=4, low_frequency_fraction=0.25, rng=5
        )
        assert np.flatnonzero(alpha).max() < 16

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            sparse_dct_field(4, 4, sparsity=0)
        with pytest.raises(ValueError):
            sparse_dct_field(4, 4, sparsity=17)


class TestIndicatorField:
    def test_binary_values(self):
        f = indicator_field(20, 20, rng=6)
        assert set(np.unique(f.grid).tolist()) <= {0.0, 1.0}

    def test_zero_regions_is_all_outdoor(self):
        f = indicator_field(10, 10, n_regions=0, rng=0)
        assert np.all(f.grid == 0.0)

    def test_regions_create_indoor_cells(self):
        f = indicator_field(20, 20, n_regions=6, rng=7)
        assert f.grid.sum() > 0

    def test_invalid_region_size(self):
        with pytest.raises(ValueError):
            indicator_field(10, 10, region_size=(5, 3))


class TestUrbanTemperature:
    def test_gradient_direction(self):
        f = urban_temperature_field(
            32, 8, gradient=5.0, n_heat_islands=0, rng=0
        )
        assert f.grid[:, -1].mean() > f.grid[:, 0].mean() + 3.0

    def test_heat_islands_raise_peak(self):
        flat = urban_temperature_field(24, 24, n_heat_islands=0, rng=8)
        bumpy = urban_temperature_field(
            24, 24, n_heat_islands=3, island_intensity=10.0, rng=8
        )
        assert bumpy.grid.max() > flat.grid.max() + 3.0


class TestFireField:
    def test_front_separates_hot_and_cold(self):
        f = fire_intensity_field(
            40, 10, front_position=0.5, hotspots=0, rng=9
        )
        left = f.grid[:, :10].mean()  # behind the front: burning
        right = f.grid[:, 30:].mean()  # ahead: near ambient
        assert left > 50 * max(right, 1e-9)

    def test_front_position_moves_front(self):
        early = fire_intensity_field(40, 10, front_position=0.2, hotspots=0, rng=0)
        late = fire_intensity_field(40, 10, front_position=0.8, hotspots=0, rng=0)
        assert late.grid.sum() > early.grid.sum()  # more area burning

    def test_invalid_front(self):
        with pytest.raises(ValueError):
            fire_intensity_field(10, 10, front_position=1.5)
        with pytest.raises(ValueError):
            fire_intensity_field(10, 10, front_width=0.0)
