"""End-to-end integration tests across subsystem boundaries.

Each test exercises a pipeline a real deployment would run, asserting
the paper's qualitative claims hold through the full stack rather than
in isolated units.
"""

import numpy as np
import pytest

import repro
from repro.baselines import dense_gather, global_cs_gather, uniform_gather
from repro.core import metrics
from repro.fields import urban_temperature_field
from repro.middleware import (
    BrokerConfig,
    CompressionPolicy,
    HierarchyConfig,
    SenseDroid,
)
from repro.sensors import Environment


class TestPublicAPI:
    def test_quickstart_from_docstring(self):
        """The package docstring example must actually run."""
        truth = repro.urban_temperature_field(32, 16, rng=3)
        env = repro.Environment(fields={"temperature": truth})
        system = repro.SenseDroid(env, rng=42)
        estimate = system.sense_field()
        assert system.estimate_error(estimate) < 0.5

    def test_version(self):
        assert repro.__version__

    def test_all_subpackages_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestCompressiveVsBaselines:
    """The headline: compressive collaborative sensing reads a fraction
    of the nodes yet reconstructs nearly as well as dense gathering."""

    def _system(self, truth, seed=11):
        env = Environment(fields={"temperature": truth})
        return SenseDroid(
            env,
            hierarchy_config=HierarchyConfig(
                zones_x=4, zones_y=2, nodes_per_nanocloud=64
            ),
            broker_config=BrokerConfig(
                seed=seed, policy=CompressionPolicy(mode="sparsity")
            ),
            rng=seed,
        )

    def test_fraction_of_measurements_low_error(self):
        truth = urban_temperature_field(32, 16, rng=3)
        system = self._system(truth)
        system.sense_field()  # warm-up
        estimate = system.sense_field()
        err = system.estimate_error(estimate)
        ratio = estimate.total_measurements / truth.n
        assert ratio < 0.6
        assert err < 0.05

    def test_beats_uniform_subsampling_in_aliasing_regime(self):
        """CS's advantage over uniform subsampling is the aliasing
        regime: content above the uniform-sampling Nyquist rate (the
        engine tone of the Fig. 4 accelerometer window, sharp spatial
        modes) folds down under uniform sampling but is recovered
        exactly from the same number of *random* samples.  (On very
        smooth fields uniform interpolation is a competitive baseline —
        see EXPERIMENTS.md.)"""
        from repro.core.basis import dct_basis
        from repro.core.reconstruction import reconstruct
        from repro.sensors import accelerometer_window

        n, m = 256, 32
        phi = dct_basis(n)
        cs_errs, uniform_errs = [], []
        for seed in range(6):
            window = accelerometer_window("driving", n, rng=seed)
            # Uniform: every 8th sample + linear interpolation.
            uniform_result = np.interp(
                np.arange(n, dtype=float),
                np.arange(0, n, n // m, dtype=float),
                window[:: n // m],
            )
            uniform_errs.append(metrics.relative_error(window, uniform_result))
            loc = np.sort(
                np.random.default_rng(seed).choice(n, m, replace=False)
            )
            result = reconstruct(
                window[loc], loc, phi, solver="omp", sparsity=m // 2
            )
            cs_errs.append(metrics.relative_error(window, result.x_hat))
        assert np.median(cs_errs) < 0.6 * np.median(uniform_errs)

    def test_dense_costs_more_messages(self):
        truth = urban_temperature_field(16, 8, rng=5)
        system = self._system(truth, seed=17)
        estimate = system.sense_field()
        commands = system.hierarchy.bus.stats.by_kind["sense_command"]
        dense = dense_gather(truth)
        assert commands < dense.messages / 2


class TestPrivacyEndToEnd:
    def test_opted_out_nodes_never_contribute(self):
        truth = urban_temperature_field(16, 8, rng=7)
        env = Environment(fields={"temperature": truth})
        system = SenseDroid(
            env,
            hierarchy_config=HierarchyConfig(
                zones_x=2, zones_y=1, nodes_per_nanocloud=64
            ),
            broker_config=BrokerConfig(seed=19),
            rng=19,
        )
        # Opt out half the fleet.
        opted_out = []
        for lc in system.hierarchy.localclouds.values():
            for nc in lc.nanoclouds:
                for idx, node in enumerate(nc.nodes.values()):
                    if idx % 2 == 0:
                        node.policy.opt_out()
                        opted_out.append(node)
        estimate = system.sense_field()
        # Refused commands appear in diagnostics, nothing from opted-out.
        refused = sum(
            e.reports_refused
            for r in estimate.zone_results.values()
            for e in r.nc_estimates
        )
        assert refused > 0
        for node in opted_out:
            assert node.audit.total_shared() == 0
        # System still produces a usable estimate from the willing half.
        assert system.estimate_error(estimate) < 0.5


class TestHeterogeneityEndToEnd:
    def test_gls_configuration_improves_on_ols_with_mixed_fleet(self):
        truth = urban_temperature_field(16, 8, rng=21)

        def run(use_gls, seed):
            env = Environment(fields={"temperature": truth})
            system = SenseDroid(
                env,
                hierarchy_config=HierarchyConfig(
                    zones_x=2, zones_y=1, nodes_per_nanocloud=96
                ),
                broker_config=BrokerConfig(
                    seed=seed, use_gls=use_gls, solver="chs"
                ),
                rng=seed,  # same seed -> same fleet/tier layout
            )
            system.sense_field(total_budget=64)
            estimate = system.sense_field(total_budget=64)
            return system.estimate_error(estimate)

        gls_errors = [run(True, s) for s in range(23, 28)]
        ols_errors = [run(False, s) for s in range(23, 28)]
        assert np.mean(gls_errors) <= np.mean(ols_errors) * 1.25


class TestGlobalCSBaselineComparison:
    def test_hierarchical_needs_far_fewer_transmissions(self):
        """Hierarchical: O(M) single-hop reports.  Luo et al. global CS:
        O(N*M) relay transmissions (Section 2's critique)."""
        truth = urban_temperature_field(32, 16, rng=25)
        m = 100
        global_result = global_cs_gather(truth, m=m, rng=0)
        hierarchical_transmissions = 2 * m  # command + report per node
        assert global_result.transmissions > 50 * hierarchical_transmissions
