"""Tests for mobility models."""

import numpy as np
import pytest

from repro.fields.generators import indicator_field
from repro.mobility.models import (
    GaussMarkov,
    RandomWaypoint,
    StaticPlacement,
    mode_from_speed,
)
from repro.sensors.base import Environment, NodeState


class TestModeFromSpeed:
    def test_thresholds(self):
        assert mode_from_speed(0.0) == "idle"
        assert mode_from_speed(1.0) == "walking"
        assert mode_from_speed(10.0) == "driving"


class TestStatic:
    def test_never_moves(self):
        model = StaticPlacement(10, 10)
        state = NodeState(x=3.0, y=4.0)
        for _ in range(10):
            model.step(state, 1.0)
        assert state.position() == (3.0, 4.0)
        assert state.mode == "idle"

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            StaticPlacement(10, 10).step(NodeState(), -1.0)


class TestRandomWaypoint:
    def test_stays_in_bounds(self):
        model = RandomWaypoint(20, 10, rng=0)
        state = NodeState(x=5.0, y=5.0)
        for _ in range(500):
            model.step(state, 0.5)
            assert 0 <= state.x <= 20
            assert 0 <= state.y <= 10

    def test_actually_moves(self):
        model = RandomWaypoint(20, 20, pause_range=(0.0, 0.0), rng=1)
        state = NodeState(x=10.0, y=10.0)
        start = state.position()
        for _ in range(20):
            model.step(state, 1.0)
        assert state.position() != start

    def test_mode_follows_speed(self):
        model = RandomWaypoint(
            50, 50, speed_range=(1.0, 1.5), pause_range=(0.0, 0.0), rng=2
        )
        state = NodeState(x=25.0, y=25.0)
        model.step(state, 0.1)
        assert state.mode == "walking"

    def test_pause_produces_idle(self):
        model = RandomWaypoint(
            5, 5, speed_range=(10.0, 10.0), pause_range=(5.0, 5.0), rng=3
        )
        state = NodeState(x=2.0, y=2.0)
        saw_idle = False
        for _ in range(50):
            model.step(state, 1.0)
            saw_idle = saw_idle or state.mode == "idle"
        assert saw_idle

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            RandomWaypoint(10, 10, speed_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypoint(10, 10, pause_range=(-1.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypoint(0, 10)


class TestGaussMarkov:
    def test_stays_in_bounds(self):
        model = GaussMarkov(30, 30, rng=4)
        state = NodeState(x=15.0, y=15.0, speed=4.0)
        for _ in range(500):
            model.step(state, 0.5)
            assert 0 <= state.x <= 30
            assert 0 <= state.y <= 30

    def test_speed_stays_near_mean(self):
        model = GaussMarkov(1000, 1000, mean_speed=5.0, alpha=0.9, rng=5)
        state = NodeState(x=500.0, y=500.0, speed=5.0)
        speeds = []
        for _ in range(300):
            model.step(state, 1.0)
            speeds.append(state.speed)
        assert 3.0 < np.mean(speeds) < 7.0

    def test_high_alpha_smoother_heading(self):
        def heading_variation(alpha, seed):
            model = GaussMarkov(
                10000, 10000, alpha=alpha, heading_std=0.5, rng=seed
            )
            state = NodeState(x=5000, y=5000, speed=4.0)
            headings = []
            for _ in range(200):
                model.step(state, 1.0)
                headings.append(state.heading)
            return np.std(np.diff(headings))

        smooth = np.mean([heading_variation(0.98, s) for s in range(3)])
        rough = np.mean([heading_variation(0.2, s) for s in range(3)])
        assert smooth < rough

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GaussMarkov(10, 10, alpha=1.5)
        with pytest.raises(ValueError):
            GaussMarkov(10, 10, mean_speed=-1.0)


class TestIndoorUpdate:
    def test_update_indoor_reflects_environment(self):
        env = Environment(indoor_map=indicator_field(8, 8, n_regions=2, rng=0))
        model = StaticPlacement(8, 8)
        grid = env.indoor_map.grid
        j, i = np.argwhere(grid > 0.5)[0]
        state = NodeState(x=float(i), y=float(j))
        model.update_indoor(state, env)
        assert state.indoor is True
