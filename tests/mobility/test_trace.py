"""Tests for mobility trace recording and replay."""

import numpy as np
import pytest

from repro.fields.generators import indicator_field
from repro.mobility.models import RandomWaypoint, StaticPlacement
from repro.mobility.trace import MobilityTrace, record_trace, replay_states
from repro.sensors.base import Environment, NodeState


@pytest.fixture
def env():
    return Environment(indoor_map=indicator_field(16, 16, n_regions=3, rng=0))


class TestMobilityTrace:
    def test_append_requires_increasing_time(self):
        trace = MobilityTrace("n1")
        trace.append(0.0, NodeState())
        with pytest.raises(ValueError):
            trace.append(0.0, NodeState())

    def test_at_step_hold(self):
        trace = MobilityTrace("n1")
        trace.append(0.0, NodeState(x=1.0))
        trace.append(10.0, NodeState(x=2.0))
        assert trace.at(5.0).x == 1.0
        assert trace.at(10.0).x == 2.0
        assert trace.at(99.0).x == 2.0

    def test_at_before_start(self):
        trace = MobilityTrace("n1")
        trace.append(5.0, NodeState())
        with pytest.raises(ValueError):
            trace.at(4.0)

    def test_at_empty(self):
        with pytest.raises(ValueError):
            MobilityTrace("n1").at(0.0)

    def test_mode_fractions(self):
        trace = MobilityTrace("n1")
        trace.append(0.0, NodeState(mode="idle"))
        trace.append(1.0, NodeState(mode="driving"))
        trace.append(2.0, NodeState(mode="driving"))
        fractions = trace.mode_fractions()
        assert fractions["driving"] == pytest.approx(2 / 3)

    def test_indoor_fraction_empty(self):
        assert MobilityTrace("n1").indoor_fraction() == 0.0


class TestRecordTrace:
    def test_record_length_and_times(self, env):
        model = RandomWaypoint(16, 16, rng=1)
        trace = record_trace(
            "n1", NodeState(x=8, y=8), model, env, duration_s=10.0, dt=1.0
        )
        assert len(trace) == 11
        assert trace.points[0].timestamp == 0.0
        assert trace.points[-1].timestamp == 10.0

    def test_indoor_flag_recorded(self, env):
        model = StaticPlacement(16, 16)
        grid = env.indoor_map.grid
        j, i = np.argwhere(grid > 0.5)[0]
        trace = record_trace(
            "n1", NodeState(x=float(i), y=float(j)), model, env,
            duration_s=2.0,
        )
        assert trace.indoor_fraction() == 1.0

    def test_invalid_duration(self, env):
        with pytest.raises(ValueError):
            record_trace(
                "n1", NodeState(), StaticPlacement(4, 4), env, duration_s=0.0
            )


class TestReplay:
    def test_replay_matches_trace(self, env):
        model = RandomWaypoint(16, 16, rng=2)
        trace = record_trace(
            "n1", NodeState(x=8, y=8), model, env, duration_s=20.0
        )
        states = replay_states(trace, np.array([0.0, 5.5, 20.0]))
        assert len(states) == 3
        assert states[0].x == trace.points[0].x
        assert states[1].x == trace.at(5.5).x
        assert states[2].mode == trace.points[-1].mode
