"""Tests for the reproduction-report assembler."""

import pytest

from repro.reporting import (
    EXPERIMENT_ORDER,
    assemble_report,
    main,
    write_report,
)


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "CLM-MKN.txt").write_text("== CLM-MKN: phase transition ==\nrow\n")
    (d / "FIG4.txt").write_text("== FIG4: error vs M ==\nrow\n")
    (d / "ZZZ-CUSTOM.txt").write_text("== ZZZ: custom ==\nrow\n")
    return d


class TestAssemble:
    def test_sections_in_canonical_order(self, results_dir):
        report = assemble_report(results_dir)
        fig4 = report.index("## FIG4")
        mkn = report.index("## CLM-MKN")
        custom = report.index("## ZZZ-CUSTOM")
        assert fig4 < mkn < custom  # FIG4 before CLM-MKN; unknown last

    def test_contents_embedded(self, results_dir):
        report = assemble_report(results_dir)
        assert "phase transition" in report
        assert report.startswith("# SenseDroid reproduction report")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            assemble_report(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FileNotFoundError, match="harness"):
            assemble_report(empty)

    def test_order_covers_all_bench_ids(self):
        # Every bench's record_series id should be in the canonical list
        # (unknown ids still render, but ordered ones read better).
        assert "FIG4" in EXPERIMENT_ORDER
        assert "ABL-POS" in EXPERIMENT_ORDER
        assert len(EXPERIMENT_ORDER) == len(set(EXPERIMENT_ORDER))


class TestWriteAndMain:
    def test_write_report(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "REPORT.md")
        assert out.exists()
        assert "FIG4" in out.read_text()

    def test_main_success(self, results_dir, tmp_path, capsys):
        out = tmp_path / "R.md"
        assert main([str(results_dir), str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_main_failure(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing"), "R.md"]) == 1
        assert "error" in capsys.readouterr().err
