"""Array-backed report frames: one message per zone, not per node.

The per-node protocol of Fig. 2 sends one SENSE_REPORT message per
reading — fine for a 64-node zone, ruinous for a 100k-node city where
the Python bus would shuffle a dict per node per round.  A
:class:`ZoneReportFrame` batches a whole zone's round into three
contiguous arrays (node ids, values, claimed noise stds) carried by a
single :class:`repro.network.message.Message`, whose
``payload_values`` accounts all ``3 m`` scalars so byte/energy metering
stays honest.  The frame arrays are frozen read-only at encode time:
the same object crosses the (in-process) bus, and a consumer mutating
it would silently corrupt the producer's view of the round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .message import Message, MessageKind

__all__ = ["ZoneReportFrame", "encode_zone_report", "decode_zone_report"]

_FRAME_KEY = "zone_report_frame"


@dataclass(frozen=True)
class ZoneReportFrame:
    """One zone's batched sensing round.

    Attributes
    ----------
    zone_id:
        Which zone the reports came from.
    round_index:
        The round the readings belong to (stale-frame detection).
    node_ids:
        Population indices of the reporting nodes, in report order.
    values:
        The noisy readings, aligned with ``node_ids``.
    noise_stds:
        Self-reported measurement stds (the GLS covariance diagonal),
        aligned with ``node_ids``.
    """

    zone_id: int
    round_index: int
    node_ids: np.ndarray
    values: np.ndarray
    noise_stds: np.ndarray

    def __post_init__(self) -> None:
        ids = np.ascontiguousarray(self.node_ids, dtype=np.int64)
        vals = np.ascontiguousarray(self.values, dtype=float)
        stds = np.ascontiguousarray(self.noise_stds, dtype=float)
        if ids.ndim != 1 or vals.shape != ids.shape or stds.shape != ids.shape:
            raise ValueError(
                "node_ids/values/noise_stds must be aligned 1-D arrays, got "
                f"{ids.shape}/{vals.shape}/{stds.shape}"
            )
        for arr, name in ((ids, "node_ids"), (vals, "values"), (stds, "noise_stds")):
            arr.setflags(write=False)
            object.__setattr__(self, name, arr)

    @property
    def report_count(self) -> int:
        return int(self.node_ids.shape[0])


def encode_zone_report(
    frame: ZoneReportFrame,
    *,
    source: str,
    destination: str,
    timestamp: float = 0.0,
) -> Message:
    """Wrap a zone frame in a single SENSE_REPORT message.

    ``payload_values`` declares every scalar the frame carries (ids,
    values, stds), so the bus bills the batched frame the same bytes the
    equivalent per-node messages would have paid in payload — the
    framing overhead (32 bytes x m messages) is the part batching
    legitimately saves.
    """
    return Message(
        kind=MessageKind.SENSE_REPORT,
        source=source,
        destination=destination,
        payload={_FRAME_KEY: frame},
        payload_values=3 * frame.report_count,
        timestamp=timestamp,
    )


def decode_zone_report(message: Message) -> ZoneReportFrame:
    """Extract and validate the zone frame from a SENSE_REPORT message."""
    if message.kind is not MessageKind.SENSE_REPORT:
        raise ValueError(f"not a SENSE_REPORT message: {message.kind}")
    frame = message.payload.get(_FRAME_KEY)
    if not isinstance(frame, ZoneReportFrame):
        raise ValueError("SENSE_REPORT message carries no zone frame")
    return frame
