"""Report frames and the socket wire format.

Two concerns share this module because they are both "how a Message is
packed":

- **Zone report frames** (:class:`ZoneReportFrame`): one batched
  SENSE_REPORT per zone for the city-scale in-process path.
- **Wire codec** (:func:`encode_wire` / :class:`WireDecoder`): the
  length-prefixed JSON framing the socket transports speak — a 4-byte
  big-endian length followed by a UTF-8 JSON body.  Scalars stay plain
  JSON; numpy arrays (including the frozen frame arrays) ride as
  base64-packed raw bytes with explicit dtype/shape, so a frame payload
  survives the socket bit-exactly and decodes back to read-only arrays.

Array-backed report frames: one message per zone, not per node.

The per-node protocol of Fig. 2 sends one SENSE_REPORT message per
reading — fine for a 64-node zone, ruinous for a 100k-node city where
the Python bus would shuffle a dict per node per round.  A
:class:`ZoneReportFrame` batches a whole zone's round into three
contiguous arrays (node ids, values, claimed noise stds) carried by a
single :class:`repro.network.message.Message`, whose
``payload_values`` accounts all ``3 m`` scalars so byte/energy metering
stays honest.  The frame arrays are frozen read-only at encode time:
the same object crosses the (in-process) bus, and a consumer mutating
it would silently corrupt the producer's view of the round.
"""

from __future__ import annotations

import base64
import json
import struct
from dataclasses import dataclass
from typing import Any

import numpy as np

from .message import Message, MessageKind

__all__ = [
    "ZoneReportFrame",
    "encode_zone_report",
    "decode_zone_report",
    "encode_wire",
    "decode_wire_body",
    "WireDecoder",
    "MAX_WIRE_FRAME_BYTES",
]

_FRAME_KEY = "zone_report_frame"


@dataclass(frozen=True)
class ZoneReportFrame:
    """One zone's batched sensing round.

    Attributes
    ----------
    zone_id:
        Which zone the reports came from.
    round_index:
        The round the readings belong to (stale-frame detection).
    node_ids:
        Population indices of the reporting nodes, in report order.
    values:
        The noisy readings, aligned with ``node_ids``.
    noise_stds:
        Self-reported measurement stds (the GLS covariance diagonal),
        aligned with ``node_ids``.
    """

    zone_id: int
    round_index: int
    node_ids: np.ndarray
    values: np.ndarray
    noise_stds: np.ndarray

    def __post_init__(self) -> None:
        ids = np.ascontiguousarray(self.node_ids, dtype=np.int64)
        vals = np.ascontiguousarray(self.values, dtype=float)
        stds = np.ascontiguousarray(self.noise_stds, dtype=float)
        if ids.ndim != 1 or vals.shape != ids.shape or stds.shape != ids.shape:
            raise ValueError(
                "node_ids/values/noise_stds must be aligned 1-D arrays, got "
                f"{ids.shape}/{vals.shape}/{stds.shape}"
            )
        for arr, name in ((ids, "node_ids"), (vals, "values"), (stds, "noise_stds")):
            arr.setflags(write=False)
            object.__setattr__(self, name, arr)

    @property
    def report_count(self) -> int:
        return int(self.node_ids.shape[0])


def encode_zone_report(
    frame: ZoneReportFrame,
    *,
    source: str,
    destination: str,
    timestamp: float = 0.0,
) -> Message:
    """Wrap a zone frame in a single SENSE_REPORT message.

    ``payload_values`` declares every scalar the frame carries (ids,
    values, stds), so the bus bills the batched frame the same bytes the
    equivalent per-node messages would have paid in payload — the
    framing overhead (32 bytes x m messages) is the part batching
    legitimately saves.
    """
    return Message(
        kind=MessageKind.SENSE_REPORT,
        source=source,
        destination=destination,
        payload={_FRAME_KEY: frame},
        payload_values=3 * frame.report_count,
        timestamp=timestamp,
    )


def decode_zone_report(message: Message) -> ZoneReportFrame:
    """Extract and validate the zone frame from a SENSE_REPORT message."""
    if message.kind is not MessageKind.SENSE_REPORT:
        raise ValueError(f"not a SENSE_REPORT message: {message.kind}")
    frame = message.payload.get(_FRAME_KEY)
    if not isinstance(frame, ZoneReportFrame):
        raise ValueError("SENSE_REPORT message carries no zone frame")
    return frame


# -- socket wire format ---------------------------------------------------

#: Length-prefix header: 4-byte big-endian unsigned body length.
_WIRE_HEADER = struct.Struct(">I")

#: Hard bound on one wire frame's JSON body.  A zone report for a 100k
#: node city is ~2 MB base64; anything past this bound is a corrupt or
#: hostile stream and the decoder raises instead of buffering it.
MAX_WIRE_FRAME_BYTES = 16 * 1024 * 1024

_ND_KEY = "__ndarray__"
_ZONE_FRAME_KEY = "__zone_report_frame__"


def _pack_array(arr: np.ndarray) -> dict[str, Any]:
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _unpack_array(packed: dict[str, Any]) -> np.ndarray:
    arr = np.frombuffer(
        base64.b64decode(packed["data"]), dtype=np.dtype(packed["dtype"])
    ).reshape(packed["shape"])
    arr.setflags(write=False)  # same read-only discipline as the frames
    return arr


def _jsonify(value: Any) -> Any:
    """Lower a payload value to JSON types (arrays/frames via base64)."""
    if isinstance(value, ZoneReportFrame):
        return {
            _ZONE_FRAME_KEY: {
                "zone_id": value.zone_id,
                "round_index": value.round_index,
                "node_ids": _pack_array(value.node_ids),
                "values": _pack_array(value.values),
                "noise_stds": _pack_array(value.noise_stds),
            }
        }
    if isinstance(value, np.ndarray):
        return {_ND_KEY: _pack_array(value)}
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def _unjsonify(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {_ZONE_FRAME_KEY}:
            packed = value[_ZONE_FRAME_KEY]
            return ZoneReportFrame(
                zone_id=int(packed["zone_id"]),
                round_index=int(packed["round_index"]),
                node_ids=_unpack_array(packed["node_ids"]),
                values=_unpack_array(packed["values"]),
                noise_stds=_unpack_array(packed["noise_stds"]),
            )
        if set(value) == {_ND_KEY}:
            return _unpack_array(value[_ND_KEY])
        return {k: _unjsonify(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_unjsonify(v) for v in value]
    return value


def encode_wire(message: Message) -> bytes:
    """Pack one message as a length-prefixed JSON wire frame."""
    body = json.dumps(
        {
            "kind": message.kind.value,
            "source": message.source,
            "destination": message.destination,
            "payload": _jsonify(message.payload),
            "payload_values": message.payload_values,
            "timestamp": message.timestamp,
            "message_id": message.message_id,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > MAX_WIRE_FRAME_BYTES:
        raise ValueError(
            f"wire frame body of {len(body)} bytes exceeds the "
            f"{MAX_WIRE_FRAME_BYTES}-byte bound"
        )
    return _WIRE_HEADER.pack(len(body)) + body


def decode_wire_body(body: bytes) -> Message:
    """Decode one frame *body* (the bytes after the length prefix)."""
    obj = json.loads(body.decode("utf-8"))
    return Message(
        kind=MessageKind(obj["kind"]),
        source=obj["source"],
        destination=obj["destination"],
        payload=_unjsonify(obj.get("payload") or {}),
        payload_values=int(obj.get("payload_values", 1)),
        timestamp=float(obj.get("timestamp", 0.0)),
    )


class WireDecoder:
    """Incremental frame decoder for a TCP byte stream.

    Feed it whatever ``recv`` produced; it buffers partial frames and
    yields every complete message, so the caller never deals with
    length-prefix arithmetic or short reads.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Message]:
        """Absorb ``data``; return the messages it completed."""
        self._buffer.extend(data)
        messages: list[Message] = []
        while True:
            if len(self._buffer) < _WIRE_HEADER.size:
                return messages
            (length,) = _WIRE_HEADER.unpack_from(self._buffer)
            if length > MAX_WIRE_FRAME_BYTES:
                raise ValueError(
                    f"wire frame of {length} bytes exceeds the "
                    f"{MAX_WIRE_FRAME_BYTES}-byte bound"
                )
            end = _WIRE_HEADER.size + length
            if len(self._buffer) < end:
                return messages
            body = bytes(self._buffer[_WIRE_HEADER.size : end])
            del self._buffer[:end]
            messages.append(decode_wire_body(body))

    @property
    def buffered(self) -> int:
        return len(self._buffer)
