"""Composable fault injection for the transport substrate.

The seed bus modelled exactly one failure mode: i.i.d. message loss.
Real crowdsensing radios fail in richer ways — losses come in bursts
(fading, interference), links degrade for whole intervals (a crowd
surge, a microwave oven), the network partitions (a broker walks behind
a building), and participants crash or churn on their own schedules.

This module provides one pluggable abstraction for all of them: a
:class:`FaultInjector` the bus consults on every delivery.  An injector
composes independent *fault models*; each model inspects the message and
the current (simulated) time and votes drop / extra latency.  Every
stochastic model is seeded, and :meth:`FaultInjector.reset` rewinds the
whole composition to its initial state so a faulty run can be replayed
bit-for-bit.

Fault models implement two methods::

    evaluate(message, now) -> (dropped: bool, extra_latency_s: float)
    reset() -> None

and carry a ``name`` used for per-reason drop accounting.
"""

from __future__ import annotations

import math
import random as _random
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Protocol

from .message import Message

__all__ = [
    "DeliveryVerdict",
    "FaultModel",
    "IIDLoss",
    "GilbertElliottLoss",
    "DegradationWindow",
    "Partition",
    "CrashSchedule",
    "FaultInjector",
]


@dataclass(frozen=True)
class DeliveryVerdict:
    """The injector's ruling on one delivery attempt."""

    delivered: bool
    reason: str | None = None
    extra_latency_s: float = 0.0


class FaultModel(Protocol):
    """Structural interface every fault model satisfies."""

    name: str

    def evaluate(
        self, message: Message, now: float
    ) -> tuple[bool, float]: ...

    def reset(self) -> None: ...


class IIDLoss:
    """Memoryless channel loss: each delivery independently dropped."""

    name = "iid-loss"

    def __init__(self, rate: float, seed: int | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.rate = rate
        self._seed = seed
        self._rng = _random.Random(seed)

    def evaluate(self, message: Message, now: float) -> tuple[bool, float]:
        if self.rate > 0.0 and self._rng.random() < self.rate:
            return True, 0.0
        return False, 0.0

    def reset(self) -> None:
        self._rng = _random.Random(self._seed)


class GilbertElliottLoss:
    """Two-state Markov (good/bad) channel — the classic bursty model.

    The chain advances one step per delivery attempt; the loss
    probability depends on the current state.  The stationary loss rate
    is ``pi_bad * loss_bad + (1 - pi_bad) * loss_good`` with
    ``pi_bad = p_enter_bad / (p_enter_bad + p_exit_bad)`` — handy for
    matching an i.i.d. sweep's average while keeping the losses bursty.
    """

    name = "bursty-loss"

    def __init__(
        self,
        p_enter_bad: float = 0.05,
        p_exit_bad: float = 0.25,
        loss_good: float = 0.0,
        loss_bad: float = 0.75,
        seed: int | None = None,
    ) -> None:
        for label, p in (
            ("p_enter_bad", p_enter_bad),
            ("p_exit_bad", p_exit_bad),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._seed = seed
        self._rng = _random.Random(seed)
        self.state = "good"

    @property
    def stationary_loss_rate(self) -> float:
        denominator = self.p_enter_bad + self.p_exit_bad
        if denominator == 0.0:  # reprolint: allow[float-eq] -- exact-zero sentinel
            return self.loss_good if self.state == "good" else self.loss_bad
        pi_bad = self.p_enter_bad / denominator
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def evaluate(self, message: Message, now: float) -> tuple[bool, float]:
        if self.state == "good":
            if self._rng.random() < self.p_enter_bad:
                self.state = "bad"
        else:
            if self._rng.random() < self.p_exit_bad:
                self.state = "good"
        loss = self.loss_bad if self.state == "bad" else self.loss_good
        if loss > 0.0 and self._rng.random() < loss:
            return True, 0.0
        return False, 0.0

    def reset(self) -> None:
        self._rng = _random.Random(self._seed)
        self.state = "good"


class DegradationWindow:
    """A scheduled interval of extra loss and/or latency on every link.

    Models transient RF trouble: while ``start <= now < end`` each
    delivery is additionally dropped with ``extra_loss`` probability and,
    when it survives, delayed by ``extra_latency_s``.
    """

    name = "degraded-window"

    def __init__(
        self,
        start: float,
        end: float,
        extra_loss: float = 0.0,
        extra_latency_s: float = 0.0,
        seed: int | None = None,
    ) -> None:
        if end <= start:
            raise ValueError("window end must be after start")
        if not 0.0 <= extra_loss <= 1.0:
            raise ValueError("extra_loss must be in [0, 1]")
        if extra_latency_s < 0.0:
            raise ValueError("extra_latency_s must be non-negative")
        self.start = start
        self.end = end
        self.extra_loss = extra_loss
        self.extra_latency_s = extra_latency_s
        self._seed = seed
        self._rng = _random.Random(seed)

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def evaluate(self, message: Message, now: float) -> tuple[bool, float]:
        if not self.active(now):
            return False, 0.0
        if self.extra_loss > 0.0 and self._rng.random() < self.extra_loss:
            return True, 0.0
        return False, self.extra_latency_s

    def reset(self) -> None:
        self._rng = _random.Random(self._seed)


class Partition:
    """Mutual unreachability between two address sets for an interval.

    Any message crossing the cut in either direction while the partition
    is active is dropped.  Addresses in neither set are unaffected.
    """

    name = "partition"

    def __init__(
        self,
        group_a: Iterable[str],
        group_b: Iterable[str],
        start: float = 0.0,
        end: float = math.inf,
    ) -> None:
        self.group_a = frozenset(group_a)
        self.group_b = frozenset(group_b)
        if self.group_a & self.group_b:
            raise ValueError("partition groups must be disjoint")
        if end <= start:
            raise ValueError("partition end must be after start")
        self.start = start
        self.end = end

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def evaluate(self, message: Message, now: float) -> tuple[bool, float]:
        if not self.active(now):
            return False, 0.0
        crosses = (
            message.source in self.group_a
            and message.destination in self.group_b
        ) or (
            message.source in self.group_b
            and message.destination in self.group_a
        )
        return crosses, 0.0

    def reset(self) -> None:  # stateless
        return None


class CrashSchedule:
    """Node crash/churn schedule: down at ``t``, optionally back later.

    While an address is down every delivery to or from it is dropped
    (its radio is off), and :meth:`is_down` lets higher layers — the
    NanoCloud's heartbeat failover — observe liveness without peeking
    into message flow.
    """

    name = "crash"

    def __init__(self) -> None:
        self._outages: dict[str, list[tuple[float, float]]] = {}

    def crash(
        self, address: str, at: float, rejoin: float | None = None
    ) -> "CrashSchedule":
        """Schedule ``address`` down from ``at`` until ``rejoin`` (or
        forever); returns self so schedules chain fluently."""
        until = math.inf if rejoin is None else rejoin
        if until <= at:
            raise ValueError("rejoin must be after the crash time")
        self._outages.setdefault(address, []).append((at, until))
        return self

    def is_down(self, address: str, now: float) -> bool:
        return any(
            start <= now < end
            for start, end in self._outages.get(address, ())
        )

    def evaluate(self, message: Message, now: float) -> tuple[bool, float]:
        down = self.is_down(message.source, now) or self.is_down(
            message.destination, now
        )
        return down, 0.0

    def reset(self) -> None:  # the schedule itself is deterministic
        return None


class FaultInjector:
    """Composition of fault models consulted per bus delivery.

    Parameters
    ----------
    *faults:
        Fault models, evaluated in order; the first drop wins (its
        ``name`` becomes the drop reason) and latencies accumulate
        across models that let the message through.
    clock:
        Optional time source with a ``now`` attribute (a
        :class:`repro.sim.clock.SimClock`).  Without one, each message's
        own ``timestamp`` is used as the current time — adequate for the
        broker's synchronous rounds, where command timestamps advance
        with the retry backoff.
    """

    def __init__(self, *faults: FaultModel, clock=None) -> None:
        self.faults: list[FaultModel] = list(faults)
        self.clock = clock
        self.drops_by_reason: Counter[str] = Counter()

    def add(self, fault: FaultModel) -> FaultModel:
        """Attach another fault model; returns it for chaining."""
        self.faults.append(fault)
        return fault

    def now_for(self, message: Message) -> float:
        if self.clock is not None:
            return float(self.clock.now)
        return float(message.timestamp)

    def evaluate(
        self, message: Message, now: float | None = None
    ) -> DeliveryVerdict:
        """Rule on one delivery; accounts drops by fault name."""
        if now is None:
            now = self.now_for(message)
        extra_latency = 0.0
        for fault in self.faults:
            dropped, latency = fault.evaluate(message, now)
            extra_latency += latency
            if dropped:
                self.drops_by_reason[fault.name] += 1
                return DeliveryVerdict(
                    delivered=False,
                    reason=fault.name,
                    extra_latency_s=extra_latency,
                )
        return DeliveryVerdict(delivered=True, extra_latency_s=extra_latency)

    def is_down(self, address: str, now: float) -> bool:
        """Is ``address`` crash-scheduled down at ``now``?"""
        return any(
            fault.is_down(address, now)
            for fault in self.faults
            if isinstance(fault, CrashSchedule)
        )

    def reset(self) -> None:
        """Rewind every fault model and the drop accounting (replay)."""
        for fault in self.faults:
            fault.reset()
        self.drops_by_reason.clear()
