"""Real-socket transport backend: the MessageBus API on an asyncio loop.

:class:`AsyncioTransport` is the second implementation of the
:class:`repro.network.transport.Transport` seam.  It subclasses
:class:`repro.network.bus.MessageBus` — so registration, pub/sub,
metering, fault injection and bounded-inbox backpressure are literally
the same code paths the simulation exercises — and changes exactly one
thing: deliveries are scheduled on a
:class:`repro.sim.wallclock.WallClock`, i.e. ``loop.call_later`` on a
real asyncio event loop, instead of a sim-clock heap.  ``deferred`` is
therefore always True on this backend.

Remote peers attach in two ways:

- :meth:`bind_remote` maps a bus address to a byte sink.  Arrivals for
  that address are encoded with :func:`repro.network.frames.encode_wire`
  and pushed to the sink — this is how the ingestion gateway hands
  broker traffic to a WebSocket device, and how TCP peers receive.
- :meth:`serve` accepts raw TCP peers speaking the length-prefixed wire
  frames.  A peer's first frame must be a DISCOVERY hello carrying
  ``{"register": <address>}``; every later inbound frame is decoded and
  injected as a normal ``send`` (``strict=False`` — churned destinations
  are counted, never raised).  :func:`connect` is the matching client.

This module is on reprolint RPR002's sanctioned realtime-module
allowlist (see ``docs/invariants.md``): its clock *is* wall time.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # runtime import is lazy: repro.sim imports the
    from ..sim.wallclock import WallClock  # middleware, which imports us

from .bus import MessageBus
from .faults import FaultInjector
from .frames import WireDecoder, encode_wire
from .links import LinkModel
from .message import Message, MessageKind

__all__ = ["LOOPBACK", "AsyncioTransport", "TransportClient", "connect"]

#: Link model for co-located processes: gigabit-class serialisation and
#: sub-millisecond base latency, no radio energy.  Metering still runs
#: (messages and bytes are counted); the energy columns simply stay 0,
#: which is the truthful figure for a wired loopback hop.
LOOPBACK = LinkModel(
    name="loopback",
    bandwidth_bps=1e9,
    base_latency_s=0.0005,
    energy_per_message_mj=0.0,
    energy_per_byte_uj=0.0,
    range_m=1.0,
)

_HELLO_KEY = "register"


class AsyncioTransport(MessageBus):
    """Socket-facing transport: same bus semantics, wall-clock delivery.

    Parameters mirror :class:`repro.network.bus.MessageBus` except that
    the clock is a :class:`WallClock` (a fresh one owning a private loop
    when not supplied) and is always attached in ``latency_mode="link"``
    — real sockets have no synchronous delivery to fall back to.
    """

    def __init__(
        self,
        clock: WallClock | None = None,
        *,
        default_link: LinkModel = LOOPBACK,
        loss_rate: float = 0.0,
        seed: int | None = None,
        fault_injector: FaultInjector | None = None,
        inbox_capacity: int | None = None,
        drop_policy: str = "drop-newest",
    ) -> None:
        super().__init__(
            default_link=default_link,
            loss_rate=loss_rate,
            seed=seed,
            fault_injector=fault_injector,
            inbox_capacity=inbox_capacity,
            drop_policy=drop_policy,
        )
        if clock is None:
            from ..sim.wallclock import WallClock

            clock = WallClock()
        self.wall_clock = clock
        self.attach_clock(self.wall_clock, latency_mode="link")
        self._remotes: dict[str, Callable[[bytes], None]] = {}
        self._server: asyncio.AbstractServer | None = None

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self.wall_clock.loop

    # -- remote peers --------------------------------------------------

    def bind_remote(
        self,
        address: str,
        send_frame: Callable[[bytes], None],
        link: LinkModel | None = None,
    ) -> None:
        """Attach a byte sink as the consumer behind ``address``.

        Registers the endpoint (if new) and installs a handler that wire-
        encodes every arrival and hands it to ``send_frame``.  Delivery
        metering, loss draws and backpressure all ran before the handler
        fires, exactly as for an in-process endpoint.
        """
        self.register(address, link)
        self._remotes[address] = send_frame
        self.set_handler(
            address, lambda message: send_frame(encode_wire(message))
        )

    def unbind_remote(self, address: str) -> None:
        """Detach a remote peer and drop its endpoint (peer churn)."""
        self._remotes.pop(address, None)
        self.unregister(address)

    @property
    def remote_addresses(self) -> list[str]:
        return sorted(self._remotes)

    def inject(self, message: Message, *, strict: bool = False) -> bool:
        """Feed a decoded inbound frame into the bus as a normal send.

        Lenient by default: a frame addressed to a peer that churned off
        is accounted as an ``unreachable`` loss, not an exception — a
        socket cannot un-receive a frame.
        """
        return self.send(message, strict=strict)

    # -- TCP server ----------------------------------------------------

    async def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Accept wire-frame TCP peers; returns the listening server.

        Use ``server.sockets[0].getsockname()[1]`` for the bound port
        when ``port=0``.
        """
        self._server = await asyncio.start_server(
            self._handle_peer, host, port
        )
        return self._server

    async def aclose(self) -> None:
        """Stop accepting TCP peers (bound endpoints stay registered)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = WireDecoder()
        address: str | None = None
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for message in decoder.feed(data):
                    if address is None:
                        # First frame must be the hello; anything else
                        # is a protocol violation and drops the peer.
                        if (
                            message.kind is MessageKind.DISCOVERY
                            and _HELLO_KEY in message.payload
                        ):
                            address = str(message.payload[_HELLO_KEY])
                            self.bind_remote(address, writer.write)
                            continue
                        return
                    self.inject(message)
        except (ConnectionError, ValueError, asyncio.IncompleteReadError):
            pass  # peer reset or corrupt stream: treat as churn
        finally:
            if address is not None:
                self.unbind_remote(address)
            writer.close()


class TransportClient:
    """Client side of a wire-frame TCP connection (see :func:`connect`)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        address: str,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.address = address
        self._decoder = WireDecoder()
        self._pending: deque[Message] = deque()

    async def send(self, message: Message) -> None:
        self.writer.write(encode_wire(message))
        await self.writer.drain()

    async def recv(self) -> Message:
        """Return the next inbound message, reading frames as needed."""
        while not self._pending:
            data = await self.reader.read(65536)
            if not data:
                raise ConnectionError("transport peer closed the stream")
            self._pending.extend(self._decoder.feed(data))
        return self._pending.popleft()

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except ConnectionError:
            pass


async def connect(host: str, port: int, address: str) -> TransportClient:
    """Open a wire-frame connection and register as ``address``.

    Sends the DISCOVERY hello the server's peer loop requires, then
    returns the connected client.  From that point every message the
    transport delivers to ``address`` arrives on :meth:`TransportClient
    .recv`, and every :meth:`TransportClient.send` is injected into the
    remote bus.
    """
    reader, writer = await asyncio.open_connection(host, port)
    client = TransportClient(reader, writer, address)
    await client.send(
        Message(
            kind=MessageKind.DISCOVERY,
            source=address,
            destination="transport",
            payload={_HELLO_KEY: address},
        )
    )
    return client
