"""Message types exchanged between mobile nodes and brokers.

The NanoCloud protocol of Fig. 2 is command/telemetry: the broker
"initiates these measurements by commanding and telemetering the selected
nodes", and nodes reply with readings; brokers additionally publish
aggregated results up the hierarchy and disseminate collective
information back down.  Messages carry an explicit payload-size estimate
so link models can account bytes and energy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["MessageKind", "Message"]

_sequence = itertools.count(1)

#: Fixed per-message framing overhead in bytes (headers, topic, ids) —
#: roughly an MQTT PUBLISH header plus our addressing fields.
HEADER_BYTES = 32

#: Bytes per scalar value in a payload (float64).
VALUE_BYTES = 8


class MessageKind(Enum):
    """Protocol message types of the NanoCloud/LocalCloud tiers."""

    SENSE_COMMAND = "sense_command"  # broker -> node: take a measurement
    SENSE_REPORT = "sense_report"  # node -> broker: measurement reply
    AGGREGATE = "aggregate"  # NC broker -> LC head: zone result
    DISSEMINATE = "disseminate"  # broker -> nodes: collective info
    QUERY = "query"  # user/app -> broker: on-demand query
    QUERY_RESULT = "query_result"  # broker -> user/app
    DISCOVERY = "discovery"  # service discovery announce/probe
    CONTEXT_SHARE = "context_share"  # node -> broker: shared context


@dataclass
class Message:
    """One protocol message.

    ``payload`` is a free-form dict; ``payload_values`` declares how many
    scalar values it carries so :meth:`size_bytes` is deterministic
    without serialising (vector payloads dominate the byte count).
    """

    kind: MessageKind
    source: str
    destination: str
    payload: dict[str, Any] = field(default_factory=dict)
    payload_values: int = 1
    timestamp: float = 0.0
    message_id: int = field(default_factory=lambda: next(_sequence))
    # Sim time the message reached its destination inbox.  Stamped by a
    # clock-driven bus (latency_mode="link"); stays None on the
    # synchronous zero-latency path where send time == arrival time.
    arrived_at: float | None = None

    def __post_init__(self) -> None:
        if not self.source or not self.destination:
            raise ValueError("messages need a source and destination")
        if self.payload_values < 0:
            raise ValueError("payload_values must be non-negative")

    @property
    def size_bytes(self) -> int:
        """Wire size estimate: header + 8 bytes per scalar payload value."""
        return HEADER_BYTES + VALUE_BYTES * self.payload_values

    def reply(
        self,
        kind: MessageKind,
        payload: dict[str, Any],
        payload_values: int = 1,
        timestamp: float | None = None,
    ) -> "Message":
        """Build the response message (destination/source swapped)."""
        return Message(
            kind=kind,
            source=self.destination,
            destination=self.source,
            payload=payload,
            payload_values=payload_values,
            timestamp=self.timestamp if timestamp is None else timestamp,
        )
