"""Backend-agnostic transport interface: the seam the middleware rides.

Every layer above the network — brokers, :class:`repro.middleware.rounds
.ZoneRoundDriver`, LocalClouds, the hierarchy — talks to its transport
through the same small surface: register/unregister endpoints, unicast
``send``, topic ``publish``/``subscribe`` (constants from
:mod:`repro.network.topics`), sanctioned re-enqueue via ``requeue``, and
the clock attachment that switches delivery from synchronous to
scheduled.  :class:`Transport` names that surface as a
:class:`typing.Protocol` so "backend" is a constructor argument, not an
architecture:

- :class:`SimTransport` is the in-process simulation backend — the
  pre-refactor :class:`repro.network.bus.MessageBus`, re-expressed under
  the interface and held bit-identical to the frozen copy in
  :mod:`repro.network.reference` by a Hypothesis pin (fault injection,
  backpressure, ``latency_mode`` and TrafficStats accounting all
  preserved).
- :class:`repro.network.asyncio_transport.AsyncioTransport` carries the
  same Endpoint/topic API over real sockets, with deliveries scheduled
  on a :class:`repro.sim.wallclock.WallClock` and remote peers speaking
  the length-prefixed wire frames of :mod:`repro.network.frames`.

The delivery-scheduling hook is ``_schedule_delivery(message)``: the
deferred path (``deferred`` is True once a clock is attached in
``latency_mode="link"``) routes every send/publish through it, and it
schedules ``_deliver`` at ``clock.now + link latency`` via the clock's
``schedule_in``.  A backend changes *when and where* that callback runs
(sim event queue, asyncio loop) — never the metering, loss or
backpressure accounting around it, which live in the shared base.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from .bus import Endpoint, MessageBus, TrafficStats
from .links import LinkModel
from .message import Message

__all__ = ["Transport", "SimTransport"]


@runtime_checkable
class Transport(Protocol):
    """What the middleware requires of a message transport.

    Structural: any object with these members qualifies —
    ``isinstance(obj, Transport)`` checks presence, and the middleware
    layers only ever call through this surface.
    """

    stats: TrafficStats

    # -- registration --------------------------------------------------

    def register(
        self,
        address: str,
        link: LinkModel | None = None,
        *,
        inbox_capacity: int | None = None,
        drop_policy: str | None = None,
    ) -> Endpoint: ...

    def unregister(self, address: str) -> None: ...

    def endpoint(self, address: str) -> Endpoint: ...

    def set_handler(
        self, address: str, handler: Callable[[Message], None] | None
    ) -> None: ...

    # -- pub/sub -------------------------------------------------------

    def subscribe(self, address: str, topic: str) -> None: ...

    def unsubscribe(self, address: str, topic: str) -> None: ...

    def subscribers(self, topic: str) -> set[str]: ...

    def publish(self, topic: str, message: Message) -> int: ...

    # -- point-to-point ------------------------------------------------

    def send(self, message: Message, *, strict: bool = True) -> bool: ...

    def requeue(self, message: Message) -> bool: ...

    # -- delivery scheduling -------------------------------------------

    def attach_clock(self, clock, latency_mode: str = "link") -> None: ...

    @property
    def deferred(self) -> bool: ...

    # -- observability -------------------------------------------------

    def stats_snapshot(self) -> dict[str, object]: ...


class SimTransport(MessageBus):
    """The in-process simulation backend of the :class:`Transport` seam.

    This *is* the message bus — same class body, same RNG draws, same
    fault injection, bounded-inbox backpressure and TrafficStats
    accounting — re-expressed under the transport interface.  The
    Hypothesis pin in ``tests/network/test_transport_identity.py`` runs
    identical seeded deployments on this backend and on the frozen
    pre-refactor copy (:mod:`repro.network.reference.bus`) and requires
    bit-identical estimates and ``losses_by_reason``; the subclass
    deliberately adds nothing, so the pin can never drift.
    """

    __slots__ = ()
