"""Service discovery: who offers which sensors/services near me.

Collaboration requires finding peers: a node missing a barometer can
"obtain missing sensing information when specific sensors are not
available in their own devices" (Section 1) — but first it must discover
which nearby nodes (or infrastructure sensors) offer one.  The registry
is broker-local, matching the paper's architecture where the NC broker
orchestrates its member nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServiceAnnouncement", "DiscoveryRegistry"]


@dataclass(frozen=True)
class ServiceAnnouncement:
    """One node's advertisement of a capability."""

    address: str
    service: str  # e.g. "sensor:temperature", "compute:fft"
    quality: float = 1.0  # advertised quality score (1 / noise tier)
    expires_at: float = float("inf")

    def __post_init__(self) -> None:
        if not self.address or not self.service:
            raise ValueError("announcement needs address and service")
        if self.quality < 0:
            raise ValueError("quality must be non-negative")


@dataclass
class DiscoveryRegistry:
    """Per-broker service registry with lease expiry.

    Mobile nodes churn, so every announcement carries an expiry; lookups
    at time t ignore expired leases, and :meth:`prune` discards them.
    """

    _by_service: dict[str, dict[str, ServiceAnnouncement]] = field(
        default_factory=dict
    )

    def announce(self, announcement: ServiceAnnouncement) -> None:
        """Register/refresh a service offer."""
        offers = self._by_service.setdefault(announcement.service, {})
        offers[announcement.address] = announcement

    def withdraw(self, address: str, service: str | None = None) -> None:
        """Remove offers from a node (all services, or one)."""
        if service is not None:
            self._by_service.get(service, {}).pop(address, None)
            return
        for offers in self._by_service.values():
            offers.pop(address, None)

    def lookup(
        self, service: str, now: float = 0.0, min_quality: float = 0.0
    ) -> list[ServiceAnnouncement]:
        """Live offers for a service, best quality first."""
        offers = [
            a
            for a in self._by_service.get(service, {}).values()
            if a.expires_at > now and a.quality >= min_quality
        ]
        return sorted(offers, key=lambda a: a.quality, reverse=True)

    def services(self, now: float = 0.0) -> list[str]:
        """All service names with at least one live offer."""
        return sorted(
            service
            for service, offers in self._by_service.items()
            if any(a.expires_at > now for a in offers.values())
        )

    def prune(self, now: float) -> int:
        """Drop expired leases; returns how many were removed."""
        removed = 0
        for service in list(self._by_service):
            offers = self._by_service[service]
            for address in list(offers):
                if offers[address].expires_at <= now:
                    del offers[address]
                    removed += 1
            if not offers:
                del self._by_service[service]
        return removed
