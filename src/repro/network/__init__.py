"""Network substrate: messages, pluggable transports (in-process sim
bus and real asyncio sockets), link models, topologies and service
discovery."""

from .asyncio_transport import LOOPBACK, AsyncioTransport, TransportClient
from .bus import Endpoint, MessageBus, TrafficStats
from .discovery import DiscoveryRegistry, ServiceAnnouncement
from .faults import (
    CrashSchedule,
    DegradationWindow,
    DeliveryVerdict,
    FaultInjector,
    GilbertElliottLoss,
    IIDLoss,
    Partition,
)
from .links import BLUETOOTH, GSM, LINKS_BY_NAME, LTE, WIFI, LinkModel
from .message import Message, MessageKind
from .frames import (
    WireDecoder,
    ZoneReportFrame,
    decode_wire_body,
    decode_zone_report,
    encode_wire,
    encode_zone_report,
)
from .selector import NetworkSelector, SelectionPolicy, SelectionResult
from .topics import (
    ALL_TOPICS,
    TOPIC_ALERTS,
    TOPIC_CONTEXT_DIGEST,
    TOPIC_ROUND_COMPLETED,
    TOPIC_ZONE_ESTIMATES,
)
from .topology import (
    broker_load,
    hierarchy_topology,
    is_connected,
    mesh_topology,
    proximity_topology,
    star_topology,
)

from .transport import SimTransport, Transport

__all__ = [
    "Endpoint",
    "MessageBus",
    "TrafficStats",
    "Transport",
    "SimTransport",
    "AsyncioTransport",
    "TransportClient",
    "LOOPBACK",
    "WireDecoder",
    "ZoneReportFrame",
    "decode_wire_body",
    "decode_zone_report",
    "encode_wire",
    "encode_zone_report",
    "DiscoveryRegistry",
    "ServiceAnnouncement",
    "CrashSchedule",
    "DegradationWindow",
    "DeliveryVerdict",
    "FaultInjector",
    "GilbertElliottLoss",
    "IIDLoss",
    "Partition",
    "BLUETOOTH",
    "GSM",
    "LINKS_BY_NAME",
    "LTE",
    "WIFI",
    "LinkModel",
    "NetworkSelector",
    "SelectionPolicy",
    "SelectionResult",
    "Message",
    "MessageKind",
    "ALL_TOPICS",
    "TOPIC_ALERTS",
    "TOPIC_CONTEXT_DIGEST",
    "TOPIC_ROUND_COMPLETED",
    "TOPIC_ZONE_ESTIMATES",
    "broker_load",
    "hierarchy_topology",
    "is_connected",
    "mesh_topology",
    "proximity_topology",
    "star_topology",
]
