"""Radio link models: WiFi, Bluetooth, GSM/cellular, LTE.

The paper's NanoCloud "supports bidirectional data flow between the nodes
and the broker using multiple networks like WiFi, GSM, bluetooth etc.".
Offline, a link is characterised by bandwidth, base latency, per-message
energy (radio wake + protocol handshake) and per-byte energy.  Numbers
are order-of-magnitude calibrations from the mobile-systems literature of
the paper's era (e.g. WiFi transfers cost roughly 5 uJ/byte plus a few mJ
of wake-up; cellular radio wake is far more expensive due to RRC state
promotions).  Absolute joules do not matter for the benches — the
*ratios* between message-heavy and message-light protocols do.
"""

from __future__ import annotations

from dataclasses import dataclass

from .message import Message

__all__ = ["LinkModel", "WIFI", "BLUETOOTH", "GSM", "LTE", "LINKS_BY_NAME"]


@dataclass(frozen=True)
class LinkModel:
    """Energy/latency model of one radio technology."""

    name: str
    bandwidth_bps: float
    base_latency_s: float
    energy_per_message_mj: float
    energy_per_byte_uj: float
    range_m: float

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.base_latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.energy_per_message_mj < 0 or self.energy_per_byte_uj < 0:
            raise ValueError("energy coefficients must be non-negative")
        if self.range_m <= 0:
            raise ValueError("range must be positive")

    def transfer_latency_s(self, message: Message) -> float:
        """End-to-end latency: base propagation/queueing + serialisation."""
        return self.base_latency_s + message.size_bytes * 8.0 / self.bandwidth_bps

    def transfer_energy_mj(self, message: Message) -> float:
        """Transmit-side energy for one message in millijoules."""
        return (
            self.energy_per_message_mj
            + self.energy_per_byte_uj * message.size_bytes / 1000.0
        )

    def receive_energy_mj(self, message: Message) -> float:
        """Receive-side energy; modelled at 60% of transmit cost."""
        return 0.6 * self.transfer_energy_mj(message)


WIFI = LinkModel(
    name="wifi",
    bandwidth_bps=20e6,
    base_latency_s=0.005,
    energy_per_message_mj=3.0,
    energy_per_byte_uj=5.0,
    range_m=100.0,
)

BLUETOOTH = LinkModel(
    name="bluetooth",
    bandwidth_bps=1e6,
    base_latency_s=0.02,
    energy_per_message_mj=0.5,
    energy_per_byte_uj=1.0,
    range_m=20.0,
)

GSM = LinkModel(
    name="gsm",
    bandwidth_bps=100e3,
    base_latency_s=0.3,
    energy_per_message_mj=120.0,
    energy_per_byte_uj=40.0,
    range_m=5000.0,
)

LTE = LinkModel(
    name="lte",
    bandwidth_bps=10e6,
    base_latency_s=0.05,
    energy_per_message_mj=50.0,
    energy_per_byte_uj=10.0,
    range_m=2000.0,
)

LINKS_BY_NAME: dict[str, LinkModel] = {
    link.name: link for link in (WIFI, BLUETOOTH, GSM, LTE)
}
