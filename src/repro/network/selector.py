"""Multi-network interface selection (Section 5, Heterogeneity).

The paper: mobile NCs use "multiple networks like WiFi, GSM, bluetooth
etc."; future work calls out "support for more power efficient networks
like Bluetooth ... to support the nanocloud architecture" and handling
"heterogeneity in network architectures".

A :class:`NetworkSelector` picks the radio for each message given which
interfaces are currently available (range/infrastructure dependent) and
the sender's policy: minimise energy, minimise latency, or a weighted
blend with a battery-aware bias (a draining phone weighs energy more).
"""

from __future__ import annotations

from dataclasses import dataclass

from .links import LinkModel
from .message import Message

__all__ = ["SelectionPolicy", "NetworkSelector", "SelectionResult"]


@dataclass(frozen=True)
class SelectionPolicy:
    """How to weigh energy against latency.

    ``energy_weight`` in [0, 1]; latency weight is the complement.
    ``battery_aware`` shifts weight toward energy as the battery drains:
    effective energy weight = w + (1 - w) * (1 - battery_level).
    """

    energy_weight: float = 0.5
    battery_aware: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.energy_weight <= 1.0:
            raise ValueError("energy_weight must be in [0, 1]")

    def effective_energy_weight(self, battery_level: float) -> float:
        if not 0.0 <= battery_level <= 1.0:
            raise ValueError("battery level must be in [0, 1]")
        if not self.battery_aware:
            return self.energy_weight
        return self.energy_weight + (1.0 - self.energy_weight) * (
            1.0 - battery_level
        )


@dataclass(frozen=True)
class SelectionResult:
    """The chosen link and its predicted costs."""

    link: LinkModel
    energy_mj: float
    latency_s: float
    score: float


class NetworkSelector:
    """Chooses among currently-available radio links per message."""

    def __init__(self, policy: SelectionPolicy | None = None) -> None:
        self.policy = policy or SelectionPolicy()

    def select(
        self,
        message: Message,
        available: list[LinkModel],
        *,
        battery_level: float = 1.0,
        distance_m: float | None = None,
    ) -> SelectionResult:
        """Pick the best link for ``message``.

        Parameters
        ----------
        available:
            Links whose infrastructure is reachable right now.
        battery_level:
            Sender's state of charge in [0, 1].
        distance_m:
            Optional distance to the peer; links whose range is shorter
            are filtered out (e.g. Bluetooth beyond 20 m).

        Raises
        ------
        ValueError
            If no available link can reach the peer.
        """
        if not available:
            raise ValueError("no links available")
        candidates = [
            link
            for link in available
            if distance_m is None or link.range_m >= distance_m
        ]
        if not candidates:
            raise ValueError(
                f"no available link covers {distance_m} m "
                f"(best range {max(l.range_m for l in available)} m)"
            )
        w_energy = self.policy.effective_energy_weight(battery_level)
        w_latency = 1.0 - w_energy

        # Normalise each cost by the best candidate so the two axes are
        # comparable regardless of units.
        energies = {l.name: l.transfer_energy_mj(message) for l in candidates}
        latencies = {l.name: l.transfer_latency_s(message) for l in candidates}
        e_min = min(energies.values())
        l_min = min(latencies.values())

        def score(link: LinkModel) -> float:
            return w_energy * energies[link.name] / max(e_min, 1e-12) + (
                w_latency * latencies[link.name] / max(l_min, 1e-12)
            )

        best = min(candidates, key=lambda l: (score(l), l.name))
        return SelectionResult(
            link=best,
            energy_mj=energies[best.name],
            latency_s=latencies[best.name],
            score=score(best),
        )
