"""In-process publish/subscribe message bus (the transport substrate).

SenseDroid's real deployments speak MQTT-style brokered pub/sub over
WiFi/BT/GSM; this bus is the in-process equivalent: endpoints register
under an address, subscribe to topics, and every delivery is metered
through a :class:`repro.network.links.LinkModel` so experiments can count
messages, bytes, latency and radio energy without real sockets.

Delivery is synchronous and deterministic (no threads): ``publish`` and
``send`` enqueue to the destination's inbox and update the traffic
accounting immediately.  Higher layers (brokers, the simulation engine)
drain inboxes explicitly, which keeps every experiment replayable.
"""

from __future__ import annotations

import random as _random
from collections import Counter, defaultdict, deque
from dataclasses import dataclass, field

from .faults import FaultInjector
from .links import WIFI, LinkModel
from .message import Message, MessageKind

__all__ = ["TrafficStats", "MessageBus", "Endpoint"]


@dataclass
class TrafficStats:
    """Accumulated traffic accounting for one bus or one endpoint."""

    messages: int = 0
    bytes: int = 0
    transmit_energy_mj: float = 0.0
    receive_energy_mj: float = 0.0
    latency_s: float = 0.0
    by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, message: Message, link: LinkModel) -> None:
        self.messages += 1
        self.bytes += message.size_bytes
        self.transmit_energy_mj += link.transfer_energy_mj(message)
        self.receive_energy_mj += link.receive_energy_mj(message)
        self.latency_s += link.transfer_latency_s(message)
        self.by_kind[message.kind.value] += 1

    @property
    def total_energy_mj(self) -> float:
        return self.transmit_energy_mj + self.receive_energy_mj


class Endpoint:
    """One addressable participant on the bus (a node, broker or app)."""

    def __init__(self, address: str, link: LinkModel) -> None:
        if not address:
            raise ValueError("endpoint address must be non-empty")
        self.address = address
        self.link = link
        self.inbox: deque[Message] = deque()
        self.stats = TrafficStats()
        # Per-endpoint fault accounting: messages we transmitted that
        # never arrived, and messages addressed to us that the channel
        # (or our own outage) ate.
        self.outbound_lost = 0
        self.inbound_lost = 0

    def drain(self) -> list[Message]:
        """Remove and return all pending messages, oldest first."""
        messages = list(self.inbox)
        self.inbox.clear()
        return messages

    def pending(self) -> int:
        return len(self.inbox)


class MessageBus:
    """Brokered pub/sub + point-to-point transport with metering.

    Parameters
    ----------
    default_link:
        Link model used for endpoints registered without an explicit one.
    loss_rate:
        Probability that any delivery is silently dropped by the radio
        channel (fault injection for robustness tests).  The sender
        still pays transmit energy for a lost message — that is what
        makes loss expensive; the receiver pays nothing.
    seed:
        RNG seed for the loss process (losses are reproducible).
    fault_injector:
        Optional :class:`repro.network.faults.FaultInjector` consulted
        on every delivery, composing bursty loss, degradation windows,
        partitions and crash schedules on top of (or instead of) the
        plain ``loss_rate``.
    """

    def __init__(
        self,
        default_link: LinkModel = WIFI,
        loss_rate: float = 0.0,
        seed: int | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.default_link = default_link
        self.loss_rate = loss_rate
        self.fault_injector = fault_injector
        self._endpoints: dict[str, Endpoint] = {}
        self._subscriptions: dict[str, set[str]] = defaultdict(set)
        self.stats = TrafficStats()
        self.messages_lost = 0
        self.losses_by_reason: Counter[str] = Counter()
        self._loss_rng = _random.Random(seed)

    # -- registration -------------------------------------------------

    def register(self, address: str, link: LinkModel | None = None) -> Endpoint:
        """Register (or fetch) the endpoint for ``address``."""
        if address in self._endpoints:
            return self._endpoints[address]
        endpoint = Endpoint(address, link or self.default_link)
        self._endpoints[address] = endpoint
        return endpoint

    def unregister(self, address: str) -> None:
        """Drop an endpoint and all its subscriptions (node churn)."""
        self._endpoints.pop(address, None)
        for subscribers in self._subscriptions.values():
            subscribers.discard(address)

    def endpoint(self, address: str) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise KeyError(f"no endpoint registered at {address!r}") from None

    @property
    def addresses(self) -> list[str]:
        return sorted(self._endpoints)

    # -- pub/sub ------------------------------------------------------

    def subscribe(self, address: str, topic: str) -> None:
        """Subscribe an endpoint to a topic; it must be registered."""
        if address not in self._endpoints:
            raise KeyError(f"cannot subscribe unregistered endpoint {address!r}")
        if not topic:
            raise ValueError("topic must be non-empty")
        self._subscriptions[topic].add(address)

    def unsubscribe(self, address: str, topic: str) -> None:
        self._subscriptions[topic].discard(address)

    def subscribers(self, topic: str) -> set[str]:
        return set(self._subscriptions[topic])

    def publish(self, topic: str, message: Message) -> int:
        """Deliver ``message`` to every subscriber of ``topic``.

        Returns the number of deliveries; each one is metered separately
        (a broadcast over unicast links costs per receiver).
        """
        deliveries = 0
        for address in sorted(self._subscriptions[topic]):
            if address == message.source:
                continue  # don't loop a publication back to its publisher
            copy = Message(
                kind=message.kind,
                source=message.source,
                destination=address,
                payload=message.payload,
                payload_values=message.payload_values,
                timestamp=message.timestamp,
            )
            if self._deliver(copy):
                deliveries += 1
        return deliveries

    # -- point-to-point -----------------------------------------------

    def send(self, message: Message, *, strict: bool = True) -> bool:
        """Deliver a unicast message to its destination endpoint.

        Returns True when the message reached the destination's inbox.
        With ``strict`` (the default) an unregistered destination raises
        ``KeyError``; with ``strict=False`` it is counted as a loss and
        the sender still pays for the transmission — the drop-and-count
        path brokers use so node churn never aborts a round.
        """
        if message.destination not in self._endpoints:
            if strict:
                raise KeyError(
                    f"destination {message.destination!r} is not registered"
                )
            link = (
                self._endpoints[message.source].link
                if message.source in self._endpoints
                else self.default_link
            )
            self._record_loss(message, link, "unreachable")
            return False
        return self._deliver(message)

    def _deliver(self, message: Message) -> bool:
        destination = self._endpoints[message.destination]
        link = destination.link
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self._record_loss(message, link, "iid-loss")
            return False
        extra_latency = 0.0
        if self.fault_injector is not None:
            verdict = self.fault_injector.evaluate(message)
            if not verdict.delivered:
                self._record_loss(message, link, verdict.reason or "fault")
                return False
            extra_latency = verdict.extra_latency_s
        destination.inbox.append(message)
        destination.stats.record(message, link)
        destination.stats.latency_s += extra_latency
        if message.source in self._endpoints:
            sender = self._endpoints[message.source]
            sender.stats.record(message, link)
            sender.stats.latency_s += extra_latency
        self.stats.record(message, link)
        self.stats.latency_s += extra_latency
        return True

    def _record_loss(
        self, message: Message, link: LinkModel, reason: str
    ) -> None:
        """Account a dropped delivery: the sender still burned its radio."""
        self.messages_lost += 1
        self.losses_by_reason[reason] += 1
        if message.destination in self._endpoints:
            self._endpoints[message.destination].inbound_lost += 1
        if message.source in self._endpoints:
            sender = self._endpoints[message.source]
            sender.outbound_lost += 1
            sender.stats.messages += 1
            sender.stats.bytes += message.size_bytes
            sender.stats.transmit_energy_mj += link.transfer_energy_mj(
                message
            )
        self.stats.messages += 1
        self.stats.bytes += message.size_bytes
        self.stats.transmit_energy_mj += link.transfer_energy_mj(message)

    # -- convenience --------------------------------------------------

    def request_reply(
        self,
        request: Message,
        reply_kind: MessageKind,
        reply_payload: dict,
        reply_values: int = 1,
    ) -> Message | None:
        """Send a request and immediately deliver the canned reply.

        Utility for synchronous command/telemetry exchanges where the
        responder's behaviour is computed by the caller (the broker
        commands a node whose reading the simulation already knows).
        Both legs are metered.  A request lost in the channel suppresses
        the reply leg entirely (the responder never heard the question),
        and a lost reply returns ``None`` too — the caller sees exactly
        what it would have received.
        """
        if not self.send(request):
            return None
        reply = request.reply(reply_kind, reply_payload, reply_values)
        if not self.send(reply):
            return None
        return reply
