"""FROZEN REFERENCE: the pre-transport-refactor message bus, verbatim.

Do not "improve" this module.  It is the behavioural oracle the
transport refactor is pinned against: ``tests/network/
test_transport_identity.py`` runs identical seeded deployments on this
bus and on :class:`repro.network.transport.SimTransport` and requires
bit-identical estimates and loss accounting (the same oracle pattern
``repro.core.reference`` provides for the solver engines).  The only
deltas from the shipped bus at the time of the split are the removal of
the already-deprecated ``TrafficStats.latency_s`` alias (API surface
with no behavioural effect) and the relative-import depth.

SenseDroid's real deployments speak MQTT-style brokered pub/sub over
WiFi/BT/GSM; this bus is the in-process equivalent: endpoints register
under an address, subscribe to topics, and every delivery is metered
through a :class:`repro.network.links.LinkModel` so experiments can count
messages, bytes, latency and radio energy without real sockets.

The bus has two delivery disciplines:

- ``latency_mode="zero"`` (default): delivery is synchronous and
  deterministic (no threads) — ``publish`` and ``send`` enqueue to the
  destination's inbox and update the traffic accounting immediately.
  Higher layers drain inboxes explicitly, which keeps every experiment
  replayable.  This is the seed behaviour, bit-for-bit.
- ``latency_mode="link"`` with an attached :class:`repro.sim.clock
  .SimClock`: ``send``/``publish`` *schedule* delivery at ``now +
  link.transfer_latency_s(message)``.  Loss and fault injection are
  evaluated at delivery time (the channel eats the message in flight,
  not at the send call), fault-model extra latency further delays the
  arrival, and the clock's (time, sequence) ordering keeps interleaved
  traffic deterministic.  Endpoints may install a ``handler`` to consume
  arrivals event-style instead of polling an inbox.
"""

from __future__ import annotations

import random as _random
from collections import Counter, defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable

from ..faults import FaultInjector
from ..links import WIFI, LinkModel
from ..message import Message, MessageKind

__all__ = ["TrafficStats", "MessageBus", "Endpoint", "DROP_POLICIES"]

LATENCY_MODES = ("zero", "link")

#: Bounded-inbox overflow policies.
#:
#: - ``drop-newest``: the arriving message is refused (tail drop).
#: - ``drop-oldest``: the oldest queued message is evicted to make room.
#: - ``priority``: the lowest-priority queued message is evicted if the
#:   arrival outranks it, else the arrival is refused — commands and
#:   control traffic outlive bulk SENSE_REPORTs under overload.
DROP_POLICIES = ("drop-newest", "drop-oldest", "priority")

#: Delivery priority rank per message kind (lower rank = kept longer
#: under the ``priority`` drop policy).  Commands and queries steer the
#: system; aggregates and control fan-out matter next; bulk telemetry
#: (reports, context shares) is the first thing a saturated endpoint
#: sheds — CS recovery treats a shed report as one more dropped row of
#: Phi, which is exactly the degradation mode the solver tolerates.
_KIND_RANK: dict[MessageKind, int] = {
    MessageKind.SENSE_COMMAND: 0,
    MessageKind.QUERY: 0,
    MessageKind.DISCOVERY: 1,
    MessageKind.AGGREGATE: 1,
    MessageKind.DISSEMINATE: 1,
    MessageKind.QUERY_RESULT: 1,
    MessageKind.SENSE_REPORT: 2,
    MessageKind.CONTEXT_SHARE: 2,
}

#: Loss reason for bounded-inbox drops: distinct from every injected
#: network-fault reason ("iid-loss", "bursty-loss", "partition",
#: "crash", "degraded-window", "unreachable") so backpressure is never
#: mistaken for a hostile channel.
BACKPRESSURE_REASON = "backpressure"


@dataclass
class TrafficStats:
    """Accumulated traffic accounting for one bus or one endpoint.

    ``latency_sum_s`` is the *sum* of per-message transfer latencies
    (plus any fault-injected extra delay) — divide by ``messages`` for
    the mean, which :attr:`mean_latency_s` does.
    """

    messages: int = 0
    bytes: int = 0
    transmit_energy_mj: float = 0.0
    receive_energy_mj: float = 0.0
    latency_sum_s: float = 0.0
    by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    # Non-delivery accounting, split by cause so injected network
    # faults ("iid-loss", "partition", ...) and local queue overflow
    # ("backpressure") can never be conflated in one bucket.
    losses_by_reason: Counter[str] = field(default_factory=Counter)

    def record(self, message: Message, link: LinkModel) -> None:
        self.messages += 1
        self.bytes += message.size_bytes
        self.transmit_energy_mj += link.transfer_energy_mj(message)
        self.receive_energy_mj += link.receive_energy_mj(message)
        self.latency_sum_s += link.transfer_latency_s(message)
        self.by_kind[message.kind.value] += 1

    def record_loss(self, reason: str) -> None:
        self.losses_by_reason[reason] += 1

    @property
    def messages_lost(self) -> int:
        """Total non-deliveries across every reason."""
        return sum(self.losses_by_reason.values())

    @property
    def total_energy_mj(self) -> float:
        return self.transmit_energy_mj + self.receive_energy_mj

    @property
    def mean_latency_s(self) -> float:
        """Mean per-message latency (0.0 before any traffic)."""
        if self.messages == 0:
            return 0.0
        return self.latency_sum_s / self.messages


class Endpoint:
    """One addressable participant on the bus (a node, broker or app).

    The inbox is *bounded* when ``inbox_capacity`` is set: an arrival
    that would exceed the bound triggers the endpoint's drop policy
    (see :data:`DROP_POLICIES`) and the shed message is accounted by
    the bus under the distinct ``backpressure`` loss reason.  The
    default (``None``) keeps the seed's unbounded deque, bit for bit.
    All enqueues go through :meth:`push` / the bus — reprolint rule
    RPR008 rejects direct ``inbox`` mutation outside this module, so
    no delivery can bypass the bound.
    """

    def __init__(
        self,
        address: str,
        link: LinkModel,
        *,
        inbox_capacity: int | None = None,
        drop_policy: str = "drop-newest",
    ) -> None:
        if not address:
            raise ValueError("endpoint address must be non-empty")
        if inbox_capacity is not None and inbox_capacity < 1:
            raise ValueError("inbox_capacity must be >= 1 (or None)")
        if drop_policy not in DROP_POLICIES:
            raise ValueError(f"unknown drop_policy {drop_policy!r}")
        self.address = address
        self.link = link
        self.inbox: deque[Message] = deque()
        self.inbox_capacity = inbox_capacity
        self.drop_policy = drop_policy
        self.stats = TrafficStats()
        # Event-style consumption: when set, an arriving message is
        # passed to the handler instead of the inbox (the handler may
        # re-enqueue messages it does not consume, via MessageBus.requeue).
        self.handler: Callable[[Message], None] | None = None
        # Per-endpoint fault accounting: messages we transmitted that
        # never arrived, and messages addressed to us that the channel
        # (or our own outage) ate.
        self.outbound_lost = 0
        self.inbound_lost = 0
        # Bounded-inbox accounting: messages this endpoint's own full
        # queue shed, and the deepest the queue ever got (the memory
        # high-water mark the OVERLOAD bench reports).
        self.dropped_backpressure = 0
        self.inbox_peak = 0

    def push(self, message: Message) -> Message | None:
        """Enqueue respecting the bound; returns the shed message.

        ``None`` means the arrival was queued without shedding anything.
        A non-``None`` return is the message the drop policy chose to
        lose — the arrival itself (drop-newest, or an outranked arrival
        under ``priority``) or an evicted queued message (drop-oldest /
        ``priority``).  The caller (the bus) accounts it.
        """
        if (
            self.inbox_capacity is None
            or len(self.inbox) < self.inbox_capacity
        ):
            self.inbox.append(message)
            self.inbox_peak = max(self.inbox_peak, len(self.inbox))
            return None
        if self.drop_policy == "drop-oldest":
            shed = self.inbox.popleft()
            self.inbox.append(message)
            return shed
        if self.drop_policy == "priority":
            rank = _KIND_RANK.get(message.kind, 1)
            # Evict the newest queued message of the lowest priority
            # that does not outrank the arrival; scanning from the back
            # keeps older (likely in-service) traffic of equal rank.
            worst_idx, worst_rank = -1, rank
            for idx in range(len(self.inbox) - 1, -1, -1):
                queued_rank = _KIND_RANK.get(self.inbox[idx].kind, 1)
                if queued_rank > worst_rank:
                    worst_idx, worst_rank = idx, queued_rank
            if worst_idx < 0:
                return message  # nothing outranked: shed the arrival
            shed = self.inbox[worst_idx]
            del self.inbox[worst_idx]
            self.inbox.append(message)
            return shed
        return message  # drop-newest: refuse the arrival

    def drain(self) -> list[Message]:
        """Remove and return all pending messages, oldest first."""
        messages = list(self.inbox)
        self.inbox.clear()
        return messages

    def pending(self) -> int:
        return len(self.inbox)


class MessageBus:
    """Brokered pub/sub + point-to-point transport with metering.

    Parameters
    ----------
    default_link:
        Link model used for endpoints registered without an explicit one.
    loss_rate:
        Probability that any delivery is silently dropped by the radio
        channel (fault injection for robustness tests).  The sender
        still pays transmit energy for a lost message — that is what
        makes loss expensive; the receiver pays nothing.
    seed:
        RNG seed for the loss process (losses are reproducible).
    fault_injector:
        Optional :class:`repro.network.faults.FaultInjector` consulted
        on every delivery, composing bursty loss, degradation windows,
        partitions and crash schedules on top of (or instead of) the
        plain ``loss_rate``.
    clock / latency_mode:
        Attach a :class:`repro.sim.clock.SimClock` and set
        ``latency_mode="link"`` for latency-faithful scheduled delivery;
        the default ``"zero"`` keeps the synchronous seed path even when
        a clock is attached.
    inbox_capacity / drop_policy:
        Default bound for every endpoint registered on this bus
        (``None`` = unbounded, the seed behaviour).  ``register`` can
        override per endpoint.  Overflow drops are charged to the
        distinct ``backpressure`` loss reason, never to the fault
        reasons the injector uses.
    """

    def __init__(
        self,
        default_link: LinkModel = WIFI,
        loss_rate: float = 0.0,
        seed: int | None = None,
        fault_injector: FaultInjector | None = None,
        clock=None,
        latency_mode: str = "zero",
        inbox_capacity: int | None = None,
        drop_policy: str = "drop-newest",
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if latency_mode not in LATENCY_MODES:
            raise ValueError(f"unknown latency_mode {latency_mode!r}")
        if inbox_capacity is not None and inbox_capacity < 1:
            raise ValueError("inbox_capacity must be >= 1 (or None)")
        if drop_policy not in DROP_POLICIES:
            raise ValueError(f"unknown drop_policy {drop_policy!r}")
        self.default_link = default_link
        self.loss_rate = loss_rate
        self.fault_injector = fault_injector
        self.clock = clock
        self.latency_mode = latency_mode
        self.inbox_capacity = inbox_capacity
        self.drop_policy = drop_policy
        self._endpoints: dict[str, Endpoint] = {}
        self._subscriptions: dict[str, set[str]] = defaultdict(set)
        self.stats = TrafficStats()
        self._loss_rng = _random.Random(seed)

    @property
    def messages_lost(self) -> int:
        """Total non-deliveries, every reason (channel + backpressure)."""
        return self.stats.messages_lost

    @property
    def losses_by_reason(self) -> Counter[str]:
        """Per-reason non-delivery counts (lives on :attr:`stats`)."""
        return self.stats.losses_by_reason

    # -- clocked transport --------------------------------------------

    def attach_clock(self, clock, latency_mode: str = "link") -> None:
        """Bind a sim clock and select the delivery discipline.

        With ``latency_mode="link"`` every subsequent ``send``/``publish``
        schedules its delivery at ``clock.now + transfer latency``; with
        ``"zero"`` the clock is held but delivery stays synchronous.
        """
        if latency_mode not in LATENCY_MODES:
            raise ValueError(f"unknown latency_mode {latency_mode!r}")
        self.clock = clock
        self.latency_mode = latency_mode
        if self.fault_injector is not None and self.fault_injector.clock is None:
            self.fault_injector.clock = clock

    @property
    def deferred(self) -> bool:
        """True when deliveries ride the event clock (latency faithful)."""
        return self.latency_mode == "link" and self.clock is not None

    # -- registration -------------------------------------------------

    def register(
        self,
        address: str,
        link: LinkModel | None = None,
        *,
        inbox_capacity: int | None = None,
        drop_policy: str | None = None,
    ) -> Endpoint:
        """Register (or fetch) the endpoint for ``address``.

        ``inbox_capacity``/``drop_policy`` override the bus defaults for
        this endpoint (``None`` = inherit the bus setting).
        """
        if address in self._endpoints:
            return self._endpoints[address]
        endpoint = Endpoint(
            address,
            link or self.default_link,
            inbox_capacity=(
                inbox_capacity
                if inbox_capacity is not None
                else self.inbox_capacity
            ),
            drop_policy=drop_policy or self.drop_policy,
        )
        self._endpoints[address] = endpoint
        return endpoint

    def unregister(self, address: str) -> None:
        """Drop an endpoint and all its subscriptions (node churn)."""
        self._endpoints.pop(address, None)
        for subscribers in self._subscriptions.values():
            subscribers.discard(address)

    def endpoint(self, address: str) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise KeyError(f"no endpoint registered at {address!r}") from None

    def set_handler(
        self, address: str, handler: Callable[[Message], None] | None
    ) -> None:
        """Install (or clear) an arrival handler on an endpoint."""
        self.endpoint(address).handler = handler

    @property
    def addresses(self) -> list[str]:
        return sorted(self._endpoints)

    # -- pub/sub ------------------------------------------------------

    def subscribe(self, address: str, topic: str) -> None:
        """Subscribe an endpoint to a topic; it must be registered."""
        if address not in self._endpoints:
            raise KeyError(f"cannot subscribe unregistered endpoint {address!r}")
        if not topic:
            raise ValueError("topic must be non-empty")
        self._subscriptions[topic].add(address)

    def unsubscribe(self, address: str, topic: str) -> None:
        self._subscriptions[topic].discard(address)

    def subscribers(self, topic: str) -> set[str]:
        return set(self._subscriptions[topic])

    def publish(self, topic: str, message: Message) -> int:
        """Deliver ``message`` to every subscriber of ``topic``.

        Returns the number of deliveries (synchronous mode) or the
        number of scheduled transmissions (deferred mode); each one is
        metered separately (a broadcast over unicast links costs per
        receiver).
        """
        deliveries = 0
        for address in sorted(self._subscriptions[topic]):
            if address == message.source:
                continue  # don't loop a publication back to its publisher
            copy = Message(
                kind=message.kind,
                source=message.source,
                destination=address,
                payload=message.payload,
                payload_values=message.payload_values,
                timestamp=message.timestamp,
            )
            if self.deferred:
                self._schedule_delivery(copy)
                deliveries += 1
            elif self._deliver(copy):
                deliveries += 1
        return deliveries

    # -- point-to-point -----------------------------------------------

    def send(self, message: Message, *, strict: bool = True) -> bool:
        """Deliver a unicast message to its destination endpoint.

        Synchronous mode: returns True when the message reached the
        destination's inbox.  Deferred mode: returns True when the
        transmission was *scheduled* — the sender cannot know about an
        in-flight loss; it learns (or doesn't) from the missing reply.
        With ``strict`` (the default) an unregistered destination raises
        ``KeyError``; with ``strict=False`` it is counted as a loss and
        the sender still pays for the transmission — the drop-and-count
        path brokers use so node churn never aborts a round.
        """
        if message.destination not in self._endpoints:
            if strict:
                raise KeyError(
                    f"destination {message.destination!r} is not registered"
                )
            link = (
                self._endpoints[message.source].link
                if message.source in self._endpoints
                else self.default_link
            )
            self._record_loss(message, link, "unreachable")
            return False
        if self.deferred:
            self._schedule_delivery(message)
            return True
        return self._deliver(message)

    def _schedule_delivery(self, message: Message) -> None:
        """Put a message on the wire: arrival after the link latency."""
        delay = self._endpoints[message.destination].link.transfer_latency_s(
            message
        )
        self.clock.schedule_in(delay, lambda now: self._deliver(message))

    def _deliver(self, message: Message) -> bool:
        """Delivery-time processing: loss, faults, then the inbox.

        On the synchronous path this runs inside ``send``; on the
        deferred path it runs as the scheduled arrival event, so loss
        draws and fault verdicts happen at *delivery* sim time.
        """
        if message.destination not in self._endpoints:
            # Deferred mode only: the destination churned off the bus
            # while the message was in flight.
            link = (
                self._endpoints[message.source].link
                if message.source in self._endpoints
                else self.default_link
            )
            self._record_loss(message, link, "unreachable")
            return False
        destination = self._endpoints[message.destination]
        link = destination.link
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self._record_loss(message, link, "iid-loss")
            return False
        extra_latency = 0.0
        if self.fault_injector is not None:
            now = float(self.clock.now) if self.deferred else None
            verdict = self.fault_injector.evaluate(message, now=now)
            if not verdict.delivered:
                self._record_loss(message, link, verdict.reason or "fault")
                return False
            extra_latency = verdict.extra_latency_s
        if self.deferred and extra_latency > 0.0:
            # The degradation delay is real time on the wire: finish the
            # delivery when it elapses (faults are not re-evaluated).
            self.clock.schedule_in(
                extra_latency,
                lambda now: self._finish_delivery(message, extra_latency),
            )
            return True
        self._finish_delivery(message, extra_latency)
        return True

    def _finish_delivery(self, message: Message, extra_latency: float) -> None:
        """Hand the message to its endpoint and settle the accounting."""
        if message.destination not in self._endpoints:
            link = (
                self._endpoints[message.source].link
                if message.source in self._endpoints
                else self.default_link
            )
            self._record_loss(message, link, "unreachable")
            return
        destination = self._endpoints[message.destination]
        link = destination.link
        if self.deferred:
            message.arrived_at = float(self.clock.now)
        destination.stats.record(message, link)
        destination.stats.latency_sum_s += extra_latency
        if message.source in self._endpoints:
            sender = self._endpoints[message.source]
            sender.stats.record(message, link)
            sender.stats.latency_sum_s += extra_latency
        self.stats.record(message, link)
        self.stats.latency_sum_s += extra_latency
        if destination.handler is not None:
            destination.handler(message)
        else:
            self._enqueue(destination, message)

    def _enqueue(self, destination: Endpoint, message: Message) -> bool:
        """Push through the bounded inbox, accounting any overflow shed.

        Returns True when ``message`` itself ended up queued (something
        *else* may have been evicted to make room); False when the drop
        policy refused the arrival.
        """
        shed = destination.push(message)
        if shed is not None:
            self._record_backpressure(shed, destination)
        return shed is not message

    def requeue(self, message: Message) -> bool:
        """Re-enqueue an already-delivered message at its destination.

        The supported way for handlers and pollers to put back traffic
        they drained but did not consume: it re-enters through the
        bounded inbox (so the bound can never be dodged by a re-enqueue)
        but is *not* re-metered — the radio was paid exactly once, at
        delivery.  Returns True when the message is back in the queue.
        """
        return self._enqueue(self.endpoint(message.destination), message)

    def _record_backpressure(
        self, shed: Message, destination: Endpoint
    ) -> None:
        """Account a queue-overflow drop at ``destination``.

        Delivery metering (bytes, energy, latency) already happened in
        :meth:`_finish_delivery` before the queue refused the message,
        so only the non-delivery counters move — backpressure never
        re-bills the radio, and it is charged to its own reason so it
        can never be confused with an injected channel fault.
        """
        destination.dropped_backpressure += 1
        destination.stats.record_loss(BACKPRESSURE_REASON)
        if shed.source in self._endpoints:
            self._endpoints[shed.source].stats.record_loss(
                BACKPRESSURE_REASON
            )
        self.stats.record_loss(BACKPRESSURE_REASON)

    def _record_loss(
        self, message: Message, link: LinkModel, reason: str
    ) -> None:
        """Account a dropped delivery: the sender still burned its radio."""
        self.stats.record_loss(reason)
        if message.destination in self._endpoints:
            destination = self._endpoints[message.destination]
            destination.inbound_lost += 1
            destination.stats.record_loss(reason)
        if message.source in self._endpoints:
            sender = self._endpoints[message.source]
            sender.outbound_lost += 1
            sender.stats.record_loss(reason)
            sender.stats.messages += 1
            sender.stats.bytes += message.size_bytes
            sender.stats.transmit_energy_mj += link.transfer_energy_mj(
                message
            )
        self.stats.messages += 1
        self.stats.bytes += message.size_bytes
        self.stats.transmit_energy_mj += link.transfer_energy_mj(message)

    # -- convenience --------------------------------------------------

    def request_reply(
        self,
        request: Message,
        reply_kind: MessageKind,
        reply_payload: dict,
        reply_values: int = 1,
    ) -> Message | None:
        """Send a request and immediately deliver the canned reply.

        Utility for synchronous command/telemetry exchanges where the
        responder's behaviour is computed by the caller (the broker
        commands a node whose reading the simulation already knows).
        Both legs are metered.  A request lost in the channel suppresses
        the reply leg entirely (the responder never heard the question),
        and a lost reply returns ``None`` too — the caller sees exactly
        what it would have received.  Only valid on the synchronous
        zero-latency path: with scheduled delivery there is no
        "immediately", so callers must use plain sends and react to the
        arrival events instead.
        """
        if self.deferred:
            raise RuntimeError(
                "request_reply is a synchronous convenience; with "
                'latency_mode="link" use send() and handle the reply '
                "arrival event"
            )
        if not self.send(request):
            return None
        reply = request.reply(reply_kind, reply_payload, reply_values)
        if not self.send(reply):
            return None
        return reply
