"""Frozen pre-refactor network components kept as behavioural oracles.

:mod:`repro.network.reference.bus` is the message bus exactly as it
shipped before the transport split (PR 8); the Hypothesis pin in
``tests/network/test_transport_identity.py`` holds
:class:`repro.network.transport.SimTransport` bit-identical to it.
"""

from .bus import MessageBus as ReferenceMessageBus

__all__ = ["ReferenceMessageBus"]
