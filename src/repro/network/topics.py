"""Canonical pub/sub topic names for the metered message bus.

Publishers and subscribers must meet on *exactly* the same topic string
or traffic silently vanishes — a typo'd topic is a subscriber that never
hears anything.  Every topic used at a ``publish``/``subscribe`` call
site therefore lives here as a shared constant; reprolint rule RPR004
(`raw-topic`) rejects raw string literals at those call sites.

Adding a topic: define the constant, append it to :data:`ALL_TOPICS`,
and reference the constant from both ends of the exchange.
"""

from __future__ import annotations

__all__ = [
    "TOPIC_ZONE_ESTIMATES",
    "TOPIC_ROUND_COMPLETED",
    "TOPIC_ALERTS",
    "TOPIC_CONTEXT_DIGEST",
    "ALL_TOPICS",
]

#: LocalCloud heads publish each finished zone round here (support size
#: and measurement count); dashboards/monitors subscribe.
TOPIC_ZONE_ESTIMATES = "sensedroid/zones/estimates"

#: Event-driven round drivers' completion notifications.
TOPIC_ROUND_COMPLETED = "sensedroid/rounds/completed"

#: Threshold/anomaly alerts raised against reconstructed fields.
TOPIC_ALERTS = "sensedroid/alerts"

#: Aggregated group-context digests (Section 3 context sharing).
TOPIC_CONTEXT_DIGEST = "sensedroid/context/digest"

ALL_TOPICS: tuple[str, ...] = (
    TOPIC_ZONE_ESTIMATES,
    TOPIC_ROUND_COMPLETED,
    TOPIC_ALERTS,
    TOPIC_CONTEXT_DIGEST,
)
