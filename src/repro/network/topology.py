"""Network topologies: client-server (star) and peer-to-peer.

SenseDroid "provides libraries and APIs for communication, service
discovery, and collaboration among mobile phones for different network
topologies (e.g. client-server and peer-to-peer)".  A topology decides
which endpoint pairs may talk; combined with link ranges it yields the
connectivity graph the collaboration layer routes over.  Built on
networkx so experiments can interrogate standard graph properties
(connectivity, diameter, broker load).
"""

from __future__ import annotations

import itertools
import math

import networkx as nx

from .links import LinkModel

__all__ = [
    "star_topology",
    "mesh_topology",
    "proximity_topology",
    "hierarchy_topology",
    "broker_load",
    "is_connected",
]


def star_topology(center: str, leaves: list[str]) -> nx.Graph:
    """Client-server: every leaf connects only to the centre (broker)."""
    if not center:
        raise ValueError("centre address must be non-empty")
    graph = nx.Graph()
    graph.add_node(center, role="broker")
    for leaf in leaves:
        if leaf == center:
            raise ValueError("centre cannot also be a leaf")
        graph.add_node(leaf, role="node")
        graph.add_edge(center, leaf)
    return graph


def mesh_topology(members: list[str]) -> nx.Graph:
    """Full peer-to-peer mesh: all pairs connected."""
    graph = nx.Graph()
    graph.add_nodes_from(members, role="node")
    graph.add_edges_from(itertools.combinations(members, 2))
    return graph


def proximity_topology(
    positions: dict[str, tuple[float, float]], link: LinkModel
) -> nx.Graph:
    """Ad-hoc topology: endpoints within the link's radio range connect.

    This is the WiFi-ad-hoc LocalCloud mode the paper's Section 5 notes
    as the present development focus.
    """
    graph = nx.Graph()
    graph.add_nodes_from(positions, role="node")
    for (a, pa), (b, pb) in itertools.combinations(positions.items(), 2):
        distance = math.dist(pa, pb)
        if distance <= link.range_m:
            graph.add_edge(a, b, distance=distance)
    return graph


def hierarchy_topology(
    cloud: str,
    lc_heads: list[str],
    nc_brokers: dict[str, list[str]],
    nodes: dict[str, list[str]],
) -> nx.DiGraph:
    """The multi-tier tree of Fig. 1: cloud -> LC heads -> NC brokers ->
    mobile nodes.

    Parameters
    ----------
    cloud:
        Public-cloud root address.
    lc_heads:
        LocalCloud head-broker addresses.
    nc_brokers:
        Mapping from LC head to its NanoCloud broker addresses.
    nodes:
        Mapping from NC broker to its mobile-node addresses.

    Returns
    -------
    Directed graph with edges pointing down the hierarchy and a ``tier``
    attribute on every node (0=cloud, 1=LC, 2=NC, 3=node).
    """
    graph = nx.DiGraph()
    graph.add_node(cloud, tier=0, role="cloud")
    for head in lc_heads:
        graph.add_node(head, tier=1, role="lc-head")
        graph.add_edge(cloud, head)
        for broker in nc_brokers.get(head, []):
            graph.add_node(broker, tier=2, role="nc-broker")
            graph.add_edge(head, broker)
            for node in nodes.get(broker, []):
                graph.add_node(node, tier=3, role="node")
                graph.add_edge(broker, node)
    orphans = set(nc_brokers) - set(lc_heads)
    if orphans:
        raise ValueError(f"nc_brokers reference unknown LC heads: {sorted(orphans)}")
    known_brokers = {b for brokers in nc_brokers.values() for b in brokers}
    orphan_nodes = set(nodes) - known_brokers
    if orphan_nodes:
        raise ValueError(f"nodes reference unknown NC brokers: {sorted(orphan_nodes)}")
    return graph


def broker_load(graph: nx.Graph | nx.DiGraph, address: str) -> int:
    """Number of directly attached children/peers — the sink-bottleneck
    metric the hierarchy exists to bound (FIG1 bench)."""
    if address not in graph:
        raise KeyError(f"{address!r} not in topology")
    if graph.is_directed():
        return graph.out_degree(address)
    return graph.degree(address)


def is_connected(graph: nx.Graph | nx.DiGraph) -> bool:
    """Whether every endpoint can reach every other (undirected sense)."""
    if graph.number_of_nodes() == 0:
        return True
    undirected = graph.to_undirected() if graph.is_directed() else graph
    return nx.is_connected(undirected)
