"""The ingestion gateway: live WebSocket devices behind a real NanoCloud.

One :class:`IngestionGateway` owns the whole socket-facing stack:

- an :class:`repro.network.asyncio_transport.AsyncioTransport` (the
  socket backend of the Transport seam) carrying all middleware traffic,
- a :class:`repro.sim.wallclock.WallClock` on the same event loop,
- one zone — broker + (initially empty) NanoCloud wrapped by
  :meth:`repro.middleware.localcloud.LocalCloud.from_nanoclouds` — whose
  membership is the set of currently connected devices,
- an **unmodified** :class:`repro.middleware.rounds.ZoneRoundDriver`
  running real sensing rounds on the wall clock, and
- a hand-rolled HTTP/WebSocket server (:mod:`repro.gateway.protocol`):

  - ``GET /sensor/connect?type=...&x=...&y=...&mode=...`` upgrades to a
    per-device WebSocket stream; JSON frames carry readings/moves down
    and SENSE_COMMAND notifications up,
  - ``GET /zones/latest`` serves the newest zone estimate (the query
    frontend),
  - ``GET /stats`` serves the transport's ``stats_snapshot()`` plus
    gateway and round telemetry,
  - ``GET /field/truth`` serves the synthetic ground-truth grid (load
    generators sample it), and ``GET /healthz`` answers liveness.

This module is on reprolint RPR002's sanctioned realtime-module
allowlist (see ``docs/invariants.md``).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

import numpy as np

from ..fields.generators import smooth_field
from ..middleware.broker import Broker
from ..middleware.config import BrokerConfig
from ..middleware.localcloud import LocalCloud
from ..middleware.nanocloud import NanoCloud
from ..middleware.rounds import ZoneRoundDriver, ZoneRoundOutcome
from ..network.asyncio_transport import AsyncioTransport
from ..sensors.base import Environment, NodeState
from ..sensors.physical import TemperatureSensor
from ..sim.wallclock import WallClock
from . import protocol
from .streams import STREAM_MODES, GatewayNode, parse_device_frame

__all__ = ["GatewayConfig", "IngestionGateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Deployment shape and cadence of one ingestion gateway."""

    zone_width: int = 8
    zone_height: int = 8
    sensor_name: str = "temperature"
    period_s: float = 0.5
    max_staleness_s: float = 5.0
    #: Fixed sensors installed every N cells (0 = none): the fallback
    #: that keeps rounds solvable while few devices are connected.
    infrastructure_every: int = 0
    field_cutoff: float = 0.3
    field_amplitude: float = 3.0
    field_offset: float = 20.0
    seed: int = 0
    broker: BrokerConfig | None = None

    def __post_init__(self) -> None:
        if self.zone_width < 1 or self.zone_height < 1:
            raise ValueError("zone dimensions must be positive")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.infrastructure_every < 0:
            raise ValueError("infrastructure_every must be non-negative")


class _DeviceSession:
    """Book-keeping for one connected WebSocket device."""

    def __init__(
        self, node: GatewayNode, writer: asyncio.StreamWriter
    ) -> None:
        self.node = node
        self.writer = writer
        self.frames_in = 0


class IngestionGateway:
    """Assembles transport + clock + zone + driver + socket frontends."""

    def __init__(
        self,
        config: GatewayConfig | None = None,
        *,
        clock: WallClock | None = None,
    ) -> None:
        self.config = cfg = config or GatewayConfig()
        self.clock = clock if clock is not None else WallClock()
        self.transport = AsyncioTransport(self.clock)
        rng = np.random.default_rng(cfg.seed)
        truth = smooth_field(
            cfg.zone_width,
            cfg.zone_height,
            cutoff=cfg.field_cutoff,
            amplitude=cfg.field_amplitude,
            offset=cfg.field_offset,
            rng=cfg.seed,
        )
        self.env = Environment(fields={cfg.sensor_name: truth})
        broker = Broker(
            broker_id="gw/nc0/broker",
            zone_width=cfg.zone_width,
            zone_height=cfg.zone_height,
            sensor_name=cfg.sensor_name,
            config=cfg.broker,
            rng=int(rng.integers(2**31)),
        )
        self.transport.register(broker.broker_id)
        if cfg.infrastructure_every:
            n = cfg.zone_width * cfg.zone_height
            for cell in range(0, n, cfg.infrastructure_every):
                broker.add_infrastructure(
                    cell, TemperatureSensor(rng=int(rng.integers(2**31)))
                )
        self.nanocloud = NanoCloud(
            broker=broker, nodes={}, bus=self.transport
        )
        self.localcloud = LocalCloud.from_nanoclouds(
            "gw", self.transport, [self.nanocloud], config=broker.config
        )
        self.driver = ZoneRoundDriver(
            0,
            self.localcloud,
            self.env,
            self.clock,
            period_s=cfg.period_s,
            on_complete=self._on_round,
        )
        self.latest: ZoneRoundOutcome | None = None
        self.latencies_s: list[float] = []
        self.sessions: dict[str, _DeviceSession] = {}
        self.devices_joined = 0
        self.frames_in = 0
        self.frames_out = 0
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -----------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Bind the frontend and arm the round schedule."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        self.driver.start()
        return self._server

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("gateway is not started")
        return int(self._server.sockets[0].getsockname()[1])

    async def stop(self) -> None:
        self.driver.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def run_forever(self, host: str = "127.0.0.1", port: int = 8765) -> None:
        """CLI entry point: serve until interrupted (owns the loop)."""
        loop = self.clock.loop
        loop.run_until_complete(self.start(host, port))
        try:
            loop.run_forever()
        except KeyboardInterrupt:
            pass
        finally:
            loop.run_until_complete(self.stop())

    def _on_round(self, outcome: ZoneRoundOutcome) -> None:
        self.latest = outcome
        if not outcome.stale:
            self.latencies_s.append(outcome.latency_s)

    # -- connection routing --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await protocol.read_http_request(reader)
            if request is None:
                return
            if request.path == "/sensor/connect" and request.wants_websocket:
                await self._serve_device(request, reader, writer)
                return
            writer.write(self._route_http(request))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    def _route_http(self, request: protocol.HttpRequest) -> bytes:
        if request.method != "GET":
            return protocol.http_response(400, b'{"error":"GET only"}')
        if request.path == "/healthz":
            body = {"ok": True, "now": self.clock.now}
        elif request.path == "/stats":
            body = self.stats()
        elif request.path == "/zones/latest":
            body = self.latest_estimate()
        elif request.path == "/field/truth":
            truth = self.env.fields[self.config.sensor_name]
            body = {
                "sensor": self.config.sensor_name,
                "grid": truth.grid.tolist(),
            }
        else:
            return protocol.http_response(404, b'{"error":"not found"}')
        return protocol.http_response(200, json.dumps(body))

    # -- query frontend ------------------------------------------------

    def latest_estimate(self) -> dict[str, object]:
        """The newest ZoneEstimate round, JSON-shaped (``/zones/latest``)."""
        outcome = self.latest
        if outcome is None:
            return {"round": None, "rounds_completed": 0}
        return {
            "round": outcome.index,
            "zone_id": outcome.zone_id,
            "started_at": outcome.started_at,
            "completed_at": outcome.completed_at,
            "latency_s": outcome.latency_s,
            "partial": outcome.partial,
            "stale": outcome.stale,
            "rounds_completed": self.driver.rounds_completed,
            "field": outcome.result.field.grid.tolist(),
            "estimates": [
                {
                    "m": e.m,
                    "planned_m": e.planned_m,
                    "reports_ok": e.reports_ok,
                    "reports_refused": e.reports_refused,
                    "infra_reads": e.infra_reads,
                    "degraded": e.degraded,
                    "staleness_rounds": e.staleness_rounds,
                }
                for e in outcome.result.nc_estimates
            ],
        }

    def stats(self) -> dict[str, object]:
        """Transport snapshot + gateway and round telemetry (``/stats``)."""
        latencies = sorted(self.latencies_s)
        return {
            "transport": self.transport.stats_snapshot(),
            "devices": len(self.sessions),
            "devices_joined": self.devices_joined,
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "rounds_completed": self.driver.rounds_completed,
            "rounds_failed": self.driver.rounds_failed,
            "rounds_skipped": self.driver.rounds_skipped,
            "round_latency_p50_s": _percentile(latencies, 0.50),
            "round_latency_p99_s": _percentile(latencies, 0.99),
        }

    # -- device streams ------------------------------------------------

    def _assign_cell(self, request: protocol.HttpRequest) -> tuple[int, float, float]:
        """Map the query's position (or a round-robin slot) to a cell."""
        cfg = self.config
        n = cfg.zone_width * cfg.zone_height
        if "x" in request.query and "y" in request.query:
            x = float(request.query["x"])
            y = float(request.query["y"])
        else:
            slot = self.devices_joined % n
            x = float(slot // cfg.zone_height)
            y = float(slot % cfg.zone_height)
        i = int(np.clip(round(x), 0, cfg.zone_width - 1))
        j = int(np.clip(round(y), 0, cfg.zone_height - 1))
        return i * cfg.zone_height + j, x, y

    async def _serve_device(
        self,
        request: protocol.HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = request.header("sec-websocket-key")
        if not key:
            writer.write(
                protocol.http_response(400, b'{"error":"missing key"}')
            )
            await writer.drain()
            return
        sensor = request.query.get("type", self.config.sensor_name)
        mode = request.query.get("mode", "stream")
        if mode not in STREAM_MODES:
            writer.write(
                protocol.http_response(400, b'{"error":"bad mode"}')
            )
            await writer.drain()
            return
        writer.write(protocol.ws_handshake_response(key))
        await writer.drain()

        cell, x, y = self._assign_cell(request)
        self.devices_joined += 1
        requested = request.query.get("id", f"dev{self.devices_joined}")
        node_id = f"gw/nc0/{requested}"
        if node_id in self.sessions:  # duplicate id: make it unique
            node_id = f"{node_id}.{self.devices_joined}"

        def send_json(payload: dict) -> None:
            self.frames_out += 1
            writer.write(
                protocol.ws_encode(json.dumps(payload, separators=(",", ":")))
            )

        node = GatewayNode(
            node_id,
            sensor,
            send_json=send_json,
            now_fn=lambda: self.clock.now,
            mode=mode,
            max_staleness_s=self.config.max_staleness_s,
            state=NodeState(x=x, y=y),
        )
        session = _DeviceSession(node, writer)
        self.sessions[node_id] = session
        self.transport.register(node_id)
        self.nanocloud.nodes[node_id] = node
        self.nanocloud.broker.join(node_id, cell)
        send_json({"type": "joined", "node_id": node_id, "cell": cell})
        try:
            while True:
                message = await protocol.ws_read_message(reader)
                if message is None:
                    break
                opcode, payload = message
                if opcode == protocol.OP_PING:
                    writer.write(
                        protocol.ws_encode(payload, opcode=protocol.OP_PONG)
                    )
                    continue
                if opcode == protocol.OP_PONG:
                    continue
                frame = parse_device_frame(payload)
                if frame is None:
                    continue
                self.frames_in += 1
                session.frames_in += 1
                node.handle_device_frame(frame, self.transport)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self.sessions.pop(node_id, None)
            self.nanocloud.nodes.pop(node_id, None)
            self.nanocloud.broker.members.pop(node_id, None)
            self.transport.unregister(node_id)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return float(sorted_values[idx])
