"""The ingestion gateway: live WebSocket devices behind a real NanoCloud.

One :class:`IngestionGateway` owns the whole socket-facing stack:

- an :class:`repro.network.asyncio_transport.AsyncioTransport` (the
  socket backend of the Transport seam) carrying all middleware traffic,
- a :class:`repro.sim.wallclock.WallClock` on the same event loop,
- one zone — broker + (initially empty) NanoCloud wrapped by
  :meth:`repro.middleware.localcloud.LocalCloud.from_nanoclouds` — whose
  membership is the set of currently connected devices,
- an **unmodified** :class:`repro.middleware.rounds.ZoneRoundDriver`
  running real sensing rounds on the wall clock, and
- a hand-rolled HTTP/WebSocket server (:mod:`repro.gateway.protocol`):

  - ``GET /sensor/connect?type=...&x=...&y=...&mode=...`` upgrades to a
    per-device WebSocket stream; JSON frames carry readings/moves down
    and SENSE_COMMAND notifications up,
  - ``GET /zones/latest`` serves the newest zone estimate (the query
    frontend),
  - ``GET /stats`` serves the transport's ``stats_snapshot()`` plus
    gateway, resilience, overload and round telemetry,
  - ``GET /field/truth`` serves the synthetic ground-truth grid (load
    generators sample it), and ``GET /healthz`` answers liveness (plus
    the admission/overload state a load balancer would key on).

**Session resilience** (:class:`ResilienceConfig`, all default-off so
the PR-8 calm path is byte-identical): server-initiated ping/pong
liveness probes with idle-deadline dead-peer eviction, seeded resume
tokens that park a disconnected device's state — node identity, broker
membership, trust/quarantine standing, cached reading — for
``resume_ttl_s`` so a reconnect reclaims it instead of being churned
and re-admitted as a stranger, accept-time admission control (plain
HTTP 503 / WebSocket close 1013 when over capacity or degraded past
``shed_at_level``), and per-session token-bucket inbound rate limiting.
The session lifecycle state machine is documented in
``docs/architecture.md``.

This module is on reprolint RPR002's sanctioned realtime-module
allowlist (see ``docs/invariants.md``).
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field

import numpy as np

from ..fields.generators import smooth_field
from ..middleware.broker import Broker
from ..middleware.config import BrokerConfig
from ..middleware.localcloud import LocalCloud
from ..middleware.nanocloud import NanoCloud
from ..middleware.overload import MAX_LEVEL
from ..middleware.rounds import ZoneRoundDriver, ZoneRoundOutcome
from ..network.asyncio_transport import AsyncioTransport
from ..sensors.base import Environment, NodeState
from ..sensors.physical import TemperatureSensor
from ..sim.wallclock import WallClock, WallPeriodicHandle
from . import protocol
from .streams import STREAM_MODES, GatewayNode, parse_device_frame

__all__ = ["GatewayConfig", "ResilienceConfig", "IngestionGateway"]

#: Eviction books start from these reasons so ``/stats`` always shows
#: every counter, including the zero ones.
_EVICTION_REASONS = ("idle", "reset", "shed", "expired")


@dataclass(frozen=True)
class ResilienceConfig:
    """Session-lifecycle hardening knobs (all default-off).

    Attributes
    ----------
    ping_interval_s:
        Server-initiated WebSocket ping cadence (0 = never ping).
        Pings and any inbound frame refresh the session's liveness
        stamp; a responsive device therefore survives arbitrarily long
        idle spells.
    idle_timeout_s:
        Dead-peer deadline: a session whose last inbound frame (data,
        ping or pong) is older than this is evicted with close code
        1001 (0 = never evict on idleness).  Meaningful with pings
        armed at a shorter interval, but also works alone for
        push-only devices.
    resume_enabled:
        Issue a seeded resume token in the ``joined`` frame and *park*
        disconnected sessions instead of churning them: node identity,
        broker membership, trust/quarantine standing and the cached
        reading all survive, and a reconnect presenting the token
        reattaches to them (``resumed`` frame).
    resume_ttl_s:
        How long a parked session waits for its device before the
        state is churned for real (eviction reason ``expired``).
    max_sessions:
        Accept-time admission cap on live device sessions (0 = no
        cap).  Over the cap, plain HTTP connects get 503 and WebSocket
        upgrades get an RFC 6455 close with code 1013 ("try again
        later") immediately after the handshake.
    shed_at_level:
        Shed new connections whenever the broker's degradation ladder
        (PR 6) sits at or above this level (0 = never).  This is the
        gateway-side wiring of the overload controller: an overloaded
        zone stops *accepting* load before it starts dropping it.
    rate_limit_hz / rate_limit_burst:
        Per-session token bucket on inbound device frames: sustained
        rate and burst allowance.  Frames over budget are dropped and
        counted (``frames_rate_limited``), not disconnected — shedding
        excess readings is cheaper than churning the member
        (0 Hz = unlimited).
    """

    ping_interval_s: float = 0.0
    idle_timeout_s: float = 0.0
    resume_enabled: bool = False
    resume_ttl_s: float = 30.0
    max_sessions: int = 0
    shed_at_level: int = 0
    rate_limit_hz: float = 0.0
    rate_limit_burst: int = 8

    def __post_init__(self) -> None:
        if self.ping_interval_s < 0:
            raise ValueError("ping_interval_s must be non-negative")
        if self.idle_timeout_s < 0:
            raise ValueError("idle_timeout_s must be non-negative")
        if self.resume_ttl_s <= 0:
            raise ValueError("resume_ttl_s must be positive")
        if self.max_sessions < 0:
            raise ValueError("max_sessions must be non-negative")
        if not 0 <= self.shed_at_level <= MAX_LEVEL:
            raise ValueError(
                f"shed_at_level must be in [0, {MAX_LEVEL}]"
            )
        if self.rate_limit_hz < 0:
            raise ValueError("rate_limit_hz must be non-negative")
        if self.rate_limit_burst < 1:
            raise ValueError("rate_limit_burst must be >= 1")

    @property
    def any_enabled(self) -> bool:
        """True when any resilience feature can alter gateway behavior."""
        return (
            self.ping_interval_s > 0
            or self.idle_timeout_s > 0
            or self.resume_enabled
            or self.max_sessions > 0
            or self.shed_at_level > 0
            or self.rate_limit_hz > 0
        )

    @property
    def sweep_interval_s(self) -> float:
        """Cadence of the session-lifecycle sweep (0 = sweep not armed)."""
        candidates = [
            interval
            for interval in (
                self.ping_interval_s,
                self.idle_timeout_s / 2.0,
                self.resume_ttl_s / 4.0 if self.resume_enabled else 0.0,
            )
            if interval > 0.0
        ]
        return max(0.05, min(candidates)) if candidates else 0.0


@dataclass(frozen=True)
class GatewayConfig:
    """Deployment shape and cadence of one ingestion gateway."""

    zone_width: int = 8
    zone_height: int = 8
    sensor_name: str = "temperature"
    period_s: float = 0.5
    max_staleness_s: float = 5.0
    #: Fixed sensors installed every N cells (0 = none): the fallback
    #: that keeps rounds solvable while few devices are connected.
    infrastructure_every: int = 0
    field_cutoff: float = 0.3
    field_amplitude: float = 3.0
    field_offset: float = 20.0
    seed: int = 0
    broker: BrokerConfig | None = None
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    def __post_init__(self) -> None:
        if self.zone_width < 1 or self.zone_height < 1:
            raise ValueError("zone dimensions must be positive")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.infrastructure_every < 0:
            raise ValueError("infrastructure_every must be non-negative")


class _DeviceSession:
    """Book-keeping for one connected (or parked) WebSocket device."""

    def __init__(
        self,
        node: GatewayNode,
        writer: asyncio.StreamWriter,
        *,
        connected_at: float = 0.0,
        resume_token: str | None = None,
        bucket_capacity: int = 8,
    ) -> None:
        self.node = node
        self.writer = writer
        self.frames_in = 0
        self.connected_at = connected_at
        #: Liveness stamp: refreshed by every inbound frame (data, ping
        #: or pong); the lifecycle sweep evicts against it.
        self.last_seen = connected_at
        self.resume_token = resume_token
        #: Set while the session sits in the parked book awaiting resume.
        self.parked_at: float | None = None
        #: Why this session left the live book (None while live); also
        #: the reentrancy guard between the read loop, write-failure
        #: eviction and the lifecycle sweep.
        self.closed_reason: str | None = None
        # Token bucket (inbound rate limit): starts full.
        self.bucket = float(bucket_capacity)
        self.bucket_at = connected_at
        self.frames_limited = 0
        self.resumes = 0


class IngestionGateway:
    """Assembles transport + clock + zone + driver + socket frontends."""

    def __init__(
        self,
        config: GatewayConfig | None = None,
        *,
        clock: WallClock | None = None,
    ) -> None:
        self.config = cfg = config or GatewayConfig()
        self.clock = clock if clock is not None else WallClock()
        self.transport = AsyncioTransport(self.clock)
        rng = np.random.default_rng(cfg.seed)
        truth = smooth_field(
            cfg.zone_width,
            cfg.zone_height,
            cutoff=cfg.field_cutoff,
            amplitude=cfg.field_amplitude,
            offset=cfg.field_offset,
            rng=cfg.seed,
        )
        self.env = Environment(fields={cfg.sensor_name: truth})
        broker = Broker(
            broker_id="gw/nc0/broker",
            zone_width=cfg.zone_width,
            zone_height=cfg.zone_height,
            sensor_name=cfg.sensor_name,
            config=cfg.broker,
            rng=int(rng.integers(2**31)),
        )
        self.transport.register(broker.broker_id)
        if cfg.infrastructure_every:
            n = cfg.zone_width * cfg.zone_height
            for cell in range(0, n, cfg.infrastructure_every):
                broker.add_infrastructure(
                    cell, TemperatureSensor(rng=int(rng.integers(2**31)))
                )
        self.nanocloud = NanoCloud(
            broker=broker, nodes={}, bus=self.transport
        )
        self.localcloud = LocalCloud.from_nanoclouds(
            "gw", self.transport, [self.nanocloud], config=broker.config
        )
        self.driver = ZoneRoundDriver(
            0,
            self.localcloud,
            self.env,
            self.clock,
            period_s=cfg.period_s,
            on_complete=self._on_round,
        )
        self.latest: ZoneRoundOutcome | None = None
        self.latencies_s: list[float] = []
        self.sessions: dict[str, _DeviceSession] = {}
        #: Disconnected-but-resumable sessions, keyed by resume token.
        self._parked: dict[str, _DeviceSession] = {}
        #: Seeded token stream: same gateway seed -> same token series,
        #: so chaos runs replay (tokens never leave the deployment, so
        #: predictability is a feature here, not a leak).
        self._token_rng = random.Random(cfg.seed ^ 0x52455355)
        self.devices_joined = 0
        self.frames_in = 0
        self.frames_out = 0
        self.evictions: dict[str, int] = dict.fromkeys(_EVICTION_REASONS, 0)
        self.sessions_resumed = 0
        self.sessions_parked = 0
        self.resume_misses = 0
        self.frames_rate_limited = 0
        self.pings_sent = 0
        self.pongs_received = 0
        self._server: asyncio.AbstractServer | None = None
        self._sweep: WallPeriodicHandle | None = None

    # -- lifecycle -----------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Bind the frontend and arm the round + lifecycle schedules."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        self.driver.start()
        interval = self.config.resilience.sweep_interval_s
        if interval > 0.0:
            self._sweep = self.clock.schedule_periodic(
                interval, self._lifecycle_sweep
            )
        return self._server

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("gateway is not started")
        return int(self._server.sockets[0].getsockname()[1])

    async def stop(self) -> None:
        self.driver.stop()
        if self._sweep is not None:
            self.clock.cancel(self._sweep)
            self._sweep = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def run_forever(self, host: str = "127.0.0.1", port: int = 8765) -> None:
        """CLI entry point: serve until interrupted (owns the loop)."""
        loop = self.clock.loop
        loop.run_until_complete(self.start(host, port))
        try:
            loop.run_forever()
        except KeyboardInterrupt:
            pass
        finally:
            loop.run_until_complete(self.stop())

    def _on_round(self, outcome: ZoneRoundOutcome) -> None:
        self.latest = outcome
        if not outcome.stale:
            self.latencies_s.append(outcome.latency_s)

    # -- connection routing --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await protocol.read_http_request(reader)
            if request is None:
                return
            if request.path == "/sensor/connect" and request.wants_websocket:
                await self._serve_device(request, reader, writer)
                return
            writer.write(self._route_http(request))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    def _route_http(self, request: protocol.HttpRequest) -> bytes:
        if request.method != "GET":
            return protocol.http_response(400, b'{"error":"GET only"}')
        if request.path == "/healthz":
            body = self.health()
        elif request.path == "/stats":
            body = self.stats()
        elif request.path == "/zones/latest":
            body = self.latest_estimate()
        elif request.path == "/field/truth":
            truth = self.env.fields[self.config.sensor_name]
            body = {
                "sensor": self.config.sensor_name,
                "grid": truth.grid.tolist(),
            }
        elif request.path == "/sensor/connect":
            # A plain (non-upgrade) connect: tell shed clients to back
            # off with a real 503 rather than a generic 404.
            if self._shed_reason() is not None:
                return protocol.http_response(
                    503, b'{"error":"over capacity","retry":true}'
                )
            return protocol.http_response(
                400, b'{"error":"websocket upgrade required"}'
            )
        else:
            return protocol.http_response(404, b'{"error":"not found"}')
        return protocol.http_response(200, json.dumps(body))

    # -- query frontend ------------------------------------------------

    def latest_estimate(self) -> dict[str, object]:
        """The newest ZoneEstimate round, JSON-shaped (``/zones/latest``)."""
        outcome = self.latest
        if outcome is None:
            return {"round": None, "rounds_completed": 0}
        return {
            "round": outcome.index,
            "zone_id": outcome.zone_id,
            "started_at": outcome.started_at,
            "completed_at": outcome.completed_at,
            "latency_s": outcome.latency_s,
            "partial": outcome.partial,
            "stale": outcome.stale,
            "rounds_completed": self.driver.rounds_completed,
            "field": outcome.result.field.grid.tolist(),
            "estimates": [
                {
                    "m": e.m,
                    "planned_m": e.planned_m,
                    "reports_ok": e.reports_ok,
                    "reports_refused": e.reports_refused,
                    "infra_reads": e.infra_reads,
                    "degraded": e.degraded,
                    "staleness_rounds": e.staleness_rounds,
                }
                for e in outcome.result.nc_estimates
            ],
        }

    def health(self) -> dict[str, object]:
        """Liveness plus the admission state a balancer keys on."""
        shed = self._shed_reason()
        overload = self.nanocloud.broker.overload
        return {
            "ok": True,
            "now": self.clock.now,
            "devices": len(self.sessions),
            "parked": len(self._parked),
            "shedding": shed is not None,
            "shed_reason": shed,
            "overload_level": overload.ladder.level,
            "overload_pressure": overload.detector.pressure,
        }

    def stats(self) -> dict[str, object]:
        """Transport snapshot + gateway and round telemetry (``/stats``)."""
        latencies = sorted(self.latencies_s)
        res = self.config.resilience
        return {
            "transport": self.transport.stats_snapshot(),
            "devices": len(self.sessions),
            "devices_joined": self.devices_joined,
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "rounds_completed": self.driver.rounds_completed,
            "rounds_failed": self.driver.rounds_failed,
            "rounds_skipped": self.driver.rounds_skipped,
            "rounds_stale_served": self.driver.rounds_stale_served,
            "round_latency_p50_s": _percentile(latencies, 0.50),
            "round_latency_p99_s": _percentile(latencies, 0.99),
            "overload": self.nanocloud.broker.overload.snapshot(),
            "resilience": {
                "enabled": res.any_enabled,
                "parked": len(self._parked),
                "sessions_resumed": self.sessions_resumed,
                "sessions_parked": self.sessions_parked,
                "resume_misses": self.resume_misses,
                "frames_rate_limited": self.frames_rate_limited,
                "pings_sent": self.pings_sent,
                "pongs_received": self.pongs_received,
                "evictions": dict(self.evictions),
            },
        }

    # -- admission -----------------------------------------------------

    def _shed_reason(self) -> str | None:
        """Why a *new* device connection would be refused (None = admit)."""
        res = self.config.resilience
        if res.max_sessions and len(self.sessions) >= res.max_sessions:
            return "capacity"
        if res.shed_at_level:
            overload = self.nanocloud.broker.overload
            if (
                overload.enabled
                and overload.ladder.level >= res.shed_at_level
            ):
                return "overload"
        return None

    # -- device streams ------------------------------------------------

    def _assign_cell(self, request: protocol.HttpRequest) -> tuple[int, float, float]:
        """Map the query's position (or a round-robin slot) to a cell."""
        cfg = self.config
        n = cfg.zone_width * cfg.zone_height
        if "x" in request.query and "y" in request.query:
            x = float(request.query["x"])
            y = float(request.query["y"])
        else:
            slot = self.devices_joined % n
            x = float(slot // cfg.zone_height)
            y = float(slot % cfg.zone_height)
        i = int(np.clip(round(x), 0, cfg.zone_width - 1))
        j = int(np.clip(round(y), 0, cfg.zone_height - 1))
        return i * cfg.zone_height + j, x, y

    async def _serve_device(
        self,
        request: protocol.HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = request.header("sec-websocket-key")
        if not key:
            writer.write(
                protocol.http_response(400, b'{"error":"missing key"}')
            )
            await writer.drain()
            return
        sensor = request.query.get("type", self.config.sensor_name)
        mode = request.query.get("mode", "stream")
        if mode not in STREAM_MODES:
            writer.write(
                protocol.http_response(400, b'{"error":"bad mode"}')
            )
            await writer.drain()
            return
        shed = self._shed_reason()
        if shed is not None:
            # Complete the upgrade, then refuse at the WebSocket layer:
            # the client gets a real close frame with 1013 ("try again
            # later") instead of a silently dropped TCP stream.
            self.evictions["shed"] += 1
            writer.write(protocol.ws_handshake_response(key))
            writer.write(
                protocol.ws_encode(
                    protocol.ws_close_payload(
                        protocol.CLOSE_TRY_AGAIN_LATER, shed
                    ),
                    opcode=protocol.OP_CLOSE,
                )
            )
            await writer.drain()
            return
        writer.write(protocol.ws_handshake_response(key))
        await writer.drain()

        res = self.config.resilience
        session: _DeviceSession | None = None
        token = request.query.get("resume", "")
        if token and res.resume_enabled:
            session = self._resume_session(token, writer)
            if session is None:
                self.resume_misses += 1
        if session is not None:
            node_id = session.node.node_id
            self.sessions_resumed += 1
            session.resumes += 1
            session.node.send_json(
                {
                    "type": "resumed",
                    "node_id": node_id,
                    "cell": self.nanocloud.broker.members.get(node_id),
                    "resume": session.resume_token,
                }
            )
        else:
            session = self._admit_session(request, writer, sensor, mode)
        try:
            await self._pump_device(session, reader)
        finally:
            self._release_session(session)

    def _admit_session(
        self,
        request: protocol.HttpRequest,
        writer: asyncio.StreamWriter,
        sensor: str,
        mode: str,
    ) -> _DeviceSession:
        """Fresh join: mint the node, register everywhere, greet it."""
        cell, x, y = self._assign_cell(request)
        self.devices_joined += 1
        requested = request.query.get("id", f"dev{self.devices_joined}")
        node_id = f"gw/nc0/{requested}"
        # Duplicate id — live *or parked* (a parked node keeps its
        # NanoCloud slot, so a stranger reusing the id must not steal
        # it): make the newcomer unique.  devices_joined is monotone,
        # so one suffix suffices unless the client guessed it too; the
        # loop closes that corner.
        while node_id in self.sessions or node_id in self.nanocloud.nodes:
            node_id = f"{node_id}.{self.devices_joined}"

        res = self.config.resilience
        token = self._issue_token() if res.resume_enabled else None
        node = GatewayNode(
            node_id,
            sensor,
            send_json=_NO_UPLINK,
            now_fn=lambda: self.clock.now,
            mode=mode,
            max_staleness_s=self.config.max_staleness_s,
            state=NodeState(x=x, y=y),
        )
        session = _DeviceSession(
            node,
            writer,
            connected_at=self.clock.now,
            resume_token=token,
            bucket_capacity=res.rate_limit_burst,
        )
        node.attach(self._make_sender(session))
        self.sessions[node_id] = session
        self.transport.register(node_id)
        self.nanocloud.nodes[node_id] = node
        self.nanocloud.broker.join(node_id, cell)
        joined: dict[str, object] = {
            "type": "joined", "node_id": node_id, "cell": cell,
        }
        if token is not None:
            joined["resume"] = token
        node.send_json(joined)
        return session

    def _issue_token(self) -> str:
        """Mint a resume token unique across live and parked sessions."""
        while True:
            token = f"r{self._token_rng.getrandbits(64):016x}"
            if token in self._parked:
                continue
            if any(
                s.resume_token == token for s in self.sessions.values()
            ):
                continue
            return token

    def _resume_session(
        self, token: str, writer: asyncio.StreamWriter
    ) -> _DeviceSession | None:
        """Reattach a parked session to a fresh socket (None = miss)."""
        session = self._parked.pop(token, None)
        if session is None:
            return None
        parked_at = session.parked_at or 0.0
        if self.clock.now - parked_at > self.config.resilience.resume_ttl_s:
            # Presented too late (sweep hasn't fired yet): the state is
            # forfeit either way — churn it and treat this as a miss.
            self._churn(session)
            self.evictions["expired"] += 1
            return None
        session.writer = writer
        session.parked_at = None
        session.closed_reason = None
        session.last_seen = self.clock.now
        session.node.attach(self._make_sender(session))
        self.sessions[session.node.node_id] = session
        return session

    def _make_sender(self, session: _DeviceSession):
        """Uplink closure bound to the session's *current* writer.

        A write against a closing/broken transport evicts the session
        immediately (reason ``reset``) — a half-open peer must not
        linger in the live book until the next read happens to fail.
        """
        writer = session.writer

        def send_json(payload: dict) -> None:
            if writer.is_closing():
                self._on_write_failure(session)
                return
            try:
                self.frames_out += 1
                writer.write(
                    protocol.ws_encode(
                        json.dumps(payload, separators=(",", ":"))
                    )
                )
            except (ConnectionError, RuntimeError):
                self._on_write_failure(session)

        return send_json

    async def _pump_device(
        self, session: _DeviceSession, reader: asyncio.StreamReader
    ) -> None:
        """The per-connection read loop (shared by join and resume)."""
        node = session.node
        res = self.config.resilience
        limited = res.rate_limit_hz > 0.0
        try:
            while True:
                message = await protocol.ws_read_message(reader)
                if message is None:
                    break
                opcode, payload = message
                session.last_seen = self.clock.now
                if opcode == protocol.OP_PING:
                    session.writer.write(
                        protocol.ws_encode(payload, opcode=protocol.OP_PONG)
                    )
                    continue
                if opcode == protocol.OP_PONG:
                    self.pongs_received += 1
                    continue
                frame = parse_device_frame(payload)
                if frame is None:
                    continue
                if limited and not self._take_token(session):
                    session.frames_limited += 1
                    self.frames_rate_limited += 1
                    continue
                self.frames_in += 1
                session.frames_in += 1
                node.handle_device_frame(frame, self.transport)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass

    def _take_token(self, session: _DeviceSession) -> bool:
        """Refill and draw from the session's inbound token bucket."""
        res = self.config.resilience
        now = self.clock.now
        session.bucket = min(
            float(res.rate_limit_burst),
            session.bucket + (now - session.bucket_at) * res.rate_limit_hz,
        )
        session.bucket_at = now
        if session.bucket >= 1.0:
            session.bucket -= 1.0
            return True
        return False

    # -- session teardown ----------------------------------------------

    def _release_session(self, session: _DeviceSession) -> None:
        """Read loop ended: park (resume armed) or churn the session.

        No-op when the session was already evicted for cause (idle
        sweep, write failure, ...) — ``closed_reason`` is the guard.
        """
        if session.closed_reason is not None:
            return
        session.closed_reason = "disconnect"
        self._park_or_churn(session)

    def _on_write_failure(self, session: _DeviceSession) -> None:
        """An uplink write hit a dead transport: evict immediately."""
        if session.closed_reason is not None:
            return
        self._evict(session, "reset")

    def _evict(
        self,
        session: _DeviceSession,
        reason: str,
        *,
        close_code: int | None = None,
        close_reason: str = "",
    ) -> None:
        """Server-initiated removal of a live session, counted by reason."""
        if session.closed_reason is not None:
            return
        session.closed_reason = reason
        self.evictions[reason] += 1
        writer = session.writer
        if close_code is not None and not writer.is_closing():
            try:
                writer.write(
                    protocol.ws_encode(
                        protocol.ws_close_payload(close_code, close_reason),
                        opcode=protocol.OP_CLOSE,
                    )
                )
            except (ConnectionError, RuntimeError):
                pass
        try:
            writer.close()
        except RuntimeError:
            pass
        self._park_or_churn(session)

    def _park_or_churn(self, session: _DeviceSession) -> None:
        """Disconnected-session disposition: the resume seam."""
        node_id = session.node.node_id
        self.sessions.pop(node_id, None)
        res = self.config.resilience
        if res.resume_enabled and session.resume_token is not None:
            session.parked_at = self.clock.now
            session.node.detach()
            self._parked[session.resume_token] = session
            self.sessions_parked += 1
            return
        self._churn(session)

    def _churn(self, session: _DeviceSession) -> None:
        """Full removal: the device is gone for real, everywhere."""
        node_id = session.node.node_id
        self.sessions.pop(node_id, None)
        if session.resume_token is not None:
            self._parked.pop(session.resume_token, None)
        self.nanocloud.nodes.pop(node_id, None)
        self.nanocloud.broker.members.pop(node_id, None)
        self.transport.unregister(node_id)

    # -- liveness sweep ------------------------------------------------

    def _lifecycle_sweep(self, now: float) -> None:
        """Periodic session upkeep: idle eviction, pings, parked expiry."""
        res = self.config.resilience
        if res.idle_timeout_s > 0.0:
            for session in list(self.sessions.values()):
                if now - session.last_seen > res.idle_timeout_s:
                    self._evict(
                        session,
                        "idle",
                        close_code=protocol.CLOSE_GOING_AWAY,
                        close_reason="idle timeout",
                    )
        if res.ping_interval_s > 0.0:
            for session in list(self.sessions.values()):
                writer = session.writer
                try:
                    if writer.is_closing():
                        self._on_write_failure(session)
                        continue
                    writer.write(
                        protocol.ws_encode(b"", opcode=protocol.OP_PING)
                    )
                    self.pings_sent += 1
                except (ConnectionError, RuntimeError):
                    self._on_write_failure(session)
        if res.resume_enabled:
            for session in list(self._parked.values()):
                parked_at = session.parked_at or 0.0
                if now - parked_at > res.resume_ttl_s:
                    self._churn(session)
                    self.evictions["expired"] += 1


def _no_uplink(payload: dict) -> None:
    """Placeholder sender used only during node construction."""


_NO_UPLINK = _no_uplink


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return float(sorted_values[idx])
