"""Real-traffic ingestion gateway: live devices behind the middleware.

The gateway is the socket face of the stack: a hand-rolled asyncio
WebSocket/HTTP server (:mod:`repro.gateway.server`) accepts per-stream
device connections on ``/sensor/connect``, turns their JSON frames into
bus traffic for a live NanoCloud riding an
:class:`repro.network.asyncio_transport.AsyncioTransport`, and drives
real sensing rounds with an *unmodified*
:class:`repro.middleware.rounds.ZoneRoundDriver` on a
:class:`repro.sim.wallclock.WallClock`.  A query frontend serves the
latest zone estimates (``/zones/latest``) and the transport's traffic
accounting (``/stats``).  :mod:`repro.gateway.loadgen` replays seeded
sensor traces from thousands of concurrent WebSocket clients against it
— the INGEST bench's traffic source.
"""

from .loadgen import LoadGenerator, LoadReport
from .server import GatewayConfig, IngestionGateway
from .streams import GatewayNode

__all__ = [
    "GatewayConfig",
    "IngestionGateway",
    "GatewayNode",
    "LoadGenerator",
    "LoadReport",
]
