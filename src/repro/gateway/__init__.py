"""Real-traffic ingestion gateway: live devices behind the middleware.

The gateway is the socket face of the stack: a hand-rolled asyncio
WebSocket/HTTP server (:mod:`repro.gateway.server`) accepts per-stream
device connections on ``/sensor/connect``, turns their JSON frames into
bus traffic for a live NanoCloud riding an
:class:`repro.network.asyncio_transport.AsyncioTransport`, and drives
real sensing rounds with an *unmodified*
:class:`repro.middleware.rounds.ZoneRoundDriver` on a
:class:`repro.sim.wallclock.WallClock`.  A query frontend serves the
latest zone estimates (``/zones/latest``) and the transport's traffic
accounting (``/stats``).  :mod:`repro.gateway.loadgen` replays seeded
sensor traces from thousands of concurrent WebSocket clients against it
— the INGEST bench's traffic source.

Production hardening rides the same seam: the server's
:class:`~repro.gateway.server.ResilienceConfig` (default-off) arms
ping/pong liveness probing, seeded resume tokens that let reconnecting
devices reclaim their node identity and trust state, accept-time
admission control (HTTP 503 / WebSocket close 1013) and per-session
rate limiting; the load generator grows matching client-side reconnect
with capped backoff + resume replay; and :mod:`repro.gateway.chaos`
provides the seeded socket fault injector (connection kills, frame
delay/truncation, reconnect storms) the ROB-GATE bench drives both
through.
"""

from .chaos import ChaosConfig, ChaosProxy
from .loadgen import LoadGenerator, LoadReport
from .server import GatewayConfig, IngestionGateway, ResilienceConfig
from .streams import GatewayNode

__all__ = [
    "ChaosConfig",
    "ChaosProxy",
    "GatewayConfig",
    "IngestionGateway",
    "GatewayNode",
    "LoadGenerator",
    "LoadReport",
    "ResilienceConfig",
]
