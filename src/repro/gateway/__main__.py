"""CLI: ``python -m repro.gateway`` serves a live ingestion gateway.

Connect devices with any WebSocket client::

    ws://127.0.0.1:8765/sensor/connect?type=temperature&x=3&y=4

and query the zone with plain HTTP::

    curl http://127.0.0.1:8765/zones/latest
    curl http://127.0.0.1:8765/stats
"""

from __future__ import annotations

import argparse

from .server import GatewayConfig, IngestionGateway, ResilienceConfig


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Serve the SenseDroid ingestion gateway.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--zone-width", type=int, default=8)
    parser.add_argument("--zone-height", type=int, default=8)
    parser.add_argument("--sensor", default="temperature")
    parser.add_argument(
        "--period", type=float, default=0.5,
        help="sensing round period in seconds",
    )
    parser.add_argument(
        "--infrastructure-every", type=int, default=0,
        help="install a fixed sensor every N cells (0 = none)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--resume", action="store_true",
        help="issue resume tokens; reconnecting devices reclaim their "
        "node identity, trust state and cached reading",
    )
    parser.add_argument(
        "--resume-ttl", type=float, default=30.0,
        help="seconds a disconnected device's state is parked for resume",
    )
    parser.add_argument(
        "--ping-interval", type=float, default=0.0,
        help="server-initiated WebSocket ping cadence (0 = off)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=0.0,
        help="evict sessions silent for this many seconds (0 = off)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=0,
        help="admission cap on live devices; over it, connects get "
        "HTTP 503 / WebSocket close 1013 (0 = no cap)",
    )
    parser.add_argument(
        "--rate-limit-hz", type=float, default=0.0,
        help="per-session inbound frame budget (token bucket, 0 = off)",
    )
    args = parser.parse_args(argv)
    gateway = IngestionGateway(
        GatewayConfig(
            zone_width=args.zone_width,
            zone_height=args.zone_height,
            sensor_name=args.sensor,
            period_s=args.period,
            infrastructure_every=args.infrastructure_every,
            seed=args.seed,
            resilience=ResilienceConfig(
                resume_enabled=args.resume,
                resume_ttl_s=args.resume_ttl,
                ping_interval_s=args.ping_interval,
                idle_timeout_s=args.idle_timeout,
                max_sessions=args.max_sessions,
                rate_limit_hz=args.rate_limit_hz,
            ),
        )
    )
    print(
        f"gateway: ws://{args.host}:{args.port}/sensor/connect  "
        f"http://{args.host}:{args.port}/zones/latest"
    )
    gateway.run_forever(args.host, args.port)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
