"""Minimal HTTP/1.1 + WebSocket (RFC 6455) framing on asyncio streams.

The container ships no ``websockets``/``aiohttp``, so the gateway
speaks the protocols itself.  Scope is deliberately small: enough HTTP
to route a handful of GET endpoints and complete the WebSocket upgrade,
and the WebSocket frame subset real device streams use — text/binary
with client masking, ping/pong, close, and (rare) continuation frames.
Both server and client halves live here so the load generator exercises
the exact bytes a real device would send.

This module is on reprolint RPR002's sanctioned realtime-module
allowlist (see ``docs/invariants.md``).
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import random
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpRequest",
    "read_http_request",
    "http_response",
    "websocket_accept_key",
    "ws_handshake_response",
    "ws_encode",
    "ws_read_message",
    "ws_client_handshake",
    "ws_close_payload",
    "ws_parse_close",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "CLOSE_NORMAL",
    "CLOSE_GOING_AWAY",
    "CLOSE_POLICY_VIOLATION",
    "CLOSE_TRY_AGAIN_LATER",
]

#: RFC 6455 section 1.3: the fixed GUID concatenated to the client key.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Upper bound on one WebSocket message (device frames are tiny JSON;
#: anything bigger is a broken or hostile peer).
MAX_WS_MESSAGE_BYTES = 1 << 20

_MAX_HEADER_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    503: "Service Unavailable",
    101: "Switching Protocols",
}

#: RFC 6455 section 7.4.1 status codes the gateway actually sends.
CLOSE_NORMAL = 1000
CLOSE_GOING_AWAY = 1001  # dead-peer / idle eviction
CLOSE_POLICY_VIOLATION = 1008
CLOSE_TRY_AGAIN_LATER = 1013  # admission-shed: reconnect after backoff


@dataclass
class HttpRequest:
    """One parsed HTTP/1.1 request head (plus optional body)."""

    method: str
    target: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.header("upgrade").lower()
            and "upgrade" in self.header("connection").lower()
        )


async def read_http_request(
    reader: asyncio.StreamReader,
) -> HttpRequest | None:
    """Parse one request from the stream; ``None`` on EOF/garbage."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (
        asyncio.IncompleteReadError,
        asyncio.LimitOverrunError,
        ConnectionError,
    ):
        return None
    if len(head) > _MAX_HEADER_BYTES:
        return None
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        return None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            return None
        if not 0 <= n <= _MAX_HEADER_BYTES:
            return None
        try:
            body = await reader.readexactly(n)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def http_response(
    status: int,
    body: bytes | str = b"",
    *,
    content_type: str = "application/json",
) -> bytes:
    """Serialise one plain (non-upgrade) HTTP response."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    reason = _REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


# -- websocket handshake ---------------------------------------------------


def websocket_accept_key(client_key: str) -> str:
    """Sec-WebSocket-Accept for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1(
        (client_key + _WS_GUID).encode("latin-1")
    ).digest()
    return base64.b64encode(digest).decode("latin-1")


def ws_handshake_response(client_key: str) -> bytes:
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept_key(client_key)}\r\n"
        "\r\n"
    ).encode("latin-1")


async def ws_client_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    path: str,
    *,
    host: str = "gateway",
    rng: random.Random | None = None,
) -> None:
    """Send the upgrade request and verify the server's accept key.

    ``rng`` seeds the nonce (and later, frame masks) so load-generator
    byte streams replay deterministically; ``None`` uses an unseeded
    generator, which is fine for interactive clients.
    """
    rng = rng or random.Random()
    key = base64.b64encode(rng.randbytes(16)).decode("latin-1")
    writer.write(
        (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        ).encode("latin-1")
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    if " 101 " not in lines[0] + " ":
        raise ConnectionError(f"websocket upgrade refused: {lines[0]!r}")
    accept = ""
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "sec-websocket-accept":
            accept = value.strip()
    if accept != websocket_accept_key(key):
        raise ConnectionError("websocket accept key mismatch")


# -- websocket frames ------------------------------------------------------


def ws_close_payload(code: int, reason: str = "") -> bytes:
    """Close-frame payload: 2-byte status code + optional UTF-8 reason.

    RFC 6455 section 5.5.1 — the seed gateway dropped the TCP stream
    without ever sending a close frame; server-initiated disconnects now
    say *why* (``CLOSE_GOING_AWAY`` for dead-peer eviction,
    ``CLOSE_TRY_AGAIN_LATER`` for admission shedding) so clients can
    pick reconnect-now vs back-off.
    """
    if not 1000 <= code <= 4999:
        raise ValueError(f"close code {code} outside RFC 6455 range")
    return code.to_bytes(2, "big") + reason.encode("utf-8")


def ws_parse_close(payload: bytes) -> tuple[int | None, str]:
    """Decode a close-frame payload into ``(code, reason)``.

    An empty payload is legal (no code given); a malformed reason is
    replaced rather than raised — peers close with what they have.
    """
    if len(payload) < 2:
        return None, ""
    code = int.from_bytes(payload[:2], "big")
    return code, payload[2:].decode("utf-8", errors="replace")


def ws_encode(
    payload: bytes | str,
    *,
    opcode: int = OP_TEXT,
    mask: bool = False,
    rng: random.Random | None = None,
) -> bytes:
    """Encode one complete (FIN) WebSocket frame.

    Servers send unmasked (``mask=False``); clients MUST mask
    (``mask=True``) per RFC 6455 section 5.3 — ``rng`` supplies the
    masking key so client streams stay reproducible under a seed.
    """
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    header = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0x00
    n = len(payload)
    if n < 126:
        header.append(mask_bit | n)
    elif n < 1 << 16:
        header.append(mask_bit | 126)
        header += n.to_bytes(2, "big")
    else:
        header.append(mask_bit | 127)
        header += n.to_bytes(8, "big")
    if not mask:
        return bytes(header) + payload
    key = (rng or random.Random()).randbytes(4)
    header += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + masked


async def ws_read_message(
    reader: asyncio.StreamReader,
    *,
    include_close: bool = False,
) -> tuple[int, bytes] | None:
    """Read one complete message; ``None`` on EOF or a close frame.

    Reassembles continuation fragments and unmasks client frames.
    Control frames interleaved inside a fragmented message are returned
    to the caller in arrival order (the caller answers pings).

    ``include_close=True`` surfaces a close frame as ``(OP_CLOSE,
    payload)`` instead of folding it into ``None`` — resilient clients
    need the status code (:func:`ws_parse_close`) to distinguish an
    admission shed (1013, back off) from a normal goodbye.
    """
    opcode: int | None = None
    parts: list[bytes] = []
    while True:
        try:
            b1, b2 = await reader.readexactly(2)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        fin = bool(b1 & 0x80)
        frame_op = b1 & 0x0F
        masked = bool(b2 & 0x80)
        length = b2 & 0x7F
        if length == 126:
            length = int.from_bytes(await reader.readexactly(2), "big")
        elif length == 127:
            length = int.from_bytes(await reader.readexactly(8), "big")
        if length > MAX_WS_MESSAGE_BYTES:
            return None
        key = await reader.readexactly(4) if masked else b""
        try:
            payload = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        if masked:
            payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        if frame_op == OP_CLOSE:
            return (OP_CLOSE, payload) if include_close else None
        if frame_op in (OP_PING, OP_PONG):
            return (frame_op, payload)  # control frames never fragment
        if frame_op != OP_CONT:
            opcode = frame_op
            parts = [payload]
        else:
            if opcode is None:
                return None  # continuation with nothing to continue
            parts.append(payload)
        if fin and opcode is not None:
            return (opcode, b"".join(parts))
