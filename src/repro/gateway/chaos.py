"""Socket chaos harness: a seeded TCP fault proxy for the gateway.

:class:`ChaosProxy` sits between WebSocket devices and a running
:class:`repro.gateway.server.IngestionGateway` and injects the faults a
mobile fleet actually produces — the connection-robustness regime the
middleware literature assumes (LC-tier nodes come and go; reports may
simply never arrive):

- **connection kills** — a per-connection lifetime drawn from a seeded
  uniform window, enforced with ``transport.abort()`` so both sides see
  an abrupt RST-style reset, never a polite close;
- **frame delay** — a seeded per-chunk forward delay, smearing frame
  arrival the way a congested uplink does;
- **frame truncation** — with configured probability a chunk is cut in
  half mid-frame and the connection aborted, leaving the peer's frame
  decoder holding a partial length-prefixed message;
- **reconnect storms** — :meth:`ChaosProxy.storm` kills a seeded
  fraction of the live connections *at once*, the mass-churn event the
  ROB-GATE bench drives every round.

All draws come from ``random.Random(seed)`` streams (one master for
storm membership, one per connection for lifetime/delay/truncation), so
a rerun with the same seed replays the same fault schedule; exact
wall-clock interleaving naturally still varies with the host.

This module is on reprolint RPR002's sanctioned realtime-module
allowlist (see ``docs/invariants.md``).
"""

from __future__ import annotations

import asyncio
import math
import random
from dataclasses import dataclass

__all__ = ["ChaosConfig", "ChaosProxy"]

_CHUNK = 64 * 1024


@dataclass(frozen=True)
class ChaosConfig:
    """Fault mix for one :class:`ChaosProxy` (all default-off).

    Attributes
    ----------
    kill_after_s:
        ``(lo, hi)`` uniform window for a per-connection lifetime;
        ``None`` disables scheduled kills.  Kills are aborts (RST), not
        closes — the victim finds out the hard way.
    kill_prob:
        Fraction of connections given a scheduled lifetime at all
        (draws from the connection's own stream).
    delay_s:
        ``(lo, hi)`` uniform extra delay applied to every forwarded
        chunk, both directions.  ``(0, 0)`` forwards immediately.
    truncate_prob:
        Per-chunk probability of forwarding only the first half of the
        chunk and then aborting the connection — a frame cut off
        mid-write.
    seed:
        Master seed; connection ``i`` derives stream ``seed*7919+i``.
    """

    kill_after_s: tuple[float, float] | None = None
    kill_prob: float = 1.0
    delay_s: tuple[float, float] = (0.0, 0.0)
    truncate_prob: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kill_after_s is not None:
            lo, hi = self.kill_after_s
            if not 0.0 <= lo <= hi:
                raise ValueError("need 0 <= kill_after_s lo <= hi")
        if not 0.0 <= self.kill_prob <= 1.0:
            raise ValueError("kill_prob must be in [0, 1]")
        lo, hi = self.delay_s
        if not 0.0 <= lo <= hi:
            raise ValueError("need 0 <= delay_s lo <= hi")
        if not 0.0 <= self.truncate_prob <= 1.0:
            raise ValueError("truncate_prob must be in [0, 1]")


class _ProxyConn:
    """One proxied connection: both transports plus its kill timer."""

    def __init__(
        self,
        conn_id: int,
        client_writer: asyncio.StreamWriter,
        upstream_writer: asyncio.StreamWriter,
    ) -> None:
        self.conn_id = conn_id
        self.client_writer = client_writer
        self.upstream_writer = upstream_writer
        self.kill_timer: asyncio.TimerHandle | None = None
        self.dead = False

    def abort(self) -> None:
        """RST both halves; idempotent."""
        if self.dead:
            return
        self.dead = True
        if self.kill_timer is not None:
            self.kill_timer.cancel()
        for writer in (self.client_writer, self.upstream_writer):
            transport = writer.transport
            if transport is not None and not transport.is_closing():
                transport.abort()


class ChaosProxy:
    """Seeded fault-injecting TCP proxy in front of one upstream.

    Usage::

        proxy = ChaosProxy("127.0.0.1", gateway.port, ChaosConfig(...))
        await proxy.start()
        # point clients at proxy.port instead of gateway.port
        ...
        proxy.storm(0.3)        # kill 30% of live connections now
        await proxy.stop()
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        config: ChaosConfig | None = None,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.config = config or ChaosConfig()
        self._storm_rng = random.Random(self.config.seed)
        self._conns: dict[int, _ProxyConn] = {}
        self._next_id = 0
        self._server: asyncio.AbstractServer | None = None
        # Telemetry the chaos tests and the ROB-GATE bench read.
        self.connections_total = 0
        self.kills = 0
        self.storm_kills = 0
        self.truncations = 0
        self.upstream_failures = 0

    # -- lifecycle -----------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        return self._server

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("chaos proxy is not started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def active(self) -> int:
        """Live proxied connections right now."""
        return len(self._conns)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._conns.values()):
            conn.abort()
        self._conns.clear()

    # -- fault injection -----------------------------------------------

    def storm(self, fraction: float) -> int:
        """Kill ``ceil(fraction * active)`` live connections at once.

        Victims are drawn from the master storm stream over the sorted
        connection ids, so a same-seed rerun storms the same cohorts.
        Returns the number of connections killed.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        live = sorted(self._conns)
        count = min(len(live), math.ceil(fraction * len(live)))
        if count == 0:
            return 0
        victims = self._storm_rng.sample(live, count)
        for conn_id in victims:
            conn = self._conns.pop(conn_id, None)
            if conn is not None:
                conn.abort()
                self.kills += 1
                self.storm_kills += 1
        return count

    # -- per-connection plumbing ---------------------------------------

    async def _handle_connection(
        self,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        conn_id = self._next_id
        self._next_id += 1
        self.connections_total += 1
        rng = random.Random(self.config.seed * 7919 + conn_id)
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            self.upstream_failures += 1
            client_writer.close()
            return
        conn = _ProxyConn(conn_id, client_writer, upstream_writer)
        self._conns[conn_id] = conn

        cfg = self.config
        if (
            cfg.kill_after_s is not None
            and rng.random() < cfg.kill_prob
        ):
            lifetime = rng.uniform(*cfg.kill_after_s)
            loop = asyncio.get_running_loop()
            conn.kill_timer = loop.call_later(
                lifetime, self._scheduled_kill, conn
            )
        try:
            await asyncio.gather(
                self._pump(conn, rng, client_reader, upstream_writer),
                self._pump(conn, rng, upstream_reader, client_writer),
            )
        finally:
            self._drop(conn)

    def _scheduled_kill(self, conn: _ProxyConn) -> None:
        if conn.dead:
            return
        self.kills += 1
        self._conns.pop(conn.conn_id, None)
        conn.abort()

    def _drop(self, conn: _ProxyConn) -> None:
        self._conns.pop(conn.conn_id, None)
        conn.abort()

    async def _pump(
        self,
        conn: _ProxyConn,
        rng: random.Random,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Forward one direction, applying delay/truncation per chunk."""
        cfg = self.config
        lo, hi = cfg.delay_s
        try:
            while not conn.dead:
                chunk = await reader.read(_CHUNK)
                if not chunk:
                    # Clean EOF on one side: close the other politely so
                    # ordinary (non-fault) teardown stays ordinary.
                    if not conn.dead:
                        writer.write_eof()
                    return
                if hi > 0.0:
                    await asyncio.sleep(rng.uniform(lo, hi))
                if conn.dead:
                    return
                if (
                    cfg.truncate_prob > 0.0
                    and len(chunk) > 1
                    and rng.random() < cfg.truncate_prob
                ):
                    self.truncations += 1
                    self.kills += 1
                    writer.write(chunk[: len(chunk) // 2])
                    self._conns.pop(conn.conn_id, None)
                    conn.abort()
                    return
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
