"""Seeded WebSocket load generator: thousands of concurrent devices.

Replays mobility+sensor traces against a running
:class:`repro.gateway.server.IngestionGateway`: each client connects to
``/sensor/connect``, parks on a deterministic cell, and pushes readings
sampled from the ground-truth field plus seeded Gaussian noise at its
configured rate.  Clients are plain asyncio coroutines speaking the
masked client frames of :mod:`repro.gateway.protocol`, so the gateway
sees byte-exact real WebSocket traffic; every random draw (mask keys,
noise, phase jitter) comes from per-client ``random.Random(seed)``
streams, so a run replays exactly.

This module is on reprolint RPR002's sanctioned realtime-module
allowlist (see ``docs/invariants.md``).
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass

import numpy as np

from . import protocol

__all__ = ["LoadGenerator", "LoadReport"]


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    clients: int
    connected: int
    failures: int
    frames_sent: int
    commands_seen: int
    duration_s: float

    @property
    def frames_per_s(self) -> float:
        return self.frames_sent / self.duration_s if self.duration_s else 0.0


class LoadGenerator:
    """Drives ``n_clients`` concurrent device streams at one gateway.

    Parameters
    ----------
    host / port:
        The gateway frontend.
    n_clients:
        Concurrent WebSocket devices.
    rate_hz:
        Per-client reading rate.
    truth:
        Ground-truth grid readings are sampled from; ``None`` fetches it
        from the gateway's ``/field/truth`` endpoint at run start.
    noise_std:
        Measurement noise each client adds to (and claims about) its
        readings.
    zone_width / zone_height:
        Zone geometry used to park clients cell-by-cell so the first
        ``width*height`` clients cover every cell.
    seed:
        Master seed; client ``i`` derives its own independent stream.
    connect_concurrency:
        Cap on simultaneous connection attempts (a thundering herd of
        thousands of TCP dials would spuriously fail).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        n_clients: int,
        rate_hz: float = 2.0,
        truth: np.ndarray | None = None,
        noise_std: float = 0.5,
        zone_width: int = 8,
        zone_height: int = 8,
        seed: int = 0,
        connect_concurrency: int = 64,
    ) -> None:
        if n_clients < 1:
            raise ValueError("n_clients must be positive")
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        self.host = host
        self.port = port
        self.n_clients = n_clients
        self.rate_hz = rate_hz
        self.truth = truth
        self.noise_std = noise_std
        self.zone_width = zone_width
        self.zone_height = zone_height
        self.seed = seed
        self._gate = asyncio.Semaphore(connect_concurrency)

    async def run(self, duration_s: float) -> LoadReport:
        """Run every client for ``duration_s``; returns the aggregate."""
        truth = self.truth
        if truth is None:
            truth = await self._fetch_truth()
        truth = np.asarray(truth, dtype=float)
        results = await asyncio.gather(
            *(
                self._client(idx, truth, duration_s)
                for idx in range(self.n_clients)
            ),
            return_exceptions=True,
        )
        frames = commands = connected = failures = 0
        for result in results:
            if isinstance(result, BaseException):
                failures += 1
                continue
            connected += 1
            frames += result[0]
            commands += result[1]
        return LoadReport(
            clients=self.n_clients,
            connected=connected,
            failures=failures,
            frames_sent=frames,
            commands_seen=commands,
            duration_s=duration_s,
        )

    async def _fetch_truth(self) -> np.ndarray:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                f"GET /field/truth HTTP/1.1\r\nHost: {self.host}\r\n\r\n"
                .encode("latin-1")
            )
            await writer.drain()
            raw = await reader.read()  # Connection: close bounds it
        finally:
            writer.close()
        body = raw.split(b"\r\n\r\n", 1)[1]
        return np.asarray(json.loads(body)["grid"], dtype=float)

    async def _client(
        self, idx: int, truth: np.ndarray, duration_s: float
    ) -> tuple[int, int]:
        """One device: connect, stream readings, count commands."""
        rng = random.Random(self.seed * 1_000_003 + idx)
        cell = idx % (self.zone_width * self.zone_height)
        x = cell // self.zone_height
        y = cell % self.zone_height
        value_true = float(truth[y, x])
        path = (
            f"/sensor/connect?x={x}&y={y}&mode=stream&id=load{idx}"
        )
        async with self._gate:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
            await protocol.ws_client_handshake(
                reader, writer, path, rng=rng
            )
        commands = 0

        async def drain_inbound() -> None:
            nonlocal commands
            while True:
                message = await protocol.ws_read_message(reader)
                if message is None:
                    return
                opcode, payload = message
                if opcode == protocol.OP_PING:
                    writer.write(
                        protocol.ws_encode(
                            payload,
                            opcode=protocol.OP_PONG,
                            mask=True,
                            rng=rng,
                        )
                    )
                    continue
                if opcode == protocol.OP_TEXT:
                    try:
                        frame = json.loads(payload)
                    except json.JSONDecodeError:
                        continue
                    if frame.get("type") == "command":
                        commands += 1

        drainer = asyncio.ensure_future(drain_inbound())
        frames = 0
        period = 1.0 / self.rate_hz
        try:
            # Phase jitter: desynchronise the fleet so readings arrive
            # spread over the period instead of in one burst.
            await asyncio.sleep(rng.uniform(0.0, period))
            ticks = max(1, int(duration_s * self.rate_hz))
            for _ in range(ticks):
                reading = {
                    "type": "reading",
                    "value": value_true + rng.gauss(0.0, self.noise_std),
                    "noise_std": self.noise_std,
                }
                writer.write(
                    protocol.ws_encode(
                        json.dumps(reading, separators=(",", ":")),
                        mask=True,
                        rng=rng,
                    )
                )
                await writer.drain()
                frames += 1
                await asyncio.sleep(period)
        finally:
            drainer.cancel()
            try:
                writer.write(
                    protocol.ws_encode(
                        b"", opcode=protocol.OP_CLOSE, mask=True, rng=rng
                    )
                )
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()
        return frames, commands
