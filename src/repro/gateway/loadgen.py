"""Seeded WebSocket load generator: thousands of concurrent devices.

Replays mobility+sensor traces against a running
:class:`repro.gateway.server.IngestionGateway`: each client connects to
``/sensor/connect``, parks on a deterministic cell, and pushes readings
sampled from the ground-truth field plus seeded Gaussian noise at its
configured rate.  Clients are plain asyncio coroutines speaking the
masked client frames of :mod:`repro.gateway.protocol`, so the gateway
sees byte-exact real WebSocket traffic; every random draw (mask keys,
noise, phase jitter, backoff jitter) comes from per-client
``random.Random(seed)`` streams, so a run replays exactly.

With ``reconnect=True`` each client survives connection loss the way a
real device SDK would: capped exponential backoff with seeded jitter,
then a fresh dial — and with ``resume=True`` it replays the resume
token from its ``joined`` frame so the gateway reattaches it to its
parked session (node identity, trust, cached reading) instead of
admitting a stranger.  A close frame carrying 1013 ("try again later",
the gateway's admission shed) is honoured with a full backoff step
before redialling.  Both default off: the calm-path byte stream is
identical to the PR-8 generator.

This module is on reprolint RPR002's sanctioned realtime-module
allowlist (see ``docs/invariants.md``).
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass

import numpy as np

from . import protocol

__all__ = ["LoadGenerator", "LoadReport"]


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    clients: int
    connected: int
    failures: int
    frames_sent: int
    commands_seen: int
    duration_s: float
    #: Successful redials after a lost connection (reconnect mode).
    reconnects: int = 0
    #: Redials the gateway acknowledged with a ``resumed`` frame.
    resumes: int = 0
    #: Close frames carrying 1013 — admission sheds the fleet absorbed.
    shed_closes: int = 0

    @property
    def frames_per_s(self) -> float:
        return self.frames_sent / self.duration_s if self.duration_s else 0.0


class _ClientState:
    """Mutable per-client tallies shared between the pump and drain."""

    __slots__ = (
        "frames", "commands", "reconnects", "resumes", "shed_closes",
        "resume_token", "ever_connected", "closed",
    )

    def __init__(self) -> None:
        self.frames = 0
        self.commands = 0
        self.reconnects = 0
        self.resumes = 0
        self.shed_closes = 0
        self.resume_token: str | None = None
        self.ever_connected = False
        self.closed: asyncio.Event | None = None


class LoadGenerator:
    """Drives ``n_clients`` concurrent device streams at one gateway.

    Parameters
    ----------
    host / port:
        The gateway frontend.
    n_clients:
        Concurrent WebSocket devices.
    rate_hz:
        Per-client reading rate.
    truth:
        Ground-truth grid readings are sampled from; ``None`` fetches it
        from the gateway's ``/field/truth`` endpoint at run start.
    noise_std:
        Measurement noise each client adds to (and claims about) its
        readings.
    zone_width / zone_height:
        Zone geometry used to park clients cell-by-cell so the first
        ``width*height`` clients cover every cell.
    seed:
        Master seed; client ``i`` derives its own independent stream.
    connect_concurrency:
        Cap on simultaneous connection attempts (a thundering herd of
        thousands of TCP dials would spuriously fail).
    reconnect:
        Survive connection loss: redial with capped exponential backoff
        plus seeded jitter until the run's deadline.  Off (the
        default), a lost connection fails the client exactly as the
        seed generator did.
    resume:
        Replay the resume token from the ``joined`` frame on each
        redial so the gateway reattaches the parked session (requires
        the gateway's ``resume_enabled``); implies nothing without
        ``reconnect``.
    backoff_initial_s / backoff_max_s:
        The reconnect backoff ladder: delay doubles from the initial
        value, capped at the max, and every step is jittered by a
        seeded factor in [0.5, 1.5) to break fleet synchrony.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        n_clients: int,
        rate_hz: float = 2.0,
        truth: np.ndarray | None = None,
        noise_std: float = 0.5,
        zone_width: int = 8,
        zone_height: int = 8,
        seed: int = 0,
        connect_concurrency: int = 64,
        reconnect: bool = False,
        resume: bool = False,
        backoff_initial_s: float = 0.05,
        backoff_max_s: float = 1.0,
    ) -> None:
        if n_clients < 1:
            raise ValueError("n_clients must be positive")
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if backoff_initial_s <= 0 or backoff_max_s < backoff_initial_s:
            raise ValueError(
                "need 0 < backoff_initial_s <= backoff_max_s"
            )
        self.host = host
        self.port = port
        self.n_clients = n_clients
        self.rate_hz = rate_hz
        self.truth = truth
        self.noise_std = noise_std
        self.zone_width = zone_width
        self.zone_height = zone_height
        self.seed = seed
        self.reconnect = reconnect
        self.resume = resume
        self.backoff_initial_s = backoff_initial_s
        self.backoff_max_s = backoff_max_s
        self._gate = asyncio.Semaphore(connect_concurrency)

    async def run(self, duration_s: float) -> LoadReport:
        """Run every client for ``duration_s``; returns the aggregate."""
        truth = self.truth
        if truth is None:
            truth = await self._fetch_truth()
        truth = np.asarray(truth, dtype=float)
        results = await asyncio.gather(
            *(
                self._client(idx, truth, duration_s)
                for idx in range(self.n_clients)
            ),
            return_exceptions=True,
        )
        report = LoadReport(
            clients=self.n_clients,
            connected=0,
            failures=0,
            frames_sent=0,
            commands_seen=0,
            duration_s=duration_s,
        )
        for result in results:
            if isinstance(result, BaseException):
                report.failures += 1
                continue
            report.connected += 1
            report.frames_sent += result.frames
            report.commands_seen += result.commands
            report.reconnects += result.reconnects
            report.resumes += result.resumes
            report.shed_closes += result.shed_closes
        return report

    async def _fetch_truth(self) -> np.ndarray:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                f"GET /field/truth HTTP/1.1\r\nHost: {self.host}\r\n\r\n"
                .encode("latin-1")
            )
            await writer.drain()
            raw = await reader.read()  # Connection: close bounds it
        finally:
            writer.close()
        body = raw.split(b"\r\n\r\n", 1)[1]
        return np.asarray(json.loads(body)["grid"], dtype=float)

    # -- one device ----------------------------------------------------

    async def _client(
        self, idx: int, truth: np.ndarray, duration_s: float
    ) -> _ClientState:
        """One device: connect, stream, and (optionally) outlive faults."""
        rng = random.Random(self.seed * 1_000_003 + idx)
        cell = idx % (self.zone_width * self.zone_height)
        x = cell // self.zone_height
        y = cell % self.zone_height
        value_true = float(truth[y, x])
        base_path = (
            f"/sensor/connect?x={x}&y={y}&mode=stream&id=load{idx}"
        )
        state = _ClientState()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + duration_s
        period = 1.0 / self.rate_hz
        backoff = self.backoff_initial_s
        first_session = True
        while loop.time() < deadline:
            path = base_path
            if self.resume and state.resume_token:
                path += f"&resume={state.resume_token}"
            try:
                async with self._gate:
                    reader, writer = await asyncio.open_connection(
                        self.host, self.port
                    )
                    await protocol.ws_client_handshake(
                        reader, writer, path, rng=rng
                    )
            except (OSError, asyncio.IncompleteReadError) as exc:
                if not self.reconnect:
                    raise ConnectionError(f"client {idx} dial failed") from exc
                await asyncio.sleep(
                    min(backoff, self.backoff_max_s) * (0.5 + rng.random())
                )
                backoff = min(backoff * 2.0, self.backoff_max_s)
                continue
            if not first_session:
                state.reconnects += 1
            backoff = self.backoff_initial_s
            state.ever_connected = True
            clean = await self._stream_session(
                reader, writer, state, rng, value_true, period,
                deadline, jitter=first_session,
            )
            first_session = False
            if clean:
                break  # ran to the deadline; the close was ours
            if not self.reconnect:
                raise ConnectionError(f"client {idx} connection lost")
            await asyncio.sleep(
                min(backoff, self.backoff_max_s) * (0.5 + rng.random())
            )
            backoff = min(backoff * 2.0, self.backoff_max_s)
        if not state.ever_connected:
            raise ConnectionError(f"client {idx} never connected")
        return state

    async def _stream_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        state: _ClientState,
        rng: random.Random,
        value_true: float,
        period: float,
        deadline: float,
        *,
        jitter: bool,
    ) -> bool:
        """Stream readings on one connection; True = reached the deadline."""
        loop = asyncio.get_running_loop()
        closed = asyncio.Event()
        state.closed = closed

        async def drain_inbound() -> None:
            try:
                while True:
                    message = await protocol.ws_read_message(
                        reader, include_close=True
                    )
                    if message is None:
                        return
                    opcode, payload = message
                    if opcode == protocol.OP_CLOSE:
                        code, _reason = protocol.ws_parse_close(payload)
                        if code == protocol.CLOSE_TRY_AGAIN_LATER:
                            state.shed_closes += 1
                        return
                    if opcode == protocol.OP_PING:
                        writer.write(
                            protocol.ws_encode(
                                payload,
                                opcode=protocol.OP_PONG,
                                mask=True,
                                rng=rng,
                            )
                        )
                        continue
                    if opcode == protocol.OP_TEXT:
                        try:
                            frame = json.loads(payload)
                        except json.JSONDecodeError:
                            continue
                        kind = frame.get("type")
                        if kind == "command":
                            state.commands += 1
                        elif kind == "joined":
                            token = frame.get("resume")
                            if isinstance(token, str):
                                state.resume_token = token
                        elif kind == "resumed":
                            state.resumes += 1
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
            finally:
                closed.set()

        drainer = asyncio.ensure_future(drain_inbound())
        clean = False
        try:
            # Phase jitter (first session only): desynchronise the fleet
            # so readings arrive spread over the period, not in a burst.
            if jitter:
                await asyncio.sleep(rng.uniform(0.0, period))
            while loop.time() < deadline and not closed.is_set():
                reading = {
                    "type": "reading",
                    "value": value_true + rng.gauss(0.0, self.noise_std),
                    "noise_std": self.noise_std,
                }
                writer.write(
                    protocol.ws_encode(
                        json.dumps(reading, separators=(",", ":")),
                        mask=True,
                        rng=rng,
                    )
                )
                await writer.drain()
                state.frames += 1
                await asyncio.sleep(period)
            clean = not closed.is_set()
        except (ConnectionError, OSError):
            clean = False
        finally:
            drainer.cancel()
            try:
                writer.write(
                    protocol.ws_encode(
                        protocol.ws_close_payload(protocol.CLOSE_NORMAL),
                        opcode=protocol.OP_CLOSE,
                        mask=True,
                        rng=rng,
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
        return clean
