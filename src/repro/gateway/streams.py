"""Gateway-side device representation: a MobileNode fed by a socket.

A connected device is represented inside the NanoCloud by a
:class:`GatewayNode` — a :class:`repro.middleware.node.MobileNode`
whose ``handle_command`` override answers broker SENSE_COMMANDs from
the device's *pushed* readings (stream mode) or by forwarding the
command over the socket and replying when the device reports back (poll
mode).  The round driver calls ``handle_command(message, env, bus)``
exactly as it does for simulated nodes, so the driver itself runs
unmodified: the only thing that changed is where the reading comes
from.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from ..network.bus import MessageBus
from ..network.message import Message, MessageKind
from ..sensors.base import Environment, NodeState
from ..middleware.node import MobileNode

__all__ = ["DeviceReading", "GatewayNode", "STREAM_MODES"]

#: ``stream``: the device pushes readings at its own cadence and the
#: node answers commands from the freshest cached one.  ``poll``: the
#: node forwards each command to the device and replies only when the
#: device reports — full round-trip latency, honest but slower.
STREAM_MODES = ("stream", "poll")


@dataclass
class DeviceReading:
    """The most recent measurement a device pushed up its stream."""

    value: float
    noise_std: float
    at: float  # gateway wall-clock seconds (WallClock.now)


class GatewayNode(MobileNode):
    """A live device's stand-in inside the NanoCloud.

    Parameters
    ----------
    node_id / sensor_name:
        Bus address and the field this device measures.
    send_json:
        Byte-free uplink to the device: called with a JSON-serialisable
        dict, the gateway wraps it in a WebSocket text frame.
    now_fn:
        The gateway's clock (``WallClock.now``) for staleness checks.
    mode:
        One of :data:`STREAM_MODES`.
    max_staleness_s:
        Stream mode: a cached reading older than this is refused
        (``ok=False``) so the broker rotates to a live candidate rather
        than solving on dead data.
    """

    def __init__(
        self,
        node_id: str,
        sensor_name: str,
        *,
        send_json: Callable[[dict], None],
        now_fn: Callable[[], float],
        mode: str = "stream",
        max_staleness_s: float = 5.0,
        state: NodeState | None = None,
    ) -> None:
        if mode not in STREAM_MODES:
            raise ValueError(f"unknown stream mode {mode!r}")
        super().__init__(node_id, sensors={}, state=state)
        self.sensor_name = sensor_name
        self.send_json = send_json
        self.now_fn = now_fn
        self.mode = mode
        self.max_staleness_s = max_staleness_s
        self.latest: DeviceReading | None = None
        self.pending_command: Message | None = None
        self.readings_received = 0
        self.commands_answered = 0
        self.commands_refused = 0
        self.detached = False
        self.frames_dropped_detached = 0

    # -- session parking (resume support) ------------------------------

    def detach(self) -> None:
        """Disconnect the uplink while the session is parked for resume.

        The node stays a full NanoCloud member — in stream mode it keeps
        answering SENSE_COMMANDs from its cached reading until that goes
        stale — but frames bound for the device are counted and dropped
        instead of written to a dead socket.
        """
        self.detached = True
        original = self.send_json

        def sink(payload: dict) -> None:
            self.frames_dropped_detached += 1

        sink.__wrapped__ = original  # type: ignore[attr-defined]
        self.send_json = sink

    def attach(self, send_json: Callable[[dict], None]) -> None:
        """Reconnect the uplink after a successful resume."""
        self.detached = False
        self.send_json = send_json

    # -- socket -> node ------------------------------------------------

    def handle_device_frame(self, data: dict, bus: MessageBus) -> None:
        """Process one decoded JSON frame from the device."""
        kind = data.get("type")
        if kind == "reading":
            self.latest = DeviceReading(
                value=float(data["value"]),
                noise_std=float(data.get("noise_std", 0.0)),
                at=self.now_fn(),
            )
            self.readings_received += 1
            if self.mode == "poll" and self.pending_command is not None:
                command, self.pending_command = self.pending_command, None
                self._reply(command, self.latest, bus)
        elif kind == "move":
            self.state.x = float(data["x"])
            self.state.y = float(data["y"])
        elif kind == "refuse" and self.pending_command is not None:
            command, self.pending_command = self.pending_command, None
            self._refuse(command, bus)

    # -- broker -> node (the round driver's hook) ----------------------

    def handle_command(
        self, command: Message, env: Environment, bus: MessageBus
    ) -> Message | None:
        """Answer a SENSE_COMMAND from the live stream (or forward it)."""
        if command.kind is not MessageKind.SENSE_COMMAND:
            raise ValueError(f"not a sense command: {command.kind}")
        sensor_name = command.payload["sensor"]
        self.send_json(
            {
                "type": "command",
                "sensor": sensor_name,
                "grid_index": command.payload.get("grid_index"),
            }
        )
        if sensor_name != self.sensor_name:
            return self._refuse(command, bus)
        if self.mode == "poll":
            # Reply deferred until the device reports (or the broker's
            # per-command timeout rotates to another candidate).
            self.pending_command = command
            return None
        reading = self.latest
        if (
            reading is None
            or self.now_fn() - reading.at > self.max_staleness_s
        ):
            return self._refuse(command, bus)
        return self._reply(command, reading, bus)

    def _reply(
        self, command: Message, reading: DeviceReading, bus: MessageBus
    ) -> Message:
        self.audit.record(self.sensor_name, was_shared=True)
        self.commands_answered += 1
        reply = command.reply(
            MessageKind.SENSE_REPORT,
            {
                "ok": True,
                "sensor": self.sensor_name,
                "value": reading.value,
                "noise_std": reading.noise_std,
                "grid_index": command.payload.get("grid_index"),
            },
            payload_values=2,
        )
        bus.send(reply, strict=False)
        return reply

    def _refuse(self, command: Message, bus: MessageBus) -> Message:
        self.audit.record(self.sensor_name, was_shared=False)
        self.commands_refused += 1
        reply = command.reply(
            MessageKind.SENSE_REPORT,
            {"ok": False, "sensor": command.payload["sensor"]},
            payload_values=1,
        )
        bus.send(reply, strict=False)
        return reply

    def snapshot(self) -> dict[str, object]:
        """Per-device telemetry for the gateway's /stats endpoint."""
        return {
            "node_id": self.node_id,
            "mode": self.mode,
            "readings": self.readings_received,
            "answered": self.commands_answered,
            "refused": self.commands_refused,
            "position": [self.state.x, self.state.y],
        }


def parse_device_frame(raw: bytes | str) -> dict | None:
    """Decode one device text frame; ``None`` when it isn't clean JSON."""
    try:
        data = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    return data if isinstance(data, dict) else None
