"""SenseDroid reproduction: collaborative compressive mobile crowdsensing.

A full-system Python reproduction of *"Sense-making from Distributed and
Mobile Sensing Data: A Middleware Perspective"* (Sarma, Venkatasubramanian,
Dutt -- DAC 2014): the compressive-sensing core (OMP / L1-LP / OLS / GLS /
the CHS algorithm of Fig. 6), the multi-tier NanoCloud / LocalCloud /
public-cloud middleware of Fig. 1, simulated sensors and mobility, energy
accounting, and the baselines the paper positions itself against.

Quick start::

    from repro import SenseDroid, Environment, urban_temperature_field

    truth = urban_temperature_field(32, 16, rng=3)
    env = Environment(fields={"temperature": truth})
    system = SenseDroid(env, rng=42)
    estimate = system.sense_field()
    print(system.estimate_error(estimate))

Subpackages: :mod:`repro.core` (CS math), :mod:`repro.fields`,
:mod:`repro.sensors`, :mod:`repro.network`, :mod:`repro.middleware`,
:mod:`repro.context`, :mod:`repro.mobility`, :mod:`repro.energy`,
:mod:`repro.baselines`, :mod:`repro.sim`, :mod:`repro.analysis`
(invariant lint + runtime sanitizer, see ``docs/invariants.md``).
"""

from . import (
    analysis,
    baselines,
    context,
    core,
    energy,
    fields,
    middleware,
    mobility,
    network,
    sensors,
    sim,
)
from .core import chs, omp, reconstruct
from .fields import (
    SpatialField,
    fire_intensity_field,
    gaussian_plume_field,
    smooth_field,
    urban_temperature_field,
)
from .middleware import (
    BrokerConfig,
    CompressionPolicy,
    Hierarchy,
    HierarchyConfig,
    SenseDroid,
)
from .sensors import Environment, NodeState

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "context",
    "core",
    "energy",
    "fields",
    "middleware",
    "mobility",
    "network",
    "sensors",
    "sim",
    "chs",
    "omp",
    "reconstruct",
    "SpatialField",
    "fire_intensity_field",
    "gaussian_plume_field",
    "smooth_field",
    "urban_temperature_field",
    "BrokerConfig",
    "CompressionPolicy",
    "Hierarchy",
    "HierarchyConfig",
    "SenseDroid",
    "Environment",
    "NodeState",
    "__version__",
]
