"""The NanoCloud broker (Fig. 2, right box).

The broker "performs stochastic (random) spatial sampling in various
nodes": given N candidate grid cells covered by member nodes (and
optional infrastructure sensors), it

1. estimates the zone's current sparsity K (from a learned prior, or
   adaptively from its previous round's coefficients),
2. picks M via its :class:`repro.middleware.config.CompressionPolicy`,
3. commands the selected nodes over the bus and collects their reports,
4. falls back to infrastructure sensors where nodes refuse or are absent
   ("the broker can also use measurement from infrastructure sensors"),
5. builds the heterogeneity covariance V from the reported noise levels
   and reconstructs the zone field with the configured solver (Fig. 6 /
   eq. 12), and
6. aggregates the contexts nodes share (group context, Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..context.group import ContextReport, GroupAggregator
from ..core.basis import basis_by_name, dct2_basis
from ..core.operators import BasisOperator
from ..core.reconstruction import Reconstruction, reconstruct
from ..core.robust import RobustFit, robust_reconstruct
from ..core.registry import (
    has_operator,
    shared_basis,
    shared_dct2_basis,
    shared_dct2_operator,
    shared_operator,
)
from ..core.sampling import MeasurementPlan
from ..core.sparsity import energy_sparsity
from ..energy.accounting import EnergyLedger
from ..fields.coverage import largest_gap_radius
from ..fields.field import SpatialField
from ..fields.priors import ZonePrior
from ..network.bus import MessageBus
from ..network.message import Message, MessageKind
from ..sensors.base import Environment, NodeState, Sensor
from .config import BrokerConfig
from .node import MobileNode
from .overload import OverloadController
from .trust import TrustManager

__all__ = ["ZoneEstimate", "Broker"]


@dataclass
class ZoneEstimate:
    """One aggregation round's output for a zone.

    Beyond the reconstruction itself, the estimate carries round-quality
    telemetry: how many command/report legs the channel ate, how many
    retries the broker paid for, and how far the realised measurement
    count fell short of the plan — the "health record" consumers use to
    weight a degraded round's field appropriately.
    """

    field: SpatialField
    reconstruction: Reconstruction
    plan: MeasurementPlan
    timestamp: float
    reports_ok: int
    reports_refused: int
    infra_reads: int
    sparsity_estimate: int
    commands_lost: int = 0
    reports_lost: int = 0
    retries_used: int = 0
    planned_m: int = 0
    degraded: bool = False
    # Overload telemetry: how many round slots old this estimate is
    # (0 = freshly solved; N = the Nth consecutive slot it was served
    # stale for) and the degradation-ladder level that produced it.
    staleness_rounds: int = 0
    degraded_level: int = 0
    # Data-fault telemetry (robust_mode != "none"): rows the robust
    # solve rejected (or all-but-ignored), refit iterations spent, the
    # nodes currently quarantined, and the broker's trust snapshot.
    rejected_reports: int = 0
    robust_rounds: int = 0
    quarantined_nodes: tuple[str, ...] = ()
    trust: dict[str, float] = field(default_factory=dict)

    @property
    def m(self) -> int:
        return self.plan.m

    @property
    def effective_m(self) -> int:
        """Measurements the solve actually stood on: realised rows of
        Phi minus any the robust solve rejected."""
        return self.plan.m - self.rejected_reports

    @property
    def delivery_ratio(self) -> float:
        """Realised over planned measurements (1.0 = nothing lost)."""
        if self.planned_m <= 0:
            return 1.0
        return self.plan.m / self.planned_m

    @property
    def compression_ratio(self) -> float:
        return self.plan.compression_ratio


@dataclass
class _Collected:
    """Measurements gathered during one round.

    ``sources`` attributes each row to the member node(s) whose reports
    produced it — empty for infrastructure reads — so the robust solve's
    per-row verdicts can settle on the right trust ledgers.
    """

    locations: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    noise_stds: list[float] = field(default_factory=list)
    sources: list[tuple[str, ...]] = field(default_factory=list)


@dataclass
class _RoundTelemetry:
    """Transport-level accounting for one round's exchanges."""

    commands_lost: int = 0
    reports_lost: int = 0
    retries_used: int = 0
    refused: int = 0
    infra_reads: int = 0


@dataclass
class _RoundPlan:
    """One round's sampling decisions, frozen before any bus traffic.

    :meth:`Broker.plan_round` performs every RNG draw of the round's
    planning (the stochastic spatial sampling) and snapshots the member
    map, so the synchronous collect loop and the event-driven round
    driver command the exact same cells from the exact same draw
    sequence.
    """

    k_est: int
    planned_m: int
    candidates: np.ndarray
    plan: MeasurementPlan
    members_by_cell: dict[int, list[str]]
    # Rehabilitation probes: cell -> quarantined node commanded first at
    # that cell this round (empty unless robust_mode is active and the
    # rehab cadence fired).
    probes: dict[int, str] = field(default_factory=dict)


@dataclass
class _PendingRound:
    """One round's collected inputs, frozen between collect and solve.

    :meth:`Broker.collect_round` produces this record after all bus
    traffic and RNG draws are done; :meth:`Broker.solve_round` consumes
    it without touching the bus, the nodes or any mutable broker state,
    which is what lets a LocalCloud fan several zones' solves over a
    thread pool while staying bit-identical to a serial run.
    """

    locations: np.ndarray
    values: np.ndarray
    covariance: np.ndarray | None
    noise_stds: list[float]
    k_est: int
    solver_sparsity: int
    planned_m: int
    timestamp: float
    telemetry: _RoundTelemetry
    # Per-row node attribution (parallel to ``locations``).
    sources: list[tuple[str, ...]] = field(default_factory=list)
    # Filled by solve_round when robust_mode != "none"; each pending
    # round is owned by one solve, so writing it stays thread-safe.
    robust: RobustFit | None = None


class Broker:
    """Sink/collector of one NanoCloud.

    Parameters
    ----------
    broker_id:
        Bus address.
    zone_width / zone_height:
        Grid dimensions of the zone this broker covers (N = W*H).
    sensor_name:
        The physical quantity being aggregated (e.g. ``"temperature"``).
    config:
        Solver/policy configuration.
    criticality:
        Optional per-cell weight map (vectorised, length N) used to bias
        node selection toward important cells (Fig. 5's emphasis).
    """

    def __init__(
        self,
        broker_id: str,
        zone_width: int,
        zone_height: int,
        sensor_name: str = "temperature",
        *,
        config: BrokerConfig | None = None,
        criticality: np.ndarray | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not broker_id:
            raise ValueError("broker_id must be non-empty")
        if zone_width <= 0 or zone_height <= 0:
            raise ValueError("zone dimensions must be positive")
        self.broker_id = broker_id
        self.zone_width = zone_width
        self.zone_height = zone_height
        self.sensor_name = sensor_name
        self.config = config or BrokerConfig()
        self.n = zone_width * zone_height
        if criticality is not None:
            criticality = np.asarray(criticality, dtype=float).ravel()
            if criticality.size != self.n:
                raise ValueError(
                    f"criticality length {criticality.size} != N={self.n}"
                )
        self.criticality = criticality
        self.members: dict[str, int] = {}  # node_id -> local grid index
        self.infrastructure: dict[int, Sensor] = {}  # grid index -> sensor
        self.prior: ZonePrior | None = None
        self.ledger = EnergyLedger(node_id=broker_id)
        self.groups = GroupAggregator()
        self.last_sparsity: int | None = None
        # Trust ledger feeding the robust pipeline; constructed always
        # (cheap) but only consulted when config.robust_mode != "none".
        self.trust = TrustManager(
            alpha=self.config.trust_alpha,
            quarantine_below=self.config.quarantine_trust,
            release_at=self.config.rehab_trust,
            min_rejections=self.config.quarantine_min_rejections,
        )
        # Overload state (detector/breaker/ladder) is zone knowledge,
        # like trust: it rides the failover carry-over on promotion so
        # an acting broker resumes mid-degradation.  Inert (and never
        # consulted by the round driver) at the default-off config.
        self.overload = OverloadController(self.config.overload)
        # config.seed pins the broker exactly (sweeps); otherwise the
        # deployment-level rng keeps whole-system runs reproducible.
        self._rng = np.random.default_rng(
            self.config.seed if self.config.seed is not None else rng
        )
        self._basis_cache: np.ndarray | BasisOperator | None = None
        # Rolling memory of past reconstructions (monotone round index,
        # vectorised field) feeding learn_prior_from_history.
        self._history: list[tuple[float, np.ndarray]] = []
        self._rounds_run = 0
        self.history_limit = 64

    # -- membership -----------------------------------------------------

    def join(self, node_id: str, grid_index: int) -> None:
        """Admit a node covering one grid cell of the zone."""
        if not 0 <= grid_index < self.n:
            raise ValueError(f"grid index {grid_index} outside zone of {self.n}")
        self.members[node_id] = grid_index

    def leave(self, node_id: str) -> None:
        self.members.pop(node_id, None)

    def add_infrastructure(self, grid_index: int, sensor: Sensor) -> None:
        """Install a fixed infrastructure sensor at a grid cell."""
        if not 0 <= grid_index < self.n:
            raise ValueError(f"grid index {grid_index} outside zone of {self.n}")
        self.infrastructure[grid_index] = sensor

    def set_prior(self, prior: ZonePrior) -> None:
        """Install a learned zone prior (basis + typical sparsity)."""
        if prior.basis.shape != (self.n, self.n):
            raise ValueError("prior basis does not match zone size")
        self.prior = prior
        self._basis_cache = None

    def learn_prior_from_history(self, min_rounds: int = 8) -> ZonePrior:
        """Learn and install a :class:`ZonePrior` from this broker's own
        past reconstructions.

        Section 3: "often prior available data about the local regions
        can be exploited to improve the sensing efficiency".  The broker
        *is* the region's historian — every round produces a field
        estimate, and once enough have accumulated their principal
        components form a basis adapted to the zone's field process.
        Call periodically (e.g. nightly); subsequent rounds then use the
        prior's basis and typical sparsity when ``use_prior_basis`` is
        set.

        Raises
        ------
        RuntimeError
            If fewer than ``min_rounds`` reconstructions are remembered.
        """
        if min_rounds < 2:
            raise ValueError("need at least two rounds to learn a prior")
        if len(self._history) < min_rounds:
            raise RuntimeError(
                f"only {len(self._history)} remembered rounds; "
                f"need {min_rounds}"
            )
        from ..fields.priors import build_zone_prior
        from ..fields.temporal import FieldTrace

        trace = FieldTrace()
        for timestamp, vector in self._history:
            trace.append(
                SpatialField.from_vector(
                    vector, self.zone_width, self.zone_height
                ),
                timestamp,
            )
        prior = build_zone_prior(trace)
        self.set_prior(prior)
        return prior

    def coverage(self) -> set[int]:
        """Grid cells observable by a member node or infra sensor."""
        return set(self.members.values()) | set(self.infrastructure)

    # -- internals ------------------------------------------------------

    # The memoised basis write is reachable from solve_round, but it is
    # idempotent and deterministic (same config -> bit-identical basis)
    # and each broker is owned by exactly one in-flight solve, so the
    # cache cannot race or change a result — a documented exception to
    # solve-phase purity (invariant 11 in docs/invariants.md).
    def _basis(self) -> np.ndarray | BasisOperator:  # reprolint: allow[transitive-impurity]
        if self._basis_cache is None:
            cfg = self.config
            if cfg.use_prior_basis and self.prior is not None:
                self._basis_cache = self.prior.basis
            elif cfg.solver_engine == "reference":
                # Seed behaviour, kept honest for perf baselines: every
                # broker builds (and owns) its dense basis from scratch.
                if cfg.basis == "dct2":
                    self._basis_cache = dct2_basis(
                        self.zone_width, self.zone_height
                    )
                else:
                    self._basis_cache = basis_by_name(cfg.basis, self.n)
            elif cfg.basis == "dct2":
                self._basis_cache = (
                    shared_dct2_operator(self.zone_width, self.zone_height)
                    if cfg.operator_basis
                    else shared_dct2_basis(self.zone_width, self.zone_height)
                )
            elif cfg.operator_basis and has_operator(cfg.basis):
                self._basis_cache = shared_operator(cfg.basis, self.n)
            else:
                # No operator form (haar, identity, ...): share the dense
                # matrix across every same-shaped broker in the process.
                self._basis_cache = shared_basis(cfg.basis, self.n)
        return self._basis_cache

    def _sparsity_estimate(self) -> int:
        if self.prior is not None:
            return max(self.prior.typical_sparsity, 1)
        if self.last_sparsity is not None:
            return max(self.last_sparsity, 1)
        # Cold start: assume a moderately sparse field.
        return max(self.n // 16, 4)

    def _make_plan(self, m: int, candidates: np.ndarray) -> MeasurementPlan:
        """Select M cells among the covered candidates.

        Criticality weighting (when configured and provided) biases the
        draw; otherwise uniform random — the paper's stochastic spatial
        sampling.
        """
        m = min(m, candidates.size)
        weights = None
        if self.config.criticality_weighting and self.criticality is not None:
            weights = self.criticality[candidates]
            if weights.sum() <= 0:
                weights = None

        def draw() -> np.ndarray:
            if weights is None:
                return self._rng.choice(candidates, size=m, replace=False)
            probabilities = weights / weights.sum()
            return self._rng.choice(
                candidates, size=m, replace=False, p=probabilities
            )

        picked = draw()
        max_gap = self.config.max_coverage_gap
        if max_gap is not None:
            # Coverage guard: random draws occasionally cluster; keep the
            # best of a few attempts if none meets the bound.
            best = picked
            best_gap = largest_gap_radius(picked, self.n, self.zone_height)
            attempts = 0
            while best_gap > max_gap and attempts < 8:
                attempts += 1
                candidate_plan = draw()
                gap = largest_gap_radius(
                    candidate_plan, self.n, self.zone_height
                )
                if gap < best_gap:
                    best, best_gap = candidate_plan, gap
            picked = best
        return MeasurementPlan(n=self.n, locations=np.sort(picked))

    def _cell_order(
        self,
        cell: int,
        members_by_cell: dict[int, list[str]],
        nodes: dict[str, MobileNode],
        probes: dict[int, str] | None = None,
    ) -> list[str]:
        """Order co-located candidates for commanding.

        With ``fair_rotation`` (default) the fullest battery goes first,
        spreading the sensing burden across a dense crowd — the
        collaborative energy sharing of [24].  Without batteries (or
        with rotation disabled) the stored order is used.  A rehab probe
        scheduled at this cell goes first regardless (quarantined nodes
        are otherwise absent from ``members_by_cell``), with the healthy
        candidates behind it as replacements should the probe fail.
        """
        candidates = members_by_cell.get(cell, [])
        if self.config.fair_rotation and len(candidates) >= 2:

            def charge(node_id: str) -> float:
                node = nodes.get(node_id)
                if node is None or node.ledger.battery is None:
                    return 1.0
                return node.ledger.battery.level

            candidates = sorted(
                candidates, key=lambda nid: (-charge(nid), nid)
            )
        probe = (probes or {}).get(cell)
        if probe is not None and probe not in candidates:
            return [probe, *candidates]
        return candidates

    def _command_node(
        self,
        node: MobileNode,
        grid_index: int,
        bus: MessageBus,
        env: Environment,
        timestamp: float,
        telemetry: _RoundTelemetry | None = None,
    ) -> dict | None:
        """Command/telemetry exchange with a member node, with retries.

        Returns the report payload, or ``None`` when every attempt
        failed — command lost, report lost, or the node churned off the
        bus entirely (the drop-and-count ``strict=False`` path).  Each
        retry re-transmits after a capped exponential backoff in
        *simulated* time (the retry command's timestamp advances), and
        is metered through the link model like any other message, so the
        energy ledgers price reliability honestly.
        """
        if telemetry is None:
            telemetry = _RoundTelemetry()
        backoff = self.config.retry_backoff_s
        attempt_time = timestamp
        for attempt in range(self.config.command_retries + 1):
            if attempt:
                telemetry.retries_used += 1
                attempt_time += backoff * 2 ** min(attempt - 1, 5)
            command = Message(
                kind=MessageKind.SENSE_COMMAND,
                source=self.broker_id,
                destination=node.node_id,
                payload={
                    "sensor": self.sensor_name,
                    "grid_index": grid_index,
                },
                payload_values=2,
                timestamp=attempt_time,
            )
            if not bus.send(command, strict=False):
                telemetry.commands_lost += 1
                continue
            # Drain the node's inbox so the command is consumed in order.
            for message in bus.endpoint(node.node_id).drain():
                if message.message_id == command.message_id:
                    node.handle_command(message, env, bus)
            for message in bus.endpoint(self.broker_id).drain():
                if (
                    message.kind is MessageKind.SENSE_REPORT
                    and message.source == node.node_id
                ):
                    return message.payload
            # The command arrived (the node sensed and replied), but the
            # report leg never made it back.
            telemetry.reports_lost += 1
        return None

    def _read_infrastructure(
        self, grid_index: int, env: Environment, timestamp: float
    ) -> tuple[float, float]:
        """Telemeter a fixed infrastructure sensor directly."""
        sensor = self.infrastructure[grid_index]
        i, j = grid_index // self.zone_height, grid_index % self.zone_height
        state = NodeState(x=float(i), y=float(j))
        reading = sensor.read(env, state, timestamp)
        self.ledger.post("sensing", sensor.spec.energy_per_sample_mj)
        return reading.value, sensor.spec.noise_std

    def _collect_cell(
        self,
        cell: int,
        members_by_cell: dict[int, list[str]],
        nodes: dict[str, MobileNode],
        bus: MessageBus,
        env: Environment,
        timestamp: float,
        collected: _Collected,
        telemetry: _RoundTelemetry,
        probes: dict[int, str] | None = None,
    ) -> bool:
        """Try to realise one planned measurement at ``cell``.

        Commands candidate nodes in rotation order, falls back to an
        infrastructure sensor, and appends the result to ``collected``.
        Returns True when the cell produced a value.
        """
        value: float | None = None
        noise_std: float | None = None
        cell_values: list[float] = []
        cell_stds: list[float] = []
        cell_sources: list[str] = []
        for node_id in self._cell_order(
            cell, members_by_cell, nodes, probes
        ):
            node = nodes.get(node_id)
            if node is None:
                continue
            payload = self._command_node(
                node, cell, bus, env, timestamp, telemetry
            )
            if payload and payload.get("ok"):
                cell_values.append(float(payload["value"]))
                cell_stds.append(float(payload.get("noise_std", 0.0)))
                cell_sources.append(node_id)
                if self.config.suppress_redundant:
                    # Aquiba-style suppression [25]: one answer per
                    # cell is enough; spare the co-located phones.
                    break
            elif payload is not None:
                # An explicit refusal (privacy / missing sensor); lost
                # exchanges are already counted in the telemetry.
                telemetry.refused += 1
        if cell_values:
            # Multiple (unsuppressed) co-located reports average to
            # a lower-noise virtual reading: std scales as 1/sqrt(r).
            value = float(np.mean(cell_values))
            noise_std = float(
                np.sqrt(np.mean(np.square(cell_stds)))
                / np.sqrt(len(cell_stds))
            )
        if value is None and cell in self.infrastructure:
            value, noise_std = self._read_infrastructure(
                cell, env, timestamp
            )
            telemetry.infra_reads += 1
            cell_sources = []
        if value is None:
            return False
        collected.locations.append(cell)
        collected.values.append(value)
        collected.noise_stds.append(noise_std or 0.0)
        collected.sources.append(tuple(cell_sources))
        return True

    # -- the aggregation round -------------------------------------------
    #
    # A round has three phases with different concurrency contracts:
    #
    #   collect_round   — bus traffic, node commands, RNG draws.  Serial.
    #   solve_round     — pure numerics on the collected inputs.  Safe to
    #                     run on a worker thread (one thread per broker).
    #   finalize_round  — sparsity adaptation, history, the ZoneEstimate.
    #                     Serial; mutates broker state.
    #
    # run_round composes the three for the common serial case; the
    # LocalCloud / Hierarchy layers drive the phases separately when
    # parallel reconstruction is enabled.

    def plan_round(
        self,
        *,
        measurements: int | None = None,
        sparsity_cap: int | None = None,
    ) -> _RoundPlan:
        """Draw one round's sampling plan (all of the round's RNG).

        Shared by the synchronous collect loop and the event-driven
        round driver, so both command the same cells from the same draw
        sequence.  ``sparsity_cap`` clamps the round's working sparsity
        estimate (the degradation ladder's coarse level: a capped K
        bounds both M and the solve's iteration count); ``None`` leaves
        the estimate untouched.

        Raises
        ------
        RuntimeError
            If the broker has no coverage to sample from.
        """
        k_est = self._sparsity_estimate()
        if sparsity_cap is not None:
            k_est = min(k_est, sparsity_cap)
        m = (
            measurements
            if measurements is not None
            else self.config.policy.measurements(self.n, k_est)
        )
        robust = self.config.robust_mode != "none"
        quarantined = self.trust.quarantined if robust else set()
        eligible = {
            cell
            for node_id, cell in self.members.items()
            if node_id not in quarantined
        } | set(self.infrastructure)
        candidates = np.array(sorted(eligible), dtype=int)
        # Rehabilitation probes: on the rehab cadence, command a few
        # quarantined nodes at their own cells so a recovered sensor can
        # demonstrate good rows and earn release.
        probes: dict[int, str] = {}
        if (
            robust
            and quarantined
            and self.config.rehab_probes > 0
            and (self._rounds_run + 1) % self.config.rehab_interval == 0
        ):
            for node_id in self.trust.probe_candidates(
                self.config.rehab_probes
            ):
                cell = self.members.get(node_id)
                if cell is None or cell in probes:
                    continue
                probes[cell] = node_id
        if candidates.size == 0 and not probes:
            raise RuntimeError(f"broker {self.broker_id} has no coverage")
        if candidates.size:
            plan = self._make_plan(m, candidates)
            locations = plan.locations
        else:
            locations = np.array([], dtype=int)
        if probes:
            locations = np.unique(
                np.concatenate(
                    [locations, np.array(sorted(probes), dtype=int)]
                )
            )
            plan = MeasurementPlan(n=self.n, locations=locations)
        members_by_cell: dict[int, list[str]] = {}
        for node_id, cell in self.members.items():
            if node_id in quarantined:
                continue
            members_by_cell.setdefault(cell, []).append(node_id)
        return _RoundPlan(
            k_est=k_est,
            planned_m=plan.m,
            candidates=candidates,
            plan=plan,
            members_by_cell=members_by_cell,
            probes=probes,
        )

    def _infra_sweep(
        self,
        collected: _Collected,
        telemetry: _RoundTelemetry,
        env: Environment,
        timestamp: float,
    ) -> None:
        """Last-ditch graceful degradation: the whole crowd is dark
        (total loss, partition, mass churn) but the zone still owns
        fixed sensors — read them all rather than abort."""
        for cell in sorted(self.infrastructure):
            value, noise_std = self._read_infrastructure(cell, env, timestamp)
            telemetry.infra_reads += 1
            collected.locations.append(cell)
            collected.values.append(value)
            collected.noise_stds.append(noise_std or 0.0)
            collected.sources.append(())

    def _freeze_round(
        self,
        collected: _Collected,
        telemetry: _RoundTelemetry,
        k_est: int,
        planned_m: int,
        timestamp: float,
    ) -> _PendingRound:
        """Freeze a round's collected inputs for the solve phase.

        Raises
        ------
        RuntimeError
            If nothing was collected (no reports, no infrastructure).
        """
        if not collected.locations:
            raise RuntimeError(
                f"broker {self.broker_id} collected no measurements "
                f"from {planned_m} commanded cells ({telemetry.refused} "
                f"refused, {telemetry.commands_lost} commands and "
                f"{telemetry.reports_lost} reports lost) and no "
                "infrastructure"
            )
        locations = np.asarray(collected.locations, dtype=int)
        values = np.asarray(collected.values, dtype=float)
        sources = list(collected.sources)
        if len(sources) < len(collected.locations):
            # Callers that predate source attribution (or hand-built
            # _Collected records) get anonymous rows.
            sources = sources + [()] * (
                len(collected.locations) - len(sources)
            )
        covariance = None
        if self.config.use_gls and any(s > 0 for s in collected.noise_stds):
            # Floor the self-reported stds: a claimed-perfect (zero-std)
            # row must not get unbounded GLS weight — and with robust
            # mode on, discount each row by its least-trusted
            # contributor so repeat offenders lose influence even
            # before quarantine (effective variance = std^2 / trust).
            stds = np.maximum(
                np.asarray(collected.noise_stds, dtype=float),
                self.config.gls_std_floor,
            )
            if self.config.robust_mode != "none":
                row_trust = np.array(
                    [self.trust.row_trust(row) for row in sources],
                    dtype=float,
                )
                stds = stds / np.sqrt(row_trust)
            covariance = np.diag(stds**2)

        # A badly degraded round can realise fewer measurements than the
        # nominal sparsity; a solver can never recover more coefficients
        # than it has rows, so clamp instead of crashing.
        solver_sparsity = max(min(max(k_est, 4), values.size), 1)
        return _PendingRound(
            locations=locations,
            values=values,
            covariance=covariance,
            noise_stds=list(collected.noise_stds),
            k_est=k_est,
            solver_sparsity=solver_sparsity,
            planned_m=planned_m,
            timestamp=timestamp,
            telemetry=telemetry,
            sources=sources,
        )

    def collect_round(
        self,
        bus: MessageBus,
        nodes: dict[str, MobileNode],
        env: Environment,
        timestamp: float = 0.0,
        *,
        measurements: int | None = None,
        sparsity_cap: int | None = None,
    ) -> _PendingRound:
        """Phase 1: plan, command, and collect one round's measurements.

        Performs every side-effecting step of the round — the sampling
        plan's RNG draws, all command/report bus exchanges, infrastructure
        reads — and freezes the result into a :class:`_PendingRound`.

        Raises
        ------
        RuntimeError
            If no usable measurements could be collected.
        """
        round_plan = self.plan_round(
            measurements=measurements, sparsity_cap=sparsity_cap
        )
        members_by_cell = round_plan.members_by_cell

        collected = _Collected()
        telemetry = _RoundTelemetry()
        planned_m = round_plan.planned_m
        for cell in round_plan.plan.locations.tolist():
            self._collect_cell(
                cell, members_by_cell, nodes, bus, env, timestamp,
                collected, telemetry, round_plan.probes,
            )

        if (
            self.config.topup_resampling
            and len(collected.locations) < planned_m
        ):
            # Replacement sampling: a lost report is just a dropped row
            # of Phi — draw substitute cells from the uncommanded
            # coverage until the effective M is back near the plan (or
            # the coverage runs out).
            attempted = set(round_plan.plan.locations.tolist())
            spare = np.array(
                [c for c in round_plan.candidates.tolist() if c not in attempted],
                dtype=int,
            )
            for idx in self._rng.permutation(spare.size):
                if len(collected.locations) >= planned_m:
                    break
                self._collect_cell(
                    int(spare[idx]), members_by_cell, nodes, bus, env,
                    timestamp, collected, telemetry,
                )

        if not collected.locations and self.infrastructure:
            self._infra_sweep(collected, telemetry, env, timestamp)

        return self._freeze_round(
            collected, telemetry, round_plan.k_est, planned_m, timestamp
        )

    def solve_round(
        self, pending: _PendingRound
    ) -> tuple[Reconstruction, np.ndarray]:
        """Phase 2: reconstruct the zone field from collected inputs.

        Pure numerics — no bus, no RNG, no broker-state mutation (the
        robust outcome lands on the pending record itself, which is
        owned by exactly one solve) — so distinct brokers' solves may
        run concurrently on worker threads.  Returns the solver result
        and the zone field vector ``x_hat``.
        """
        phi = self._basis()
        # Bind the prior locally: mypy cannot carry an `is not None`
        # narrowing on self.prior into the closure, and the solve phase
        # must not re-read mutable broker state mid-flight anyway.
        prior = self.prior if self.config.use_prior_basis else None

        def fit(
            values: np.ndarray,
            locations: np.ndarray,
            covariance: np.ndarray | None,
        ) -> tuple[Reconstruction, np.ndarray]:
            sparsity = min(pending.solver_sparsity, values.size)
            if prior is not None:
                centered = prior.center(values, locations)
                result = reconstruct(
                    centered, locations, phi,
                    solver=self.config.solver,
                    sparsity=sparsity,
                    covariance=covariance,
                    engine=self.config.solver_engine,
                )
                return result, prior.uncenter(result.x_hat)
            result = reconstruct(
                values, locations, phi,
                solver=self.config.solver,
                sparsity=sparsity,
                covariance=covariance,
                center=True,  # physical fields: baseline + sparse variation
                engine=self.config.solver_engine,
            )
            return result, result.x_hat

        if self.config.robust_mode == "none":
            return fit(
                pending.values, pending.locations, pending.covariance
            )
        robust = robust_reconstruct(
            fit,
            pending.values,
            pending.locations,
            covariance=pending.covariance,
            mode=self.config.robust_mode,
            threshold=self.config.robust_threshold,
            max_rounds=self.config.robust_max_rounds,
        )
        pending.robust = robust
        return robust.result, robust.x_hat

    def finalize_round(
        self,
        pending: _PendingRound,
        result: Reconstruction,
        x_hat: np.ndarray,
    ) -> ZoneEstimate:
        """Phase 3: adapt state from the solve and emit the estimate."""
        locations = pending.locations
        values = pending.values
        k_est = pending.k_est
        telemetry = pending.telemetry
        collected_noise_stds = pending.noise_stds
        timestamp = pending.timestamp
        planned_m = pending.planned_m
        refused = telemetry.refused
        infra_reads = telemetry.infra_reads
        robust = pending.robust

        # Trust bookkeeping: every attributed row's accept/reject verdict
        # feeds its contributors' EWMA, then quarantine/release
        # transitions apply.  Serial phase — the only trust mutation.
        rejected_reports = 0
        robust_active = self.config.robust_mode != "none"
        if robust_active:
            rejected = (
                robust.row_rejected()
                if robust is not None
                else np.zeros(len(pending.sources), dtype=bool)
            )
            rejected_reports = int(rejected.sum())
            for row_sources, row_rejected in zip(pending.sources, rejected):
                for node_id in row_sources:
                    self.trust.observe(node_id, bool(row_rejected))
            self.trust.update_quarantine(
                self._rounds_run + 1, member_count=len(self.members)
            )

        # Adapt the sparsity estimate for the next round.  Shrink toward
        # the effective sparsity actually used; but if the fit left a
        # substantial residual at the measured cells, the field is richer
        # than K — grow the estimate instead (a K-capped solve can never
        # reveal more than K coefficients by itself).  Rows the robust
        # solve rejected are outliers, not field richness — judge the
        # residual on the surviving rows only.
        keep = (
            robust.kept
            if robust is not None
            else np.ones(locations.size, dtype=bool)
        )
        fitted = x_hat[locations[keep]]
        kept_values = values[keep]
        norm_values = max(float(np.linalg.norm(kept_values)), 1e-300)
        residual_rel = (
            float(np.linalg.norm(kept_values - fitted)) / norm_values
        )
        noise_floor = 0.0
        if collected_noise_stds:
            noise_floor = float(
                np.linalg.norm(np.asarray(collected_noise_stds)[keep])
            ) / norm_values
        if residual_rel > max(2.0 * noise_floor, 0.02):
            self.last_sparsity = min(
                int(np.ceil(k_est * 1.5)) + 1, max(self.n // 2, 1)
            )
        else:
            # Shrink toward the coefficients that actually carry energy.
            # The DC term of a physical field dwarfs everything else, so
            # measure the energy sparsity of the *remaining* spectrum and
            # count DC separately — mirroring ZoneGrid.local_sparsities.
            coefficients = result.coefficients.copy()
            if coefficients.size:
                coefficients[np.argmax(np.abs(coefficients))] = 0.0
            self.last_sparsity = max(
                energy_sparsity(coefficients, energy=0.99) + 1, 1
            )
        zone_field = SpatialField.from_vector(
            x_hat, self.zone_width, self.zone_height,
            name=f"{self.sensor_name}@{self.broker_id}",
        )
        self._rounds_run += 1
        self._history.append((float(self._rounds_run), x_hat.copy()))
        if len(self._history) > self.history_limit:
            self._history.pop(0)
        actual_plan = MeasurementPlan(n=self.n, locations=locations)
        degraded = (
            telemetry.commands_lost > 0
            or telemetry.reports_lost > 0
            or actual_plan.m < planned_m
            or rejected_reports > 0
        )
        return ZoneEstimate(
            field=zone_field,
            reconstruction=result,
            plan=actual_plan,
            timestamp=timestamp,
            reports_ok=int(locations.size) - infra_reads,
            reports_refused=refused,
            infra_reads=infra_reads,
            sparsity_estimate=k_est,
            commands_lost=telemetry.commands_lost,
            reports_lost=telemetry.reports_lost,
            retries_used=telemetry.retries_used,
            planned_m=planned_m,
            degraded=degraded,
            rejected_reports=rejected_reports,
            robust_rounds=robust.rounds if robust is not None else 0,
            quarantined_nodes=(
                tuple(sorted(self.trust.quarantined))
                if robust_active
                else ()
            ),
            trust=self.trust.snapshot() if robust_active else {},
        )

    def run_round(
        self,
        bus: MessageBus,
        nodes: dict[str, MobileNode],
        env: Environment,
        timestamp: float = 0.0,
        *,
        measurements: int | None = None,
        sparsity_cap: int | None = None,
    ) -> ZoneEstimate:
        """Execute one compressive aggregation round (all three phases).

        Parameters
        ----------
        bus:
            Transport; the broker and all member nodes must be registered.
        nodes:
            Node objects by id (the simulation's handle to make members
            answer their commands).
        env:
            Ground-truth environment the sensors read.
        measurements:
            Explicit M override (used by sweeps); default: policy choice.

        Raises
        ------
        RuntimeError
            If no usable measurements could be collected.
        """
        pending = self.collect_round(
            bus, nodes, env, timestamp,
            measurements=measurements, sparsity_cap=sparsity_cap,
        )
        result, x_hat = self.solve_round(pending)
        return self.finalize_round(pending, result, x_hat)

    # -- context aggregation ----------------------------------------------

    def process_inbox(self, bus: MessageBus, now: float) -> int:
        """Consume pending CONTEXT_SHARE messages into the group
        aggregator; returns how many were processed."""
        processed = 0
        remaining = []
        for message in bus.endpoint(self.broker_id).drain():
            if message.kind is MessageKind.CONTEXT_SHARE:
                self.groups.add(
                    ContextReport(
                        node_id=message.source,
                        timestamp=message.timestamp,
                        kind=str(message.payload["kind"]),
                        value=message.payload["value"],
                    )
                )
                processed += 1
            else:
                remaining.append(message)
        # Non-context messages go back for their actual consumers,
        # through the bounded path (RPR008: never touch inbox directly).
        for message in remaining:
            bus.requeue(message)
        return processed

    def disseminate(
        self,
        bus: MessageBus,
        payload: dict,
        payload_values: int,
        timestamp: float,
    ) -> int:
        """Push collective information back to all members (the downlink
        of the paper's bidirectional NanoCloud).  Returns the number of
        members actually reached; churned or unreachable members are
        dropped and counted by the bus, never raised."""
        sent = 0
        for node_id in sorted(self.members):
            delivered = bus.send(
                Message(
                    kind=MessageKind.DISSEMINATE,
                    source=self.broker_id,
                    destination=node_id,
                    payload=payload,
                    payload_values=payload_values,
                    timestamp=timestamp,
                ),
                strict=False,
            )
            if delivered:
                sent += 1
        return sent
