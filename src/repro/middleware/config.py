"""Configuration dataclasses for the SenseDroid middleware stack.

The paper's framework is explicitly *tunable*: sparsity levels, per-zone
compression thresholds, basis and solver choices are all knobs ("ability
to opportunistically set different sparsity levels", "multi-resolution
compressive thresholds", Section 1).  All knobs live here so experiments
can sweep them declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .overload import OverloadConfig

__all__ = ["CompressionPolicy", "BrokerConfig", "NodeConfig", "HierarchyConfig"]


@dataclass(frozen=True)
class CompressionPolicy:
    """How a broker chooses M (measurements) for its zone.

    Attributes
    ----------
    mode:
        ``"fixed-ratio"``  — M = ratio * N;
        ``"sparsity"``     — M from the K log N rule using the zone's
        estimated sparsity (local fluctuation exploitation, Section 3);
        ``"dense"``        — M = N (no compression; the baseline).
    ratio:
        Compression ratio for fixed-ratio mode.
    oversampling:
        Constant in M = oversampling * K * log N for sparsity mode.
    min_measurements / max_ratio:
        Safety clamps applied in every mode.
    """

    mode: str = "sparsity"
    ratio: float = 0.2
    oversampling: float = 1.7
    min_measurements: int = 4
    max_ratio: float = 0.8

    def __post_init__(self) -> None:
        if self.mode not in ("fixed-ratio", "sparsity", "dense"):
            raise ValueError(f"unknown compression mode {self.mode!r}")
        if not 0 < self.ratio <= 1:
            raise ValueError("ratio must be in (0, 1]")
        if self.oversampling <= 0:
            raise ValueError("oversampling must be positive")
        if self.min_measurements < 1:
            raise ValueError("min_measurements must be >= 1")
        if not 0 < self.max_ratio <= 1:
            raise ValueError("max_ratio must be in (0, 1]")

    def measurements(self, n: int, sparsity_estimate: int | None = None) -> int:
        """Pick M for a zone of N points given an optional K estimate."""
        if n < 1:
            raise ValueError("zone size must be positive")
        if self.mode == "dense":
            return n
        if self.mode == "fixed-ratio":
            m = int(round(self.ratio * n))
        else:
            k = max(sparsity_estimate or 1, 1)
            import numpy as np

            m = int(np.ceil(self.oversampling * k * np.log(max(n, 2))))
        ceiling = max(int(round(self.max_ratio * n)), 1)
        return int(min(max(m, min(self.min_measurements, n)), ceiling))


@dataclass(frozen=True)
class BrokerConfig:
    """Broker-side reconstruction and sampling configuration."""

    solver: str = "chs"
    basis: str = "dct2"  # separable 2-D DCT over the zone grid
    policy: CompressionPolicy = field(default_factory=CompressionPolicy)
    use_gls: bool = True  # weight heterogeneous sensors per eq. (12)
    # Lower clamp on self-reported noise stds when building the GLS
    # covariance V.  The seed clamped at 1e-9, so a "perfect" (zero-std)
    # infrastructure read got ~1e18 relative weight and numerically
    # drowned every mobile report; 0.02 keeps the weight ratio against a
    # 0.3-sigma phone bounded (~225x) while staying below every real
    # sensor spec in the fleet, so existing behaviour is unchanged.
    gls_std_floor: float = 0.02
    # Byzantine/data-fault robustness (repro.core.robust): "none" keeps
    # the seed's trusting solve; "trim" iteratively rejects rows whose
    # standardised residual exceeds robust_threshold and refits to a
    # fixed point (bit-identical to "none" when nothing is rejected);
    # "huber" soft-downweights them via IRLS instead.  Either non-none
    # mode also switches the GLS covariance to trust-discounted weights
    # and arms the broker's quarantine machinery.
    robust_mode: str = "none"
    robust_threshold: float = 3.5
    robust_max_rounds: int = 8
    # Trust/quarantine knobs (repro.middleware.trust.TrustManager):
    # EWMA step for accept/reject outcomes, the quarantine/release
    # hysteresis pair, the repeat-offender floor, and the rehab probe
    # cadence — every rehab_interval-th round re-commands up to
    # rehab_probes quarantined nodes (one planned cell each) so a
    # recovered sensor can earn its way back in.
    trust_alpha: float = 0.3
    quarantine_trust: float = 0.35
    rehab_trust: float = 0.6
    quarantine_min_rejections: int = 2
    rehab_interval: int = 4
    rehab_probes: int = 2
    use_prior_basis: bool = False  # swap in a PCA basis learned from history
    criticality_weighting: bool = True  # bias node selection to hot cells
    # Aquiba-style redundancy suppression ([25]): when several nodes
    # share a grid cell, command them one at a time and stop at the
    # first answer.  Disabled, every co-located node reports and the
    # broker averages — more energy for a small noise reduction.
    suppress_redundant: bool = True
    # Collaborative energy sharing ([24]): among co-located candidates,
    # command the fullest battery first so the duty rotates with charge.
    fair_rotation: bool = True
    # Coverage guard ([28]-style quality control): if set, the broker
    # re-draws a round's random plan (up to a few attempts) while its
    # largest spatial gap (Chebyshev cells to the nearest sample)
    # exceeds this bound — random draws occasionally cluster badly.
    max_coverage_gap: float | None = None
    # Reliable command/report exchange over a lossy channel: how many
    # times to re-command a node that yielded no report before giving
    # up on it.  0 keeps the seed's fire-and-forget behaviour.  Every
    # retry is a real transmission metered through the link model —
    # persistence has an honest radio-energy price.
    command_retries: int = 0
    # Base backoff between retries in *simulated* seconds; attempt i
    # waits retry_backoff_s * 2**(i-1), capped at 32x the base.
    retry_backoff_s: float = 0.5
    # When a planned cell yields nothing (loss, churn, refusal and no
    # infrastructure), draw replacement cells from the uncommanded
    # coverage so the effective M stays near the planned M — a dropped
    # row of Phi is replaced instead of mourned.
    topup_resampling: bool = False
    # Event-driven rounds (latency_mode="link"): sim seconds after the
    # commands go out at which the broker stops waiting and solves with
    # whatever reports arrived — the partial-solve deadline of the
    # COLLECTING state.  Ignored on the synchronous zero-latency path
    # where every exchange completes within the round instant.
    report_deadline_s: float = 10.0
    # Event-driven rounds: how long to wait for one command's report
    # before retrying (or moving to the next co-located candidate).
    # Doubles per retry attempt.  Must comfortably exceed the command +
    # report round-trip latency of the slowest link in play.
    report_timeout_s: float = 2.0
    # Solver engine: "fast" (matrix-free adjoint correlation, incremental
    # QR refits, shared bases) or "reference" (the seed's dense loops,
    # kept as the perf baseline and equivalence oracle).
    solver_engine: str = "fast"
    # Use matrix-free operator bases (scipy.fft DCT plans) instead of
    # dense N x N matrices where an operator form exists (dct, dct2).
    # Only honoured by the fast engine; the reference engine always
    # densifies.
    operator_basis: bool = True
    # Fan the per-zone solve phase over a thread pool at the LocalCloud /
    # hierarchy layer.  Collection (bus traffic, RNG draws) and
    # finalisation (state mutation) stay serial in zone order, so the
    # estimates are bit-identical to a serial run.
    parallel_reconstruction: bool = False
    # Thread-pool size for parallel reconstruction; None sizes the pool
    # to min(pending zones, CPU count).
    reconstruction_workers: int | None = None
    # Overload protection (repro.middleware.overload): admission
    # control on round launch, the solve-deadline circuit breaker and
    # the graceful-degradation ladder.  Every feature defaults off, so
    # the stock config is bit-identical to the unprotected stack.
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    seed: int | None = None

    def __post_init__(self) -> None:
        from ..core.reconstruction import SOLVERS

        if self.solver not in SOLVERS:
            raise ValueError(f"unknown solver {self.solver!r}")
        from ..core.robust import ROBUST_MODES

        if self.robust_mode not in ROBUST_MODES:
            raise ValueError(f"unknown robust_mode {self.robust_mode!r}")
        if self.gls_std_floor <= 0:
            raise ValueError("gls_std_floor must be positive")
        if self.robust_threshold <= 0:
            raise ValueError("robust_threshold must be positive")
        if self.robust_max_rounds < 1:
            raise ValueError("robust_max_rounds must be >= 1")
        if not 0.0 < self.trust_alpha <= 1.0:
            raise ValueError("trust_alpha must be in (0, 1]")
        if not 0.0 <= self.quarantine_trust < self.rehab_trust <= 1.0:
            raise ValueError(
                "need 0 <= quarantine_trust < rehab_trust <= 1"
            )
        if self.quarantine_min_rejections < 1:
            raise ValueError("quarantine_min_rejections must be >= 1")
        if self.rehab_interval < 1:
            raise ValueError("rehab_interval must be >= 1")
        if self.rehab_probes < 0:
            raise ValueError("rehab_probes must be non-negative")
        if self.max_coverage_gap is not None and self.max_coverage_gap < 0:
            raise ValueError("max_coverage_gap must be non-negative")
        if self.command_retries < 0:
            raise ValueError("command_retries must be non-negative")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")
        if self.report_deadline_s <= 0:
            raise ValueError("report_deadline_s must be positive")
        if self.report_timeout_s <= 0:
            raise ValueError("report_timeout_s must be positive")
        if self.solver_engine not in ("fast", "reference"):
            raise ValueError(f"unknown solver_engine {self.solver_engine!r}")
        if (
            self.reconstruction_workers is not None
            and self.reconstruction_workers < 1
        ):
            raise ValueError("reconstruction_workers must be >= 1")


@dataclass(frozen=True)
class NodeConfig:
    """Mobile-node configuration: sensing rates and context processing."""

    context_window: int = 256
    context_rate_hz: float = 32.0
    temporal_duty_cycle: float = 0.125  # ~32 of 256 samples
    temporal_solver: str = "omp"
    share_contexts: bool = True

    def __post_init__(self) -> None:
        if self.context_window < 8:
            raise ValueError("context window too small")
        if self.context_rate_hz <= 0:
            raise ValueError("context rate must be positive")
        if not 0 < self.temporal_duty_cycle <= 1:
            raise ValueError("duty cycle must be in (0, 1]")


@dataclass(frozen=True)
class HierarchyConfig:
    """Shape of the multi-tier deployment (Fig. 1)."""

    zones_x: int = 2
    zones_y: int = 2
    nodes_per_nanocloud: int = 32
    nanoclouds_per_localcloud: int = 1

    def __post_init__(self) -> None:
        if min(
            self.zones_x,
            self.zones_y,
            self.nodes_per_nanocloud,
            self.nanoclouds_per_localcloud,
        ) < 1:
            raise ValueError("hierarchy dimensions must be >= 1")
