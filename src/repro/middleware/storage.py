"""Data logging and retrieval over SQLite.

"SenseDroid provides data management routines and interface to a light
weight database such as SQLite for data logging and efficient sensor
data processing and storing" (Section 3).  The store keeps raw readings
and derived contexts in two indexed tables; retrieval composes with the
query engine (:mod:`repro.middleware.query`) by materialising readings
back into :class:`repro.sensors.base.SensorReading` objects.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass

from ..sensors.base import SensorReading
from .query import Query

__all__ = ["DataStore", "ContextRecord"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS readings (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    sensor TEXT NOT NULL,
    node_id TEXT NOT NULL,
    timestamp REAL NOT NULL,
    value REAL NOT NULL,
    unit TEXT NOT NULL DEFAULT '',
    noise_std REAL NOT NULL DEFAULT 0.0
);
CREATE INDEX IF NOT EXISTS idx_readings_sensor_time
    ON readings (sensor, timestamp);
CREATE INDEX IF NOT EXISTS idx_readings_node
    ON readings (node_id);
CREATE TABLE IF NOT EXISTS contexts (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    kind TEXT NOT NULL,
    node_id TEXT NOT NULL,
    timestamp REAL NOT NULL,
    value TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_contexts_kind_time
    ON contexts (kind, timestamp);
"""


@dataclass(frozen=True)
class ContextRecord:
    """One logged context determination."""

    kind: str
    node_id: str
    timestamp: float
    value: str


class DataStore:
    """SQLite-backed log of readings and contexts.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` (default) for tests and
        short-lived experiments.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "DataStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- readings -------------------------------------------------------

    def log_reading(self, reading: SensorReading) -> None:
        self._conn.execute(
            "INSERT INTO readings (sensor, node_id, timestamp, value, unit,"
            " noise_std) VALUES (?, ?, ?, ?, ?, ?)",
            (
                reading.sensor,
                reading.node_id,
                reading.timestamp,
                reading.value,
                reading.unit,
                reading.noise_std,
            ),
        )
        self._conn.commit()

    def log_readings(self, readings: list[SensorReading]) -> int:
        """Bulk insert; returns the number of rows written."""
        self._conn.executemany(
            "INSERT INTO readings (sensor, node_id, timestamp, value, unit,"
            " noise_std) VALUES (?, ?, ?, ?, ?, ?)",
            [
                (r.sensor, r.node_id, r.timestamp, r.value, r.unit, r.noise_std)
                for r in readings
            ],
        )
        self._conn.commit()
        return len(readings)

    def readings(
        self,
        sensor: str | None = None,
        node_id: str | None = None,
        since: float | None = None,
        until: float | None = None,
        limit: int | None = None,
    ) -> list[SensorReading]:
        """Retrieve readings with SQL-side filtering, newest first."""
        clauses = []
        params: list = []
        if sensor is not None:
            clauses.append("sensor = ?")
            params.append(sensor)
        if node_id is not None:
            clauses.append("node_id = ?")
            params.append(node_id)
        if since is not None:
            clauses.append("timestamp >= ?")
            params.append(since)
        if until is not None:
            clauses.append("timestamp <= ?")
            params.append(until)
        sql = "SELECT sensor, node_id, timestamp, value, unit, noise_std FROM readings"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY timestamp DESC"
        if limit is not None:
            if limit < 1:
                raise ValueError("limit must be >= 1")
            sql += f" LIMIT {int(limit)}"
        rows = self._conn.execute(sql, params).fetchall()
        return [
            SensorReading(
                sensor=row[0],
                node_id=row[1],
                timestamp=row[2],
                value=row[3],
                unit=row[4],
                noise_std=row[5],
            )
            for row in rows
        ]

    def run_query(self, query: Query) -> list[SensorReading]:
        """Evaluate a :class:`repro.middleware.query.Query` over the log.

        Sensor-name and time predicates are pushed down to SQL; the rest
        filter in Python.
        """
        sensor = None
        since = None
        until = None
        for p in query.predicates:
            if p.attribute == "sensor" and p.op == "==":
                sensor = p.operand
            elif p.attribute == "timestamp" and p.op in (">=", ">"):
                since = float(p.operand)
            elif p.attribute == "timestamp" and p.op in ("<=", "<"):
                until = float(p.operand)
        candidates = self.readings(sensor=sensor, since=since, until=until)
        return query.run(candidates)

    def reading_count(self) -> int:
        return int(
            self._conn.execute("SELECT COUNT(*) FROM readings").fetchone()[0]
        )

    # -- contexts -------------------------------------------------------

    def log_context(self, record: ContextRecord) -> None:
        self._conn.execute(
            "INSERT INTO contexts (kind, node_id, timestamp, value)"
            " VALUES (?, ?, ?, ?)",
            (record.kind, record.node_id, record.timestamp, record.value),
        )
        self._conn.commit()

    def contexts(
        self,
        kind: str | None = None,
        since: float | None = None,
        limit: int | None = None,
    ) -> list[ContextRecord]:
        clauses = []
        params: list = []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if since is not None:
            clauses.append("timestamp >= ?")
            params.append(since)
        sql = "SELECT kind, node_id, timestamp, value FROM contexts"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY timestamp DESC"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        rows = self._conn.execute(sql, params).fetchall()
        return [ContextRecord(*row) for row in rows]

    def prune_before(self, timestamp: float) -> int:
        """Delete rows older than ``timestamp``; returns rows removed."""
        cur = self._conn.execute(
            "DELETE FROM readings WHERE timestamp < ?", (timestamp,)
        )
        removed = cur.rowcount
        cur = self._conn.execute(
            "DELETE FROM contexts WHERE timestamp < ?", (timestamp,)
        )
        removed += cur.rowcount
        self._conn.commit()
        return removed
