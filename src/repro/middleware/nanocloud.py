"""NanoCloud assembly: a broker plus its member mobile nodes.

"The NCs consists of mobile nodes connected to a central head or a
broker" (Section 3).  This module wires the pieces: it places nodes on
the cells of a zone, registers everything on the bus, and drives
aggregation rounds.  The zone may be a sub-rectangle of a larger
LocalCloud zone; ``origin`` carries the offset so node states live in
*global* environment coordinates while the broker's grid indices stay
zone-local.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..energy.model import Battery
from ..network.bus import MessageBus
from ..network.links import BLUETOOTH, LTE, WIFI, LinkModel
from ..network.message import Message, MessageKind
from ..network.selector import NetworkSelector
from ..sensors.base import Environment, NodeState, Sensor
from ..sensors.noise import STANDARD_TIERS, draw_tiers
from ..sensors.physical import (
    AccelerometerSensor,
    GPSSensor,
    TemperatureSensor,
    WiFiSensor,
)
from .broker import Broker, ZoneEstimate
from .config import BrokerConfig
from .node import MobileNode

__all__ = ["NanoCloud", "default_node_sensors"]


def default_node_sensors(
    sensor_name: str, rng: np.random.Generator
) -> dict[str, Sensor]:
    """The default phone loadout: the aggregated sensor plus the
    accelerometer/GPS/WiFi used by context probes."""
    sensors: dict[str, Sensor] = {
        "accelerometer": AccelerometerSensor(rng=rng.integers(2**31)),
        "gps": GPSSensor(rng=rng.integers(2**31)),
        "wifi": WiFiSensor(rng=rng.integers(2**31)),
    }
    if sensor_name == "temperature":
        sensors["temperature"] = TemperatureSensor(rng=rng.integers(2**31))
    elif sensor_name not in sensors:
        # Generic field sensor: reuse the temperature model pointed at
        # the requested environment field.
        class _FieldSensor(TemperatureSensor):
            def _true_value(self, env: Environment, state: NodeState, t: float) -> float:
                return env.field_value(sensor_name, state.x, state.y)

        generic = _FieldSensor(rng=rng.integers(2**31))
        generic.spec = type(generic.spec)(
            name=sensor_name,
            unit=generic.spec.unit,
            noise_std=generic.spec.noise_std,
            bias=generic.spec.bias,
            resolution=generic.spec.resolution,
            energy_per_sample_mj=generic.spec.energy_per_sample_mj,
            max_rate_hz=generic.spec.max_rate_hz,
        )
        sensors[sensor_name] = generic
    return sensors


@dataclass
class NanoCloud:
    """One NanoCloud: broker + nodes, wired to a bus."""

    broker: Broker
    nodes: dict[str, MobileNode]
    bus: MessageBus
    origin: tuple[int, int] = (0, 0)
    selector: NetworkSelector | None = None
    cell_size_m: float = 10.0

    def broker_position(self) -> tuple[float, float]:
        """The broker sits at the zone centre (global coordinates)."""
        ox, oy = self.origin
        return (
            ox + (self.broker.zone_width - 1) / 2.0,
            oy + (self.broker.zone_height - 1) / 2.0,
        )

    def refresh_links(self) -> dict[str, str]:
        """Re-select each node's radio for its current distance/battery.

        Section 5's network heterogeneity: near the broker a node uses
        Bluetooth, mid-range WiFi, and beyond WiFi range it falls back to
        cellular.  Returns the chosen link name per node.  Requires a
        :class:`NetworkSelector` (set ``auto_link=True`` at build time).
        """
        if self.selector is None:
            raise RuntimeError(
                "link selection needs a NetworkSelector "
                "(build with auto_link=True)"
            )
        bx, by = self.broker_position()
        reference = Message(
            kind=MessageKind.SENSE_REPORT,
            source="probe",
            destination="probe",
            payload_values=2,
        )
        chosen: dict[str, str] = {}
        max_distance = 1.0
        for node_id, node in self.nodes.items():
            distance = self.cell_size_m * float(
                np.hypot(node.state.x - bx, node.state.y - by)
            )
            max_distance = max(max_distance, distance)
            battery = (
                node.ledger.battery.level
                if node.ledger.battery is not None
                else 1.0
            )
            result = self.selector.select(
                reference,
                [BLUETOOTH, WIFI, LTE],
                battery_level=battery,
                distance_m=max(distance, 1.0),
            )
            self.bus.endpoint(node_id).link = result.link
            chosen[node_id] = result.link.name
        # The broker is a phone too: its radio must reach the farthest
        # member, but no farther — a dense NC's broker also drops to BT.
        broker_link = self.selector.select(
            reference,
            [BLUETOOTH, WIFI, LTE],
            distance_m=max_distance,
        ).link
        self.bus.endpoint(self.broker.broker_id).link = broker_link
        return chosen

    @classmethod
    def build(
        cls,
        nc_id: str,
        bus: MessageBus,
        zone_width: int,
        zone_height: int,
        n_nodes: int,
        *,
        sensor_name: str = "temperature",
        origin: tuple[int, int] = (0, 0),
        config: BrokerConfig | None = None,
        criticality: np.ndarray | None = None,
        node_link: LinkModel = WIFI,
        auto_link: bool = False,
        cell_size_m: float = 10.0,
        heterogeneous: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> "NanoCloud":
        """Construct a NanoCloud with ``n_nodes`` phones scattered
        uniformly over distinct cells of the zone.

        Nodes get quality tiers drawn from the standard handset mix when
        ``heterogeneous`` (the eq.-12 regime); otherwise all midrange.
        """
        n = zone_width * zone_height
        if n_nodes < 1:
            raise ValueError("a NanoCloud needs at least one node")
        gen = np.random.default_rng(rng)
        broker = Broker(
            broker_id=f"{nc_id}/broker",
            zone_width=zone_width,
            zone_height=zone_height,
            sensor_name=sensor_name,
            config=config,
            criticality=criticality,
            rng=gen.integers(2**31),
        )
        bus.register(broker.broker_id)
        # Up to n nodes occupy distinct cells; a denser crowd shares
        # cells (several phones in one grid cell is the normal case in a
        # real deployment — the broker only needs one report per cell).
        if n_nodes <= n:
            cells = gen.choice(n, size=n_nodes, replace=False)
        else:
            cells = np.concatenate(
                [
                    np.arange(n),
                    gen.choice(n, size=n_nodes - n, replace=True),
                ]
            )
            gen.shuffle(cells)
        tiers = (
            draw_tiers(n_nodes, STANDARD_TIERS, gen)
            if heterogeneous
            else [STANDARD_TIERS[1]] * n_nodes
        )
        nodes: dict[str, MobileNode] = {}
        ox, oy = origin
        for idx, (cell, tier) in enumerate(zip(cells.tolist(), tiers)):
            node_id = f"{nc_id}/node{idx}"
            i_local, j_local = cell // zone_height, cell % zone_height
            state = NodeState(x=float(ox + i_local), y=float(oy + j_local))
            node = MobileNode(
                node_id,
                sensors=default_node_sensors(sensor_name, gen),
                tier=tier,
                state=state,
                # Every phone carries a battery so energy posts drain a
                # real budget; initial charge varies across the crowd.
                battery=Battery(
                    capacity_mj=27e6,
                    drained_mj=float(gen.uniform(0.0, 13.5e6)),
                ),
                rng=gen.integers(2**31),
            )
            nodes[node_id] = node
            bus.register(node_id, node_link)
            broker.join(node_id, cell)
        nanocloud = cls(
            broker=broker,
            nodes=nodes,
            bus=bus,
            origin=origin,
            selector=NetworkSelector() if auto_link else None,
            cell_size_m=cell_size_m,
        )
        if auto_link:
            nanocloud.refresh_links()
        return nanocloud

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def refresh_membership(self) -> None:
        """Re-map each node's *current* position to its zone grid cell.

        Mobile nodes drift; before each round the broker must know which
        cell each member currently covers (nodes that wandered outside
        the zone are clamped to the nearest edge cell — they still hold a
        reading representative of the boundary).
        """
        zb = self.broker
        ox, oy = self.origin
        for node_id, node in self.nodes.items():
            i = int(np.clip(round(node.state.x - ox), 0, zb.zone_width - 1))
            j = int(np.clip(round(node.state.y - oy), 0, zb.zone_height - 1))
            zb.members[node_id] = i * zb.zone_height + j

    # -- broker failover ----------------------------------------------

    def heartbeat(self, timestamp: float = 0.0) -> bool:
        """Probe broker liveness against the bus's crash schedule.

        Returns True when the broker is (still) alive.  When the broker
        is crash-scheduled down at ``timestamp``, the NanoCloud fails
        over on the spot — the healthiest live member is promoted to
        acting broker — and the heartbeat reports False so callers can
        log the transition.  Without a fault injector there is nothing
        to probe and the broker is assumed alive.
        """
        injector = self.bus.fault_injector
        if injector is None or not injector.is_down(
            self.broker.broker_id, timestamp
        ):
            return True
        self.promote_broker(timestamp)
        return False

    def promote_broker(self, timestamp: float = 0.0) -> str:
        """Promote the healthiest live member to acting broker.

        Health order: fullest battery first, node id as the
        deterministic tie-break.  The acting broker inherits the zone
        geometry and config, the membership table, the infrastructure
        sensors, the learned prior, the sparsity adaptation state and
        the reconstruction history — rounds continue as if nothing
        happened, minus the promoted phone's own cell coverage.
        Returns the new broker id.
        """
        injector = self.bus.fault_injector
        candidates = [
            node_id
            for node_id in self.nodes
            if injector is None
            or not injector.is_down(node_id, timestamp)
        ]
        if not candidates:
            raise RuntimeError(
                f"NanoCloud of {self.broker.broker_id} has no live "
                "member to promote"
            )

        def health(node_id: str) -> tuple[float, str]:
            battery = self.nodes[node_id].ledger.battery
            level = battery.level if battery is not None else 1.0
            return (-level, node_id)

        new_id = min(candidates, key=health)
        old = self.broker
        self.nodes.pop(new_id)  # the phone stops sensing; it coordinates
        acting = Broker(
            broker_id=new_id,
            zone_width=old.zone_width,
            zone_height=old.zone_height,
            sensor_name=old.sensor_name,
            config=old.config,
            criticality=old.criticality,
        )
        acting.members = {
            node_id: cell
            for node_id, cell in old.members.items()
            if node_id != new_id
        }
        acting.infrastructure = dict(old.infrastructure)
        acting.last_sparsity = old.last_sparsity
        acting._history = list(old._history)
        acting._rounds_run = old._rounds_run
        # Trust is zone knowledge, not broker property: the acting
        # broker inherits the rejection history and quarantine roster
        # (minus its own record — it no longer reports).
        acting.trust = old.trust
        acting.trust.forget(new_id)
        # Overload state is zone knowledge too: the promoted broker
        # resumes mid-degradation (same breaker state, same ladder
        # level) instead of resetting to full-fidelity solves the zone
        # has no budget for.
        acting.overload = old.overload
        # Hand over the sampling stream so the promoted broker's plans
        # continue the deployment's reproducible draw sequence.
        acting._rng = old._rng
        if old.prior is not None:
            acting.set_prior(old.prior)
        self.bus.register(new_id)  # idempotent: it was a node endpoint
        self.broker = acting
        return new_id

    def prepare_round(self, timestamp: float = 0.0) -> Broker:
        """Pre-round housekeeping shared by every round discipline.

        Heartbeat first (a crash-scheduled broker is replaced by an
        acting broker before any command goes out, so churn at the
        coordinator never aborts sensing), then re-map membership to the
        nodes' current positions.  Returns the — possibly freshly
        promoted — broker the round should command through.
        """
        self.heartbeat(timestamp)
        self.refresh_membership()
        return self.broker

    def run_round(
        self,
        env: Environment,
        timestamp: float = 0.0,
        measurements: int | None = None,
        sparsity_cap: int | None = None,
    ) -> ZoneEstimate:
        """One compressive aggregation round over this NanoCloud."""
        broker = self.prepare_round(timestamp)
        return broker.run_round(
            self.bus, self.nodes, env, timestamp,
            measurements=measurements, sparsity_cap=sparsity_cap,
        )

    def collect_round(
        self,
        env: Environment,
        timestamp: float = 0.0,
        measurements: int | None = None,
        sparsity_cap: int | None = None,
    ):
        """Collection phase only (heartbeat + membership + commanding).

        Used by the LocalCloud/hierarchy layers to gather every zone's
        measurements serially before fanning the solve phase over a
        thread pool; see :meth:`repro.middleware.broker.Broker.solve_round`.
        Returns the broker's pending-round record.
        """
        broker = self.prepare_round(timestamp)
        return broker.collect_round(
            self.bus, self.nodes, env, timestamp,
            measurements=measurements, sparsity_cap=sparsity_cap,
        )

    def total_node_energy_mj(self) -> float:
        """Sensing+CPU energy drawn from the member phones so far."""
        return sum(node.ledger.total_mj() for node in self.nodes.values())
