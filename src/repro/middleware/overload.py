"""Overload protection: detector, circuit breaker, degradation ladder.

The middleware is pitched as the layer that keeps sense-making viable
when report volumes outgrow any single collection point (Section 1's
"heavy traffic" framing).  Loss robustness (ROB-LOSS) and Byzantine
robustness (ROB-BYZ) cover a hostile *channel* and hostile *data*; this
module covers a hostile *rate* — offered load exceeding solve capacity —
and turns the failure mode from a cliff (unbounded queues, rounds
falling ever further behind) into a brownout:

- :class:`OverloadDetector` — EWMAs of broker queue depth and
  command→estimate latency (the async round path's own signal), combined
  into a pressure score with hysteresis.  Pure arithmetic on sim-clock
  observations: replaying a seeded scenario replays every transition.
- :class:`CircuitBreaker` — CLOSED → OPEN after repeated round
  timeouts (deadline-closed solves), OPEN → HALF_OPEN after a cooldown,
  and a half-open *probe round* decides between re-closing and
  re-opening.  While OPEN the zone serves its last good estimate
  instead of paying for solves that keep blowing their budget.
- :class:`DegradationLadder` — the broker's staged retreat under
  sustained pressure: full fidelity, reduced M, coarse recovery
  (reduced M *and* a sparsity cap, which bounds solve cost), and
  finally stale serving.  Transitions run both ways so the zone climbs
  back to full fidelity when pressure clears.
- :class:`OverloadController` — one per broker, composing the three.
  It travels with the broker's zone knowledge on failover (see
  :meth:`repro.middleware.nanocloud.NanoCloud.promote_broker`), so a
  promoted broker resumes mid-degradation instead of resetting to
  full-fidelity solves it has no budget for.

Everything here is default-off: a default :class:`OverloadConfig`
disables admission control, the breaker and the ladder, and the
controller then never alters a round — bit-identity with the
unprotected path is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "OverloadConfig",
    "OverloadDetector",
    "BreakerState",
    "CircuitBreaker",
    "DegradationLadder",
    "RoundDirectives",
    "OverloadController",
]

#: Ladder levels, lowest fidelity last.  Levels are ints so telemetry
#: (ZoneEstimate.degraded_level) stays comparable across configs.
LEVEL_FULL = 0  # normal operation
LEVEL_REDUCED_M = 1  # fewer measurements per round
LEVEL_COARSE = 2  # fewer measurements + sparsity-capped (cheap) solve
LEVEL_STALE = 3  # serve the last good estimate; no sensing at all

MAX_LEVEL = LEVEL_STALE


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs for the overload-protection subsystem (all default-off).

    Attributes
    ----------
    admission_control:
        Arm busy-skip rescheduling on the round driver: a firing that
        finds the previous round still in flight retries once after
        ``admission_retry_frac`` of the period (instead of waiting a
        whole period) while the consecutive-skip count stays within
        ``busy_skip_budget``; beyond the budget the skip is treated as
        sustained pressure and escalates the ladder instead.
    breaker_enabled:
        Arm the solve circuit breaker: ``breaker_failures`` consecutive
        timed-out rounds (closed by the report deadline rather than by
        the last report) trip it OPEN; the zone then serves stale for
        ``breaker_cooldown_rounds`` round slots and half-opens on a
        probe round whose outcome closes or re-opens it.
    ladder_enabled:
        Arm the graceful-degradation ladder driven by the detector.
    queue_alpha / latency_alpha:
        EWMA steps for the two pressure signals.
    queue_high:
        Queue depth (EWMA) that counts as pressure 1.0.
    latency_high_frac:
        Fraction of the report deadline at which the latency EWMA
        counts as pressure 1.0 (rounds routinely finishing near the
        deadline are rounds about to start missing it).
    escalate_at / recover_below:
        Pressure hysteresis: one ladder step down (coarser) when the
        combined pressure exceeds ``escalate_at``; one step up (finer)
        after ``recover_rounds`` consecutive observations below
        ``recover_below``.
    recover_rounds:
        Consecutive calm observations required before recovering a
        level — prevents flapping at the threshold.
    reduced_m_scale / coarse_m_scale:
        Measurement-budget multipliers at LEVEL_REDUCED_M and
        LEVEL_COARSE.
    coarse_sparsity_cap:
        Sparsity-estimate ceiling at LEVEL_COARSE — bounds the solve's
        iteration count, which is what makes the coarse level cheap.
    """

    admission_control: bool = False
    busy_skip_budget: int = 2
    admission_retry_frac: float = 0.25
    breaker_enabled: bool = False
    breaker_failures: int = 3
    breaker_cooldown_rounds: int = 2
    ladder_enabled: bool = False
    queue_alpha: float = 0.5
    latency_alpha: float = 0.5
    queue_high: float = 32.0
    latency_high_frac: float = 0.9
    escalate_at: float = 1.0
    recover_below: float = 0.5
    recover_rounds: int = 2
    reduced_m_scale: float = 0.5
    coarse_m_scale: float = 0.35
    coarse_sparsity_cap: int = 8

    def __post_init__(self) -> None:
        if self.busy_skip_budget < 0:
            raise ValueError("busy_skip_budget must be non-negative")
        if not 0.0 < self.admission_retry_frac < 1.0:
            raise ValueError("admission_retry_frac must be in (0, 1)")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_cooldown_rounds < 1:
            raise ValueError("breaker_cooldown_rounds must be >= 1")
        for name in ("queue_alpha", "latency_alpha"):
            if not 0.0 < getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.queue_high <= 0:
            raise ValueError("queue_high must be positive")
        if not 0.0 < self.latency_high_frac <= 1.0:
            raise ValueError("latency_high_frac must be in (0, 1]")
        if not 0.0 <= self.recover_below < self.escalate_at:
            raise ValueError("need 0 <= recover_below < escalate_at")
        if self.recover_rounds < 1:
            raise ValueError("recover_rounds must be >= 1")
        if not 0.0 < self.coarse_m_scale <= self.reduced_m_scale <= 1.0:
            raise ValueError(
                "need 0 < coarse_m_scale <= reduced_m_scale <= 1"
            )
        if self.coarse_sparsity_cap < 1:
            raise ValueError("coarse_sparsity_cap must be >= 1")

    @property
    def any_enabled(self) -> bool:
        """True when any overload feature can alter a round."""
        return (
            self.admission_control
            or self.breaker_enabled
            or self.ladder_enabled
        )


@dataclass
class OverloadDetector:
    """EWMA pressure detector over queue depth and round latency.

    State is two floats updated by pure arithmetic on observations the
    sim clock produced, so a replayed scenario replays every pressure
    value bit for bit.  ``pressure`` is the worse of the two normalised
    signals: either a deep queue or near-deadline latency alone is
    enough to mean the zone is saturated.
    """

    config: OverloadConfig = field(default_factory=OverloadConfig)
    queue_ewma: float = 0.0
    latency_ewma: float = 0.0
    observations: int = 0

    def observe_queue(self, depth: int) -> None:
        a = self.config.queue_alpha
        self.queue_ewma += a * (float(depth) - self.queue_ewma)

    def observe_latency(self, latency_s: float, deadline_s: float) -> None:
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        a = self.config.latency_alpha
        normalised = latency_s / deadline_s
        self.latency_ewma += a * (normalised - self.latency_ewma)
        self.observations += 1

    def observe_stale_serve(self) -> None:
        """A stale serve completes instantly: a zero-latency observation.

        Without this the latency EWMA would freeze at its saturated
        value once the ladder reaches LEVEL_STALE (stale slots never
        reach :meth:`OverloadController.finish_round`), latching the
        zone stale forever.  Decaying it here lets sustained calm
        unlatch the ladder.
        """
        self.latency_ewma -= self.config.latency_alpha * self.latency_ewma
        self.observations += 1

    @property
    def pressure(self) -> float:
        """Combined pressure: 1.0 = at the configured saturation point."""
        queue_pressure = self.queue_ewma / self.config.queue_high
        latency_pressure = self.latency_ewma / self.config.latency_high_frac
        return max(queue_pressure, latency_pressure)


class BreakerState(Enum):
    """Solve circuit breaker lifecycle."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Trips after repeated round timeouts; half-opens on a probe round.

    A "failure" is a round the report deadline had to close (the solve
    budget blown in sim time) — a deterministic signal, unlike wall
    clock.  While OPEN, :meth:`allow_round` returns False for
    ``cooldown_rounds`` round slots (the zone serves stale), then the
    breaker half-opens and admits exactly one probe round; that round's
    outcome either re-closes or re-opens the breaker.
    """

    failure_threshold: int = 3
    cooldown_rounds: int = 2
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    cooldown_left: int = 0
    trips: int = 0

    def allow_round(self) -> bool:
        """Gate one round slot; called once per firing while enabled."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.HALF_OPEN:
            return True  # the probe round is in flight
        self.cooldown_left -= 1
        if self.cooldown_left <= 0:
            self.state = BreakerState.HALF_OPEN
            return True  # this round is the probe
        return False

    @property
    def probing(self) -> bool:
        return self.state is BreakerState.HALF_OPEN

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = BreakerState.CLOSED

    def record_failure(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            # The probe round also timed out: straight back to OPEN.
            self._trip()
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = BreakerState.OPEN
        self.cooldown_left = self.cooldown_rounds
        self.consecutive_failures = 0
        self.trips += 1


@dataclass
class DegradationLadder:
    """Staged fidelity retreat/recovery driven by detector pressure."""

    config: OverloadConfig = field(default_factory=OverloadConfig)
    level: int = LEVEL_FULL
    calm_streak: int = 0
    escalations: int = 0
    recoveries: int = 0

    def update(self, pressure: float) -> int:
        """Feed one round's pressure; returns the (new) level."""
        if pressure > self.config.escalate_at:
            self.calm_streak = 0
            if self.level < MAX_LEVEL:
                self.level += 1
                self.escalations += 1
        elif pressure < self.config.recover_below:
            self.calm_streak += 1
            if self.calm_streak >= self.config.recover_rounds:
                self.calm_streak = 0
                if self.level > LEVEL_FULL:
                    self.level -= 1
                    self.recoveries += 1
        else:
            self.calm_streak = 0
        return self.level

    def m_scale(self) -> float:
        if self.level >= LEVEL_COARSE:
            return self.config.coarse_m_scale
        if self.level >= LEVEL_REDUCED_M:
            return self.config.reduced_m_scale
        return 1.0

    def sparsity_cap(self) -> int | None:
        if self.level >= LEVEL_COARSE:
            return self.config.coarse_sparsity_cap
        return None


@dataclass(frozen=True)
class RoundDirectives:
    """What the controller tells the round driver to do this firing.

    ``serve_stale`` short-circuits the whole round (ladder LEVEL_STALE
    or breaker OPEN); otherwise ``m_scale``/``sparsity_cap`` shape the
    plan.  ``m_scale == 1.0`` and ``sparsity_cap is None`` together
    mean "exactly the unprotected round" — the bit-identity contract.
    """

    serve_stale: bool = False
    m_scale: float = 1.0
    sparsity_cap: int | None = None
    level: int = LEVEL_FULL
    probe: bool = False


#: The directives an unprotected (default-config) round always gets.
PASSTHROUGH = RoundDirectives()


@dataclass
class OverloadController:
    """Per-broker composition of detector, breaker and ladder.

    Lives on the broker (like :class:`repro.middleware.trust
    .TrustManager`) because degradation state is *zone* knowledge: a
    promoted acting broker inherits it through the failover carry-over
    rather than resetting to full fidelity mid-overload.
    """

    config: OverloadConfig = field(default_factory=OverloadConfig)
    detector: OverloadDetector = field(init=False)
    breaker: CircuitBreaker = field(init=False)
    ladder: DegradationLadder = field(init=False)
    stale_serves: int = 0
    pressure_skips: int = 0

    def __post_init__(self) -> None:
        self.detector = OverloadDetector(config=self.config)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            cooldown_rounds=self.config.breaker_cooldown_rounds,
        )
        self.ladder = DegradationLadder(config=self.config)

    @property
    def enabled(self) -> bool:
        return self.config.any_enabled

    def begin_round(self, queue_depth: int) -> RoundDirectives:
        """Gate one round firing and shape its plan.

        Called once per firing (before any command goes out).  Returns
        :data:`PASSTHROUGH` while disabled, so the default config can
        never perturb a round.
        """
        if not self.enabled:
            return PASSTHROUGH
        self.detector.observe_queue(queue_depth)
        probe = False
        if self.config.breaker_enabled:
            if not self.breaker.allow_round():
                self.stale_serves += 1
                return RoundDirectives(
                    serve_stale=True, level=self.ladder.level
                )
            probe = self.breaker.probing
        if self.config.ladder_enabled and self.ladder.level >= LEVEL_STALE:
            # The stale slot is itself an observation (zero latency, the
            # queue depth seen above): feed it through so the ladder can
            # climb back once pressure clears instead of latching stale.
            self.detector.observe_stale_serve()
            if self.ladder.update(self.detector.pressure) >= LEVEL_STALE:
                self.stale_serves += 1
                return RoundDirectives(
                    serve_stale=True, level=self.ladder.level
                )
        return RoundDirectives(
            m_scale=self.ladder.m_scale() if self.config.ladder_enabled else 1.0,
            sparsity_cap=(
                self.ladder.sparsity_cap()
                if self.config.ladder_enabled
                else None
            ),
            level=self.ladder.level,
            probe=probe,
        )

    def finish_round(
        self, latency_s: float, deadline_s: float, timed_out: bool
    ) -> None:
        """Feed one completed round's outcome back into the state."""
        if not self.enabled:
            return
        self.detector.observe_latency(latency_s, deadline_s)
        if self.config.breaker_enabled:
            if timed_out:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
        if self.config.ladder_enabled:
            self.ladder.update(self.detector.pressure)

    def record_busy_skip(self, over_budget: bool) -> None:
        """A round firing found the previous round still in flight.

        Beyond the busy-skip budget this is sustained pressure: it
        escalates the ladder directly (the zone cannot even *start*
        rounds at the offered rate, so waiting for latency EWMAs to
        climb would react a whole ladder-dwell too late).
        """
        if not self.enabled:
            return
        if over_budget and self.config.ladder_enabled:
            self.pressure_skips += 1
            self.ladder.update(self.config.escalate_at * 2.0)

    def snapshot(self) -> dict[str, float | int | str]:
        """Telemetry view (dashboards, tests, the OVERLOAD bench)."""
        return {
            "level": self.ladder.level,
            "pressure": self.detector.pressure,
            "breaker": self.breaker.state.value,
            "breaker_trips": self.breaker.trips,
            "stale_serves": self.stale_serves,
            "pressure_skips": self.pressure_skips,
        }
