"""Privacy policy and enforcement (Section 5, Privacy Regulation).

The paper adopts "transparency, full user control, and encryption of the
data that is shared.  User can fully set or control their preferences,
enable or disable features, control of the type of sensors and parameter
that can be shared ... In the worst case, the user can opt-out."  This
module implements exactly that control surface: a per-user policy that
the node consults before sharing any reading or context, with optional
granularity reduction (quantising values so exact positions/levels are
not disclosed).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..sensors.base import SensorReading

__all__ = ["PrivacyPolicy", "PrivacyAudit"]


@dataclass
class PrivacyPolicy:
    """One user's sharing preferences.

    Attributes
    ----------
    opted_out:
        Master switch; when True nothing leaves the device.
    allowed_sensors:
        Sensor names the user permits to share; ``None`` permits all.
    blocked_sensors:
        Explicitly forbidden sensors (wins over allowed).
    share_contexts:
        Whether derived contexts (IsDriving etc.) may be shared — users
        may allow raw temperature but not activity inference.
    quantization:
        Per-sensor value granularity; readings are rounded to the nearest
        multiple before sharing (0 = share exact values).
    """

    opted_out: bool = False
    allowed_sensors: set[str] | None = None
    blocked_sensors: set[str] = field(default_factory=set)
    share_contexts: bool = True
    quantization: dict[str, float] = field(default_factory=dict)

    def may_share(self, sensor_name: str) -> bool:
        """Whether readings of this sensor may leave the device."""
        if self.opted_out:
            return False
        if sensor_name in self.blocked_sensors:
            return False
        if self.allowed_sensors is not None:
            return sensor_name in self.allowed_sensors
        return True

    def filter_reading(self, reading: SensorReading) -> SensorReading | None:
        """Apply the policy to one reading.

        Returns ``None`` when sharing is forbidden; otherwise the reading,
        quantised to the configured granularity.
        """
        if not self.may_share(reading.sensor):
            return None
        step = self.quantization.get(reading.sensor, 0.0)
        if step > 0:
            return replace(reading, value=round(reading.value / step) * step)
        return reading

    def opt_out(self) -> None:
        """The worst-case user action the paper guarantees."""
        self.opted_out = True

    def opt_in(self) -> None:
        self.opted_out = False


@dataclass
class PrivacyAudit:
    """Transparency log: counts of shared vs withheld readings per sensor.

    "Transparency" is one of the paper's three privacy pillars; nodes
    keep this audit so the user can inspect exactly what left the device.
    """

    shared: dict[str, int] = field(default_factory=dict)
    withheld: dict[str, int] = field(default_factory=dict)

    def record(self, sensor_name: str, was_shared: bool) -> None:
        book = self.shared if was_shared else self.withheld
        book[sensor_name] = book.get(sensor_name, 0) + 1

    def total_shared(self) -> int:
        return sum(self.shared.values())

    def total_withheld(self) -> int:
        return sum(self.withheld.values())
