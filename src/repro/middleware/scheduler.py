"""Adaptive sensor scheduling (Section 5, Energy Efficiency).

The paper lists "sensor scheduling, adaptive sampling, and compressive
sampling and their novel combinations" as the energy-efficiency research
direction.  This module implements the two schedulers that combine with
compressive probes:

- :class:`AdaptiveDutyCycle` — closed-loop control of a probe's duty
  cycle: raise it while reconstruction error exceeds the target, lower
  it while there is slack.  This is the "tunable approximate processing"
  loop at node level.
- :class:`RoundRobinScheduler` — broker-side rotation of which member
  nodes carry the sensing burden each round, equalising battery drain
  across the NanoCloud (collaborative energy sharing, cf. [24]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AdaptiveDutyCycle", "RoundRobinScheduler"]


@dataclass
class AdaptiveDutyCycle:
    """Error-feedback controller for a compressive probe's duty cycle.

    Multiplicative-increase / multiplicative-decrease on the measured
    reconstruction error: robust to the error's unknown scale and
    guarantees the duty cycle stays within the configured bounds.
    """

    target_error: float
    duty_cycle: float = 0.25
    min_duty: float = 0.05
    max_duty: float = 1.0
    increase_factor: float = 1.5
    decrease_factor: float = 0.8
    hysteresis: float = 0.2
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.target_error <= 0:
            raise ValueError("target_error must be positive")
        if not 0 < self.min_duty <= self.duty_cycle <= self.max_duty <= 1:
            raise ValueError("need 0 < min <= duty <= max <= 1")
        if self.increase_factor <= 1 or not 0 < self.decrease_factor < 1:
            raise ValueError("factors must satisfy inc > 1 and 0 < dec < 1")
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")

    def update(self, observed_error: float) -> float:
        """Feed one round's reconstruction error; returns the new duty
        cycle to use next round."""
        if observed_error < 0:
            raise ValueError("error must be non-negative")
        self.history.append(float(observed_error))
        if observed_error > self.target_error * (1 + self.hysteresis):
            self.duty_cycle = min(
                self.duty_cycle * self.increase_factor, self.max_duty
            )
        elif observed_error < self.target_error * (1 - self.hysteresis):
            self.duty_cycle = max(
                self.duty_cycle * self.decrease_factor, self.min_duty
            )
        return self.duty_cycle

    def samples_for(self, n: int) -> int:
        """Current M for a window/zone of N instants/cells."""
        if n < 1:
            raise ValueError("n must be positive")
        return max(int(np.ceil(self.duty_cycle * n)), 1)


@dataclass
class RoundRobinScheduler:
    """Rotates sensing duty across member nodes to equalise battery drain.

    Each call to :meth:`pick` returns the ``m`` least-recently-used
    members (ties broken by accumulated assignment count) and charges
    them one duty unit.
    """

    members: list[str]
    _assignments: dict[str, int] = field(default_factory=dict)
    _last_used: dict[str, int] = field(default_factory=dict)
    _round: int = 0

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("scheduler needs at least one member")
        for member in self.members:
            self._assignments.setdefault(member, 0)
            self._last_used.setdefault(member, -1)

    def add(self, member: str) -> None:
        if member not in self._assignments:
            self.members.append(member)
            self._assignments[member] = 0
            self._last_used[member] = -1

    def remove(self, member: str) -> None:
        if member in self._assignments:
            self.members.remove(member)
            del self._assignments[member]
            del self._last_used[member]

    def pick(self, m: int) -> list[str]:
        """Select the next ``m`` members to carry the sensing burden."""
        if m < 1:
            raise ValueError("must pick at least one member")
        m = min(m, len(self.members))
        ordered = sorted(
            self.members,
            key=lambda member: (
                self._last_used[member],
                self._assignments[member],
                member,
            ),
        )
        picked = ordered[:m]
        self._round += 1
        for member in picked:
            self._assignments[member] += 1
            self._last_used[member] = self._round
        return picked

    def load(self) -> dict[str, int]:
        """Accumulated assignment counts (fairness check)."""
        return dict(self._assignments)

    def fairness(self) -> float:
        """Jain's fairness index of the assignment counts (1 = perfectly
        even)."""
        counts = np.array(list(self._assignments.values()), dtype=float)
        if counts.sum() == 0:
            return 1.0
        return float(counts.sum() ** 2 / (counts.size * np.sum(counts**2)))
