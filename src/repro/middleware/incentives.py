"""Incentive mechanisms for participation (Section 5, Incentive
Mechanisms).

The paper surveys three mechanism families it considers for the
framework; all three are implemented so the collaboration layer can
recruit nodes economically:

- recruitment selection [21]: pick well-suited participants by a
  coverage/quality/cost score;
- sealed-bid second-price (Vickrey) auction [4]: truthful single-task
  allocation;
- reverse auction with dynamic price (RADP-VPC) [9]: per-round
  procurement of k readings with virtual participation credit that keeps
  losing sellers from dropping out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Bid",
    "AuctionResult",
    "second_price_auction",
    "ReverseAuction",
    "RecruitmentSelector",
    "Candidate",
]


@dataclass(frozen=True)
class Bid:
    """One node's offer to perform a sensing task for a price."""

    node_id: str
    price: float

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("bid needs a node id")
        if self.price < 0:
            raise ValueError("price must be non-negative")


@dataclass(frozen=True)
class AuctionResult:
    """Outcome of one auction round."""

    winners: tuple[str, ...]
    payments: dict[str, float]

    @property
    def total_cost(self) -> float:
        return float(sum(self.payments.values()))


def second_price_auction(bids: list[Bid]) -> AuctionResult:
    """Sealed-bid second-price (Vickrey) auction for one sensing task.

    The lowest bidder wins and is paid the second-lowest bid — the
    incentive-compatible rule of [4].  A single bid wins at its own price.
    """
    if not bids:
        raise ValueError("auction needs at least one bid")
    ordered = sorted(bids, key=lambda b: (b.price, b.node_id))
    winner = ordered[0]
    payment = ordered[1].price if len(ordered) > 1 else winner.price
    return AuctionResult(
        winners=(winner.node_id,), payments={winner.node_id: payment}
    )


@dataclass
class ReverseAuction:
    """Reverse auction with dynamic price and virtual participation
    credit (RADP-VPC, after [9]).

    Each round the buyer (broker) procures ``k`` readings: the ``k``
    cheapest *effective* bids win, where effective price = bid price
    minus accumulated virtual credit.  Losers earn ``credit_per_loss`` so
    persistent participation eventually wins — preventing the
    death-spiral where priced-out sellers leave the market.
    Winners are paid their *bid* price (pay-as-bid) and their credit
    resets.
    """

    credit_per_loss: float = 1.0
    credits: dict[str, float] = field(default_factory=dict)
    rounds_run: int = 0

    def __post_init__(self) -> None:
        if self.credit_per_loss < 0:
            raise ValueError("credit must be non-negative")

    def effective_price(self, bid: Bid) -> float:
        return bid.price - self.credits.get(bid.node_id, 0.0)

    def run_round(self, bids: list[Bid], k: int) -> AuctionResult:
        """Procure ``k`` readings from the submitted bids."""
        if k < 1:
            raise ValueError("must procure at least one reading")
        if not bids:
            raise ValueError("auction round needs bids")
        seen = set()
        for bid in bids:
            if bid.node_id in seen:
                raise ValueError(f"duplicate bid from {bid.node_id}")
            seen.add(bid.node_id)
        k = min(k, len(bids))
        ordered = sorted(
            bids, key=lambda b: (self.effective_price(b), b.node_id)
        )
        winners = ordered[:k]
        losers = ordered[k:]
        payments = {b.node_id: b.price for b in winners}
        for bid in winners:
            self.credits[bid.node_id] = 0.0
        for bid in losers:
            self.credits[bid.node_id] = (
                self.credits.get(bid.node_id, 0.0) + self.credit_per_loss
            )
        self.rounds_run += 1
        return AuctionResult(
            winners=tuple(b.node_id for b in winners), payments=payments
        )


@dataclass(frozen=True)
class Candidate:
    """A node considered by the recruitment framework [21]."""

    node_id: str
    coverage: float  # fraction of the target area/time it can cover
    quality: float  # sensor quality score (e.g. 1/noise multiplier)
    cost: float  # asking price or energy burden

    def __post_init__(self) -> None:
        if not 0 <= self.coverage <= 1:
            raise ValueError("coverage must be in [0, 1]")
        if self.quality < 0 or self.cost < 0:
            raise ValueError("quality and cost must be non-negative")


@dataclass
class RecruitmentSelector:
    """Score-based participant selection.

    Score = coverage^a * quality^b / (cost + eps)^c; the exponents weight
    the campaign's priorities.  :meth:`select` returns the top-k
    candidates meeting the minimum coverage requirement.
    """

    coverage_weight: float = 1.0
    quality_weight: float = 1.0
    cost_weight: float = 1.0
    min_coverage: float = 0.0

    def score(self, candidate: Candidate) -> float:
        eps = 1e-9
        return (
            (candidate.coverage + eps) ** self.coverage_weight
            * (candidate.quality + eps) ** self.quality_weight
            / (candidate.cost + eps) ** self.cost_weight
        )

    def select(self, candidates: list[Candidate], k: int) -> list[Candidate]:
        if k < 1:
            raise ValueError("must select at least one participant")
        eligible = [
            c for c in candidates if c.coverage >= self.min_coverage
        ]
        eligible.sort(key=lambda c: (-self.score(c), c.node_id))
        return eligible[:k]
