"""Energy-efficient uploading strategies (Section 5, citing [16]).

The paper cites Musolesi et al. [16] on "energy-efficient uploading
strategies for continuous sensing applications": when a phone produces a
stream of readings/contexts, *when* it uploads them matters as much as
how many — each radio wake-up has a fixed cost, so batching amortises
it, and delaying until a cheap network appears (WiFi offload) saves
more, at the price of staleness.

Three strategies over a common trace model:

- ``ImmediateUpload``   — send every item as produced (freshest, priciest);
- ``BatchedUpload``     — accumulate ``batch_size`` items per transmission;
- ``OpportunisticUpload`` — batch, and additionally hold until a cheap
  link is available or a staleness deadline forces a send on the
  expensive one.

Each returns an :class:`UploadStats` so the ABL-UPLOAD bench can print
the energy/staleness frontier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.links import LinkModel
from ..network.message import Message, MessageKind

__all__ = [
    "UploadItem",
    "UploadStats",
    "ImmediateUpload",
    "BatchedUpload",
    "OpportunisticUpload",
]


@dataclass(frozen=True)
class UploadItem:
    """One produced reading/context awaiting upload."""

    timestamp: float
    values: int = 1  # scalar payload size


@dataclass
class UploadStats:
    """Outcome of running one strategy over a production trace."""

    transmissions: int = 0
    items_sent: int = 0
    energy_mj: float = 0.0
    total_staleness_s: float = 0.0  # sum over items of (send - produce)
    items_pending: int = 0

    @property
    def mean_staleness_s(self) -> float:
        if self.items_sent == 0:
            return 0.0
        return self.total_staleness_s / self.items_sent


def _send(
    stats: UploadStats,
    link: LinkModel,
    items: list[UploadItem],
    now: float,
) -> None:
    message = Message(
        kind=MessageKind.SENSE_REPORT,
        source="node",
        destination="broker",
        payload_values=sum(item.values for item in items),
        timestamp=now,
    )
    stats.transmissions += 1
    stats.items_sent += len(items)
    stats.energy_mj += link.transfer_energy_mj(message)
    stats.total_staleness_s += sum(now - item.timestamp for item in items)


class ImmediateUpload:
    """Transmit each item the moment it is produced."""

    def __init__(self, link: LinkModel) -> None:
        self.link = link

    def run(self, items: list[UploadItem]) -> UploadStats:
        stats = UploadStats()
        for item in items:
            _send(stats, self.link, [item], now=item.timestamp)
        return stats


class BatchedUpload:
    """Accumulate ``batch_size`` items, then transmit them together."""

    def __init__(self, link: LinkModel, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.link = link
        self.batch_size = batch_size

    def run(self, items: list[UploadItem], flush_at: float | None = None) -> UploadStats:
        stats = UploadStats()
        pending: list[UploadItem] = []
        for item in items:
            pending.append(item)
            if len(pending) >= self.batch_size:
                _send(stats, self.link, pending, now=item.timestamp)
                pending = []
        if pending and flush_at is not None:
            _send(stats, self.link, pending, now=flush_at)
            pending = []
        stats.items_pending = len(pending)
        return stats


class OpportunisticUpload:
    """Hold items for a cheap link; spill to the expensive one only when
    the oldest pending item would exceed the staleness deadline.

    ``cheap_windows`` lists (start, end) intervals during which the cheap
    link (e.g. home/office WiFi) is reachable; outside them only the
    expensive link (cellular) exists.
    """

    def __init__(
        self,
        cheap_link: LinkModel,
        expensive_link: LinkModel,
        cheap_windows: list[tuple[float, float]],
        max_staleness_s: float,
    ) -> None:
        if max_staleness_s <= 0:
            raise ValueError("staleness deadline must be positive")
        for start, end in cheap_windows:
            if end <= start:
                raise ValueError("cheap window must have positive length")
        self.cheap_link = cheap_link
        self.expensive_link = expensive_link
        self.cheap_windows = sorted(cheap_windows)
        self.max_staleness_s = max_staleness_s

    def _cheap_available(self, t: float) -> bool:
        return any(start <= t <= end for start, end in self.cheap_windows)

    def _next_cheap_start(self, t: float) -> float | None:
        for start, _ in self.cheap_windows:
            if start >= t:
                return start
        return None

    def run(self, items: list[UploadItem], flush_at: float) -> UploadStats:
        stats = UploadStats()
        pending: list[UploadItem] = []
        for item in sorted(items, key=lambda i: i.timestamp):
            now = item.timestamp
            # First, drain if we are inside a cheap window.
            if pending and self._cheap_available(now):
                _send(stats, self.cheap_link, pending, now=now)
                pending = []
            pending.append(item)
            if self._cheap_available(now):
                _send(stats, self.cheap_link, pending, now=now)
                pending = []
                continue
            # Will the oldest pending item expire before the next cheap
            # window?  If so, pay the cellular price now.
            oldest = pending[0].timestamp
            deadline = oldest + self.max_staleness_s
            next_cheap = self._next_cheap_start(now)
            if next_cheap is None or next_cheap > deadline:
                if now >= deadline:
                    _send(stats, self.expensive_link, pending, now=now)
                    pending = []
        if pending:
            link = (
                self.cheap_link
                if self._cheap_available(flush_at)
                else self.expensive_link
            )
            _send(stats, link, pending, now=flush_at)
        return stats
