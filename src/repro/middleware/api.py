"""The SenseDroid facade: one object that assembles the whole stack.

This is the public entry point a downstream application uses: build a
deployment over an environment, run sensing rounds, ask for contexts,
query the log.  Everything underneath (hierarchy, brokers, nodes, bus,
storage) stays accessible for advanced use, but the facade covers the
paper's five middleware features — mobile phone sensing, context
determination, communication/collaboration, data logging/retrieval, and
query/filtering — in a handful of methods.
"""

from __future__ import annotations

import numpy as np

from ..context.group import GroupContext
from ..core import metrics
from ..fields.field import SpatialField
from ..network.bus import MessageBus
from ..sensors.base import Environment, SensorReading
from .config import BrokerConfig, HierarchyConfig
from .hierarchy import GlobalEstimate, Hierarchy
from .query import Query
from .storage import ContextRecord, DataStore

__all__ = ["SenseDroid"]


class SenseDroid:
    """A deployed SenseDroid instance over one environment.

    Parameters
    ----------
    env:
        Ground-truth environment (fields + indoor map).
    sensor_name:
        The physical field being crowdsensed.
    hierarchy_config / broker_config:
        Deployment shape and reconstruction configuration.
    store_path:
        SQLite path for the data log (default in-memory).
    transport:
        Message transport the deployment rides — any
        :class:`repro.network.transport.Transport` backend (the
        in-process :class:`~repro.network.transport.SimTransport`, the
        socket-facing
        :class:`~repro.network.asyncio_transport.AsyncioTransport`, or a
        plain :class:`~repro.network.bus.MessageBus`).  ``None`` builds
        a private synchronous bus, the seed behaviour.
    """

    def __init__(
        self,
        env: Environment,
        *,
        sensor_name: str = "temperature",
        hierarchy_config: HierarchyConfig | None = None,
        broker_config: BrokerConfig | None = None,
        criticality: np.ndarray | None = None,
        store_path: str = ":memory:",
        heterogeneous: bool = True,
        transport: MessageBus | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if sensor_name not in env.fields:
            raise ValueError(
                f"environment has no field {sensor_name!r}; "
                f"available: {sorted(env.fields)}"
            )
        self.env = env
        self.sensor_name = sensor_name
        truth = env.fields[sensor_name]
        self.hierarchy = Hierarchy(
            truth.width,
            truth.height,
            config=hierarchy_config,
            broker_config=broker_config,
            sensor_name=sensor_name,
            criticality=criticality,
            heterogeneous=heterogeneous,
            bus=transport,
            rng=rng,
        )
        self.store = DataStore(store_path)
        self._round = 0

    # -- sensing ----------------------------------------------------------

    def sense_field(
        self,
        *,
        total_budget: int | None = None,
        adaptive: bool = False,
    ) -> GlobalEstimate:
        """Run one global compressive sensing round.

        Parameters
        ----------
        total_budget:
            Optional global measurement budget; required for
            ``adaptive=True`` where it is split across zones by local
            sparsity and criticality (Fig. 5); otherwise each broker's
            own policy chooses M.
        adaptive:
            Enable the zone-adaptive allocation.
        """
        timestamp = float(self._round)
        zone_measurements = None
        if adaptive:
            if total_budget is None:
                raise ValueError("adaptive allocation needs a total_budget")
            truth = self.env.fields[self.sensor_name]
            zone_measurements = self.hierarchy.zone_budgets(
                truth, total_budget
            )
        elif total_budget is not None:
            per_zone = total_budget // len(self.hierarchy.zone_grid)
            zone_measurements = {
                zone.zone_id: max(per_zone, 4)
                for zone in self.hierarchy.zone_grid
            }
        estimate = self.hierarchy.run_global_round(
            self.env, timestamp, zone_measurements=zone_measurements
        )
        self._round += 1
        self._log_round(estimate)
        return estimate

    def _log_round(self, estimate: GlobalEstimate) -> None:
        """Log every collected measurement into the data store."""
        readings = []
        for zone_id, result in estimate.zone_results.items():
            lc = self.hierarchy.localclouds[zone_id]
            for nc, nc_estimate in zip(lc.nanoclouds, result.nc_estimates):
                values = nc_estimate.reconstruction
                for cell, value in zip(
                    nc_estimate.plan.locations.tolist(),
                    (values.x_hat[nc_estimate.plan.locations]).tolist(),
                ):
                    readings.append(
                        SensorReading(
                            sensor=self.sensor_name,
                            timestamp=estimate.timestamp,
                            value=float(value),
                            node_id=nc.broker.broker_id,
                        )
                    )
        if readings:
            self.store.log_readings(readings)

    def estimate_error(self, estimate: GlobalEstimate) -> float:
        """Relative L2 error of a global estimate vs the ground truth."""
        truth = self.env.fields[self.sensor_name]
        return metrics.relative_error(
            truth.vector(), estimate.field.vector()
        )

    def zone_error(self, zone_id: int, zone_field: SpatialField) -> float:
        """Relative L2 error of one zone's field vs its truth block.

        Event-driven rounds finish per zone at different sim times, so
        there is no global estimate to score — each zone's estimate is
        compared against the ground truth *restricted to that zone*.
        """
        zone = next(
            z for z in self.hierarchy.zone_grid if z.zone_id == zone_id
        )
        truth = self.env.fields[self.sensor_name]
        block = truth.grid[
            zone.y0 : zone.y0 + zone.height, zone.x0 : zone.x0 + zone.width
        ]
        return metrics.relative_error(
            block.ravel(order="F"), zone_field.vector()
        )

    # -- contexts ----------------------------------------------------------

    def sense_contexts(self, compressive: bool = True) -> dict[str, str]:
        """Run on-node activity inference across the fleet and share the
        results through each NanoCloud broker.

        Returns the inferred mode per node id.
        """
        timestamp = float(self._round)
        inferred: dict[str, str] = {}
        for lc in self.hierarchy.localclouds.values():
            for nc in lc.nanoclouds:
                for node in nc.nodes.values():
                    detection = node.sense_activity_context(
                        timestamp, compressive=compressive
                    )
                    inferred[node.node_id] = detection.estimate.mode
                    if node.shared_contexts:
                        node.share_context(
                            nc.bus,
                            nc.broker.broker_id,
                            node.shared_contexts[-1],
                        )
                    self.store.log_context(
                        ContextRecord(
                            kind="activity",
                            node_id=node.node_id,
                            timestamp=timestamp,
                            value=detection.estimate.mode,
                        )
                    )
                nc.broker.process_inbox(nc.bus, timestamp)
        return inferred

    def group_context(self, kind: str = "activity") -> list[GroupContext]:
        """Per-NanoCloud group context rollups (Section 3's shared
        'group context, behavior, and preferences')."""
        now = float(self._round)
        rollups = []
        for lc in self.hierarchy.localclouds.values():
            for nc in lc.nanoclouds:
                rollups.append(nc.broker.groups.aggregate(kind, now))
        return rollups

    # -- retrieval ----------------------------------------------------------

    def query(self, query: Query) -> list[SensorReading]:
        """On-demand query over the logged readings."""
        return self.store.run_query(query)

    def latest_field(self) -> SpatialField:
        """Ground-truth field currently being sensed (for comparisons)."""
        return self.env.fields[self.sensor_name]

    # -- accounting ----------------------------------------------------------

    def energy_summary_mj(self) -> dict[str, float]:
        """Fleet energy: phone-side sensing/CPU plus radio traffic."""
        return {
            "node_energy_mj": self.hierarchy.total_node_energy_mj(),
            "radio_energy_mj": self.hierarchy.bus.stats.total_energy_mj,
            "messages": float(self.hierarchy.bus.stats.messages),
            "bytes": float(self.hierarchy.bus.stats.bytes),
        }

    def fleet_status(self) -> dict[str, float]:
        """Operational health of the crowd: battery levels and privacy
        transparency counters, aggregated across all nodes."""
        levels = []
        shared = withheld = 0
        for lc in self.hierarchy.localclouds.values():
            for nc in lc.nanoclouds:
                for node in nc.nodes.values():
                    if node.ledger.battery is not None:
                        levels.append(node.ledger.battery.level)
                    shared += node.audit.total_shared()
                    withheld += node.audit.total_withheld()
        return {
            "nodes": float(self.hierarchy.n_nodes),
            "battery_min": float(min(levels)) if levels else 1.0,
            "battery_mean": float(np.mean(levels)) if levels else 1.0,
            "readings_shared": float(shared),
            "readings_withheld": float(withheld),
        }

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "SenseDroid":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
