"""The mobile node: SenseDroid's thin client (Fig. 2, left box).

A :class:`MobileNode` owns its sensors, privacy policy, battery/energy
ledger and kinematic state.  It answers broker SENSE_COMMANDs with
SENSE_REPORTs (subject to privacy), runs *on-node* temporal compressive
context inference (the Fig. 4 IsDriving pipeline — "the algorithm ... is
also used by the nodes for context processing"), and shares resulting
contexts with the broker when allowed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..context.isdriving import DrivingDetection, detect_is_driving
from ..energy.accounting import EnergyLedger
from ..energy.model import DEFAULT_CPU, Battery, CpuModel
from ..network.bus import MessageBus
from ..network.message import Message, MessageKind
from ..sensors.base import Environment, NodeState, Sensor, SensorReading
from ..sensors.noise import QualityTier
from ..sensors.physical import accelerometer_window
from .config import NodeConfig
from .privacy import PrivacyAudit, PrivacyPolicy

__all__ = ["MobileNode"]


@dataclass
class SharedContext:
    """A context the node decided to share upward."""

    kind: str
    value: str | float
    timestamp: float
    detection: DrivingDetection | None = None


class MobileNode:
    """One participant phone in a NanoCloud.

    Parameters
    ----------
    node_id:
        Bus address of this node.
    sensors:
        Sensors on (or attached to) the phone, keyed by sensor name.
    tier:
        Handset quality tier; scales each sensor's noise and is what the
        broker's GLS covariance is built from.
    state / policy / config:
        Kinematic state, privacy policy and node configuration; all
        default to sensible values.
    """

    def __init__(
        self,
        node_id: str,
        sensors: dict[str, Sensor] | None = None,
        *,
        tier: QualityTier | None = None,
        state: NodeState | None = None,
        policy: PrivacyPolicy | None = None,
        config: NodeConfig | None = None,
        cpu: CpuModel = DEFAULT_CPU,
        battery: Battery | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not node_id:
            raise ValueError("node_id must be non-empty")
        self.node_id = node_id
        self.sensors: dict[str, Sensor] = dict(sensors or {})
        self.tier = tier
        self.state = state or NodeState()
        self.policy = policy or PrivacyPolicy()
        self.config = config or NodeConfig()
        self.cpu = cpu
        self.ledger = EnergyLedger(node_id=node_id, battery=battery)
        self.audit = PrivacyAudit()
        self.shared_contexts: list[SharedContext] = []
        self._rng = np.random.default_rng(rng)
        # Optional data-fault process (repro.sensors.faults): when set,
        # every reading this node produces is run through its fault
        # models *after* the honest noise machinery — the node itself
        # does not know its sensor lies.
        self.fault_injector = None

    # -- sensing -------------------------------------------------------

    def attach_sensor(self, sensor: Sensor) -> None:
        """Plug in an (external or built-in) sensor probe."""
        self.sensors[sensor.spec.name] = sensor

    def has_sensor(self, name: str) -> bool:
        return name in self.sensors

    def effective_noise_std(self, sensor_name: str) -> float:
        """Noise std after applying the handset tier multiplier."""
        sensor = self.sensors[sensor_name]
        multiplier = self.tier.noise_multiplier if self.tier else 1.0
        return sensor.spec.noise_std * multiplier

    def read_sensor(
        self, name: str, env: Environment, timestamp: float
    ) -> SensorReading:
        """Take one local measurement and account its energy.

        Tier-degraded handsets get extra noise injected on top of the
        sensor's base model.
        """
        try:
            sensor = self.sensors[name]
        except KeyError:
            raise KeyError(
                f"node {self.node_id} has no {name!r} sensor; "
                f"available: {sorted(self.sensors)}"
            ) from None
        reading = sensor.read(env, self.state, timestamp)
        self.ledger.post("sensing", sensor.spec.energy_per_sample_mj)
        if self.tier and self.tier.noise_multiplier > 1.0:
            extra_std = sensor.spec.noise_std * np.sqrt(
                self.tier.noise_multiplier**2 - 1.0
            )
            reading = SensorReading(
                sensor=reading.sensor,
                timestamp=reading.timestamp,
                value=reading.value
                + float(self._rng.standard_normal()) * extra_std,
                unit=reading.unit,
                node_id=self.node_id,
                noise_std=self.effective_noise_std(name),
            )
        else:
            reading = SensorReading(
                sensor=reading.sensor,
                timestamp=reading.timestamp,
                value=reading.value,
                unit=reading.unit,
                node_id=self.node_id,
                noise_std=self.effective_noise_std(name),
            )
        if self.fault_injector is not None:
            now = self.fault_injector.now_or(timestamp)
            value, noise_std = self.fault_injector.corrupt(
                self.node_id, reading.value, reading.noise_std, now
            )
            if value != reading.value or noise_std != reading.noise_std:
                reading = SensorReading(
                    sensor=reading.sensor,
                    timestamp=reading.timestamp,
                    value=value,
                    unit=reading.unit,
                    node_id=self.node_id,
                    noise_std=noise_std,
                )
        return reading

    # -- broker protocol -------------------------------------------------

    def handle_command(
        self, command: Message, env: Environment, bus: MessageBus
    ) -> Message | None:
        """Answer one SENSE_COMMAND with a SENSE_REPORT (or refuse).

        A privacy-forbidden or missing sensor yields a refusal report
        with ``ok=False`` so the broker can reassign the measurement —
        and the refusal is logged in the transparency audit.
        """
        if command.kind is not MessageKind.SENSE_COMMAND:
            raise ValueError(f"not a sense command: {command.kind}")
        sensor_name = command.payload["sensor"]
        timestamp = command.timestamp
        if not self.policy.may_share(sensor_name) or sensor_name not in self.sensors:
            self.audit.record(sensor_name, was_shared=False)
            reply = command.reply(
                MessageKind.SENSE_REPORT,
                {"ok": False, "sensor": sensor_name},
                payload_values=1,
            )
            bus.send(reply)
            return reply
        reading = self.read_sensor(sensor_name, env, timestamp)
        filtered = self.policy.filter_reading(reading)
        if filtered is None:  # policy changed between checks; stay safe
            self.audit.record(sensor_name, was_shared=False)
            reply = command.reply(
                MessageKind.SENSE_REPORT,
                {"ok": False, "sensor": sensor_name},
                payload_values=1,
            )
            bus.send(reply)
            return reply
        self.audit.record(sensor_name, was_shared=True)
        reply = command.reply(
            MessageKind.SENSE_REPORT,
            {
                "ok": True,
                "sensor": sensor_name,
                "value": filtered.value,
                "noise_std": filtered.noise_std,
                "grid_index": command.payload.get("grid_index"),
            },
            payload_values=2,
        )
        bus.send(reply)
        return reply

    # -- on-node compressive context processing --------------------------

    def sense_activity_context(
        self,
        timestamp: float,
        *,
        window: np.ndarray | None = None,
        compressive: bool = True,
    ) -> DrivingDetection:
        """Run the Fig. 4 pipeline on the node's current motion.

        Captures an accelerometer window for the node's ground-truth mode
        (or uses a supplied one), samples it compressively per the node
        config, reconstructs on-device (CPU energy accounted), and
        classifies.
        """
        cfg = self.config
        n = cfg.context_window
        if window is None:
            window = accelerometer_window(
                self.state.mode, n, cfg.context_rate_hz,
                rng=self._rng.integers(2**31),
            )
        window = np.asarray(window, dtype=float).ravel()
        if window.size != n:
            raise ValueError(
                f"window length {window.size} != configured {n}"
            )
        accel_cost = (
            self.sensors["accelerometer"].spec.energy_per_sample_mj
            if "accelerometer" in self.sensors
            else 0.01
        )
        if compressive:
            m = max(int(np.ceil(cfg.temporal_duty_cycle * n)), 8)
            detection = detect_is_driving(
                window,
                cfg.context_rate_hz,
                m=m,
                solver=cfg.temporal_solver,
                rng=self._rng.integers(2**31),
            )
            # CPU: the sparse reconstruction plus classification.
            flops = self.cpu.reconstruction_flops(m, n, max(4, m // 2))
        else:
            # Full-rate sampling has the whole window — classify it
            # directly; no reconstruction is needed or performed.
            from ..context.activity import classify_window

            m = n
            estimate = classify_window(window, cfg.context_rate_hz)
            detection = DrivingDetection(
                is_driving=estimate.mode == "driving",
                estimate=estimate,
                m=n,
                n=n,
                reconstruction_error=0.0,
            )
            flops = 10.0 * n * np.log2(n)  # DCT features + thresholds
        self.ledger.post("sensing", m * accel_cost)
        self.ledger.post("cpu", self.cpu.energy_mj(flops))
        if self.config.share_contexts and self.policy.share_contexts:
            self.shared_contexts.append(
                SharedContext(
                    kind="activity",
                    value=detection.estimate.mode,
                    timestamp=timestamp,
                    detection=detection,
                )
            )
        return detection

    def share_context(
        self, bus: MessageBus, broker_address: str, context: SharedContext | None
    ) -> None:
        """Publish one context upward, if the privacy policy allows.

        Accepts ``None`` (no context recorded — e.g. sharing disabled at
        capture time) as a no-op so callers can pass the last recorded
        context unconditionally.
        """
        if context is None:
            return
        if not self.policy.share_contexts:
            self.audit.record(f"context:{context.kind}", was_shared=False)
            return
        self.audit.record(f"context:{context.kind}", was_shared=True)
        bus.send(
            Message(
                kind=MessageKind.CONTEXT_SHARE,
                source=self.node_id,
                destination=broker_address,
                payload={"kind": context.kind, "value": context.value},
                payload_values=1,
                timestamp=context.timestamp,
            )
        )
