"""Event-driven aggregation rounds: resumable broker state machines.

The synchronous path (:meth:`repro.middleware.broker.Broker.run_round`)
completes a whole command → collect → solve round inside one function
call — fine when the transport is instantaneous, wrong when WiFi/BT/GSM
links impose real latency.  This module reworks the round into a state
machine driven by the discrete-event clock:

    IDLE → COMMANDING → COLLECTING → SOLVING → FINALIZED

- **COMMANDING**: the broker draws its plan (same RNG sequence as the
  synchronous path, via :meth:`Broker.plan_round`) and transmits one
  SENSE_COMMAND per planned cell; deliveries arrive after link latency.
- **COLLECTING**: reports arrive as bus events; per-command timeouts
  re-transmit (the PR-1 retry/backoff policy, now as scheduled events)
  or rotate to the next co-located candidate; a *report deadline* event
  bounds the wait — when it fires, the round solves with whatever
  arrived (partial-report solve) after infrastructure fallback.
- **SOLVING/FINALIZED**: the pure-numeric solve (thread-poolable, PR 2)
  and the serial state adaptation, then a round-completed callback.

One :class:`ZoneRoundDriver` runs one zone (LocalCloud) on its own
period and phase offset, so zones desynchronise instead of marching
under a global barrier.  With the bus in ``latency_mode="zero"`` the
driver collapses COMMANDING/COLLECTING into the synchronous collect —
every exchange completes within the round instant — which is
property-tested bit-identical to the lockstep path.
"""

from __future__ import annotations

# Wall-clock convention: simulation logic must read the SimClock; the
# only sanctioned wall-clock reads are the perf-timing spans below that
# measure *solver compute cost* (RoundRecord.round_wall_s and
# ZoneRoundOutcome.wall_s).  Each carries a
# `# reprolint: allow[wall-clock]` pragma — see docs/invariants.md.
import dataclasses
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable

from ..analysis import contracts
from ..network.message import Message, MessageKind
from ..sensors.base import Environment
from .broker import Broker, _Collected, _RoundPlan, _RoundTelemetry
from .localcloud import LocalCloud, LocalCloudResult, solve_pending_rounds
from .nanocloud import NanoCloud
from .node import MobileNode
from .overload import OverloadController, RoundDirectives

if TYPE_CHECKING:
    from ..sim.clock import PeriodicHandle, SimClock

__all__ = [
    "RoundState",
    "ZoneSchedule",
    "ZoneRoundOutcome",
    "ZoneRoundDriver",
]


class RoundState(Enum):
    """Lifecycle of one zone's aggregation round."""

    IDLE = "idle"
    COMMANDING = "commanding"
    COLLECTING = "collecting"
    SOLVING = "solving"
    FINALIZED = "finalized"


@dataclass(frozen=True)
class ZoneSchedule:
    """Per-zone cadence: sensing period and phase offset.

    ``offset_s`` is the sim time of the zone's *first* round (default:
    one period in), so zones can interleave instead of synchronising.
    """

    period_s: float
    offset_s: float | None = None

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.offset_s is not None and self.offset_s < 0:
            raise ValueError("offset_s must be non-negative")


@dataclass(frozen=True)
class ZoneRoundOutcome:
    """One completed zone round, with its command-to-estimate latency.

    ``stale`` marks an overload outcome that re-serves the previous
    round's field (breaker OPEN or ladder LEVEL_STALE) instead of
    sensing — its estimates carry ``staleness_rounds`` > 0.
    """

    zone_id: int
    result: LocalCloudResult
    started_at: float
    completed_at: float
    index: int
    partial: bool = False
    wall_s: float = 0.0
    stale: bool = False

    @property
    def latency_s(self) -> float:
        """Sim time from the first command to the finalized estimate."""
        return self.completed_at - self.started_at


@dataclass
class _CellAttempt:
    """Per-cell command progress: which candidate, which retry."""

    cell: int
    candidates: list[str]
    candidate_idx: int = 0
    attempt: int = 0
    awaiting: str | None = None
    satisfied: bool = False
    exhausted: bool = False


@dataclass
class _NcCollection:
    """One NanoCloud's in-flight collection state for one round."""

    nc: NanoCloud
    broker: Broker
    plan: _RoundPlan | None
    collected: _Collected = field(default_factory=_Collected)
    telemetry: _RoundTelemetry = field(default_factory=_RoundTelemetry)
    cells: dict[int, _CellAttempt] = field(default_factory=dict)
    commanded: dict[str, int] = field(default_factory=dict)
    baseline_out: int = 0
    baseline_in: int = 0


class ZoneRoundDriver:
    """Drives one zone's rounds on the event clock.

    Parameters
    ----------
    zone_id / localcloud:
        The zone and its LocalCloud (brokers + nodes already on a bus).
    env:
        Ground truth the member sensors read.
    clock:
        The :class:`repro.sim.clock.SimClock` everything is scheduled on.
    period_s / offset_s:
        Round cadence; the first round fires at ``offset_s`` (default:
        one period in).
    report_deadline_s:
        COLLECTING deadline; defaults to the broker config's
        ``report_deadline_s``, clamped below the period so a round
        always closes before the next one is due.
    cloud_address:
        When set, every finalized round reports upward to this address
        (the public-cloud uplink of the lockstep path).
    measurements_per_nc:
        Optional fixed per-NanoCloud measurement budgets.
    on_complete:
        Callback receiving each :class:`ZoneRoundOutcome` — the
        round-completed event the simulation layer subscribes to.
    """

    def __init__(
        self,
        zone_id: int,
        localcloud: LocalCloud,
        env: Environment,
        clock: "SimClock",
        *,
        period_s: float,
        offset_s: float | None = None,
        report_deadline_s: float | None = None,
        cloud_address: str | None = None,
        measurements_per_nc: list[int] | None = None,
        on_complete: Callable[["ZoneRoundOutcome"], None] | None = None,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.zone_id = zone_id
        self.lc = localcloud
        self.env = env
        self.clock = clock
        self.bus = localcloud.bus
        self.period_s = period_s
        self.offset_s = offset_s
        deadline = (
            report_deadline_s
            if report_deadline_s is not None
            else localcloud.config.report_deadline_s
        )
        # A round must close before the next is due or every firing
        # after the first would be skipped as busy.
        self.report_deadline_s = min(deadline, 0.9 * period_s)
        self.cloud_address = cloud_address
        self.measurements_per_nc = measurements_per_nc
        self.on_complete = on_complete
        self.state = RoundState.IDLE
        self.rounds_completed = 0
        self.rounds_skipped = 0
        self.rounds_failed = 0
        self.late_reports = 0
        # Overload accounting: busy firings that were rescheduled by
        # admission control, and round slots served from the last good
        # estimate (breaker OPEN / ladder LEVEL_STALE).
        self.rounds_rescheduled = 0
        self.rounds_stale_served = 0
        self.last_outcome: ZoneRoundOutcome | None = None
        self._generation = 0
        self._started_at = 0.0
        self._collections: list[_NcCollection] = []
        self._handle: "PeriodicHandle | None" = None
        self._directives = RoundDirectives()
        self._busy_streak = 0
        self._retry_pending = False
        # The driver's state machine belongs to the thread that built it
        # (the event loop); only the inner solve may use workers.  The
        # sanitizer asserts this on every state transition.
        self._owner_ident = threading.get_ident()

    # -- scheduling ----------------------------------------------------

    def start(self, until: float | None = None) -> None:
        """Arm the periodic round schedule on the clock."""
        first = self.offset_s if self.offset_s is not None else self.period_s
        self._handle = self.clock.schedule_periodic(
            self.period_s, self._begin_round, start=first, until=until
        )
        if self.bus.deferred:
            # AGGREGATE traffic to the head/cloud tiers is metered on
            # arrival and then discarded (the lockstep path drains those
            # inboxes explicitly; event mode has no drain point).
            self.bus.set_handler(self.lc.head_address, lambda message: None)
            if self.cloud_address is not None:
                self.bus.set_handler(self.cloud_address, lambda message: None)

    def stop(self) -> None:
        if self._handle is not None:
            self.clock.cancel(self._handle)

    # -- round lifecycle -----------------------------------------------

    # -- overload protection -------------------------------------------

    @property
    def overload(self) -> OverloadController:
        """The zone's overload controller (lead NC broker's state).

        Read through the broker each time so a heartbeat failover —
        which carries the controller onto the promoted acting broker —
        keeps feeding the same detector/breaker/ladder state.
        """
        return self.lc.nanoclouds[0].broker.overload

    def _queue_depth(self) -> int:
        """Pending bus traffic at the zone's broker endpoints."""
        depth = 0
        for nc in self.lc.nanoclouds:
            try:
                depth += self.bus.endpoint(nc.broker.broker_id).pending()
            except KeyError:
                pass  # broker endpoint churned; it holds no queue
        return depth

    def _nc_budget(
        self, broker: Broker, idx: int, directives: RoundDirectives
    ) -> int | None:
        """This NC's measurement budget after the ladder's M scaling."""
        budget = (
            self.measurements_per_nc[idx]
            if self.measurements_per_nc is not None
            else None
        )
        if directives.m_scale >= 1.0:
            return budget
        if budget is None:
            k_est = broker._sparsity_estimate()
            if directives.sparsity_cap is not None:
                k_est = min(k_est, directives.sparsity_cap)
            budget = broker.config.policy.measurements(broker.n, k_est)
        return max(1, int(round(directives.m_scale * budget)))

    def _handle_busy(self, now: float) -> None:
        """A firing found the previous round still in flight."""
        self.rounds_skipped += 1
        cfg = self.overload.config
        if not cfg.admission_control:
            return
        self._busy_streak += 1
        over_budget = self._busy_streak > cfg.busy_skip_budget
        self.overload.record_busy_skip(over_budget)
        if over_budget or self._retry_pending:
            return
        # Admission control: rather than waiting a whole period, retry
        # a fraction of it later — the in-flight round may close soon.
        self._retry_pending = True
        self.rounds_rescheduled += 1
        self.clock.schedule_in(
            cfg.admission_retry_frac * self.period_s, self._admission_retry
        )

    def _admission_retry(self, now: float) -> None:
        self._retry_pending = False
        self._begin_round(now)

    def _serve_stale(self, now: float, directives: RoundDirectives) -> None:
        """Serve the last good estimate instead of running a round."""
        self.rounds_stale_served += 1
        last = self.last_outcome
        if last is None:
            return  # nothing good to serve yet; the slot is simply lost
        estimates = [
            dataclasses.replace(
                e,
                timestamp=now,
                degraded=True,
                staleness_rounds=e.staleness_rounds + 1,
                degraded_level=max(directives.level, e.degraded_level),
            )
            for e in last.result.nc_estimates
        ]
        result = LocalCloudResult(
            field=last.result.field, nc_estimates=estimates, timestamp=now
        )
        outcome = ZoneRoundOutcome(
            zone_id=self.zone_id,
            result=result,
            started_at=now,
            completed_at=now,
            index=self.rounds_completed,
            stale=True,
        )
        self.last_outcome = outcome
        if self.on_complete is not None:
            self.on_complete(outcome)

    # -- round lifecycle (continued) -----------------------------------

    def _begin_round(self, now: float) -> None:
        if contracts.enabled():
            contracts.assert_thread(
                self._owner_ident, "ZoneRoundDriver._begin_round"
            )
        if self.state not in (RoundState.IDLE, RoundState.FINALIZED):
            # The previous round is still collecting/solving: skip this
            # firing rather than pile up overlapping rounds (and, with
            # admission control armed, retry a fraction of a period in).
            self._handle_busy(now)
            return
        self._busy_streak = 0
        directives = self.overload.begin_round(self._queue_depth())
        if directives.serve_stale:
            self._serve_stale(now, directives)
            return
        self._directives = directives
        self._generation += 1
        self._started_at = now
        if not self.bus.deferred:
            self._run_synchronous(now, directives)
            return
        gen = self._generation
        self.state = RoundState.COMMANDING
        self._collections = []
        for idx, nc in enumerate(self.lc.nanoclouds):
            broker = nc.prepare_round(now)
            budget = self._nc_budget(broker, idx, directives)
            try:
                plan = broker.plan_round(
                    measurements=budget,
                    sparsity_cap=directives.sparsity_cap,
                )
            except RuntimeError:
                self._collections.append(
                    _NcCollection(nc=nc, broker=broker, plan=None)
                )
                continue
            endpoint = self.bus.endpoint(broker.broker_id)
            col = _NcCollection(
                nc=nc,
                broker=broker,
                plan=plan,
                baseline_out=endpoint.outbound_lost,
                baseline_in=endpoint.inbound_lost,
            )
            for cell in plan.plan.locations.tolist():
                col.cells[cell] = _CellAttempt(
                    cell=cell,
                    candidates=broker._cell_order(
                        cell, plan.members_by_cell, nc.nodes, plan.probes
                    ),
                )
            self._collections.append(col)
            self._install_handlers(col, gen)
        for col in self._collections:
            for cell in sorted(col.cells):
                self._dispatch(col, col.cells[cell], gen, now)
        self.state = RoundState.COLLECTING
        self.clock.schedule_in(
            self.report_deadline_s,
            lambda t, g=gen: self._deadline(g, t),
        )
        self._maybe_complete()

    def _install_handlers(self, col: _NcCollection, gen: int) -> None:
        self.bus.set_handler(
            col.broker.broker_id,
            lambda message, c=col, g=gen: self._on_broker_message(
                c, g, message
            ),
        )
        for node in col.nc.nodes.values():
            try:
                self.bus.set_handler(
                    node.node_id,
                    lambda message, n=node: self._on_node_message(n, message),
                )
            except KeyError:
                pass  # churned off the bus; sends to it drop-and-count

    # -- commanding / collecting ---------------------------------------

    def _dispatch(
        self, col: _NcCollection, ca: _CellAttempt, gen: int, now: float
    ) -> None:
        """Command the cell's current candidate (or fall back to infra)."""
        broker = col.broker
        while True:
            if ca.satisfied:
                return
            if ca.candidate_idx >= len(ca.candidates):
                self._exhaust_cell(col, ca, now)
                return
            node_id = ca.candidates[ca.candidate_idx]
            if node_id not in col.nc.nodes:
                ca.candidate_idx += 1
                ca.attempt = 0
                continue
            command = Message(
                kind=MessageKind.SENSE_COMMAND,
                source=broker.broker_id,
                destination=node_id,
                payload={
                    "sensor": broker.sensor_name,
                    "grid_index": ca.cell,
                },
                payload_values=2,
                timestamp=now,
            )
            col.commanded[node_id] = ca.cell
            ca.awaiting = node_id
            if not self.bus.send(command, strict=False):
                # Endpoint gone at transmit time; rotate immediately.
                ca.candidate_idx += 1
                ca.attempt = 0
                continue
            timeout = broker.config.report_timeout_s * 2 ** min(ca.attempt, 5)
            self.clock.schedule_in(
                timeout,
                lambda t, c=col, a=ca, n=node_id, k=ca.attempt, g=gen: (
                    self._report_timeout(c, a, n, k, g, t)
                ),
            )
            return

    def _exhaust_cell(
        self, col: _NcCollection, ca: _CellAttempt, now: float
    ) -> None:
        """Every candidate failed/refused: try the fixed sensor, else
        mark the cell unrealisable so the round can close early."""
        broker = col.broker
        if ca.cell in broker.infrastructure:
            value, noise_std = broker._read_infrastructure(
                ca.cell, self.env, now
            )
            col.telemetry.infra_reads += 1
            self._record_measurement(col, ca, value, noise_std, ())
            return
        ca.exhausted = True
        self._maybe_complete()

    def _record_measurement(
        self,
        col: _NcCollection,
        ca: _CellAttempt,
        value: float,
        noise_std: float | None,
        sources: tuple[str, ...],
    ) -> None:
        ca.satisfied = True
        col.collected.locations.append(ca.cell)
        col.collected.values.append(value)
        col.collected.noise_stds.append(noise_std or 0.0)
        col.collected.sources.append(sources)
        self._maybe_complete()

    def _report_timeout(
        self,
        col: _NcCollection,
        ca: _CellAttempt,
        node_id: str,
        attempt: int,
        gen: int,
        now: float,
    ) -> None:
        if gen != self._generation or self.state is not RoundState.COLLECTING:
            return
        if ca.satisfied or ca.awaiting != node_id or ca.attempt != attempt:
            return  # stale timer: the cell moved on without us
        if ca.attempt < col.broker.config.command_retries:
            ca.attempt += 1
            col.telemetry.retries_used += 1
        else:
            ca.candidate_idx += 1
            ca.attempt = 0
        self._dispatch(col, ca, gen, now)

    def _on_broker_message(
        self, col: _NcCollection, gen: int, message: Message
    ) -> None:
        if message.kind is not MessageKind.SENSE_REPORT:
            # Context shares etc. keep their inbox path for the usual
            # consumers (Broker.process_inbox) — re-enqueued through the
            # bounded bus API so a saturated broker sheds them instead
            # of queueing without limit (RPR008).
            self.bus.requeue(message)
            return
        if gen != self._generation or self.state is not RoundState.COLLECTING:
            self.late_reports += 1
            return
        cell = col.commanded.get(message.source)
        if cell is None:
            self.late_reports += 1
            return
        ca = col.cells.get(cell)
        if ca is None or ca.satisfied:
            return
        if message.payload.get("ok"):
            self._record_measurement(
                col,
                ca,
                float(message.payload["value"]),
                float(message.payload.get("noise_std", 0.0)),
                (message.source,),
            )
        else:
            col.telemetry.refused += 1
            if ca.awaiting == message.source:
                ca.candidate_idx += 1
                ca.attempt = 0
                self._dispatch(col, ca, gen, float(self.clock.now))

    def _on_node_message(self, node: MobileNode, message: Message) -> None:
        if message.kind is MessageKind.SENSE_COMMAND:
            node.handle_command(message, self.env, self.bus)
        else:
            self.bus.requeue(message)

    def _maybe_complete(self) -> None:
        if self.state is not RoundState.COLLECTING:
            return
        for col in self._collections:
            for ca in col.cells.values():
                if not ca.satisfied and not ca.exhausted:
                    return
        self._close_collection(float(self.clock.now))

    def _deadline(self, gen: int, now: float) -> None:
        if gen != self._generation or self.state is not RoundState.COLLECTING:
            return
        self._close_collection(now)

    # -- solving / finalizing ------------------------------------------

    def _close_collection(self, now: float) -> None:
        if contracts.enabled():
            contracts.assert_thread(
                self._owner_ident, "ZoneRoundDriver._close_collection"
            )
        self.state = RoundState.SOLVING
        started_wall = time.perf_counter()  # reprolint: allow[wall-clock]
        pairs = []
        partial = False
        for col in self._collections:
            broker = col.broker
            if col.plan is None:
                self.rounds_failed += 1
                self.state = RoundState.IDLE
                return
            # Deadline fallback: cells whose node exchange was still in
            # flight read their fixed sensor now (the synchronous path's
            # per-cell infra fallback, deferred to the deadline).
            for cell in sorted(col.cells):
                ca = col.cells[cell]
                if not ca.satisfied and cell in broker.infrastructure:
                    value, noise_std = broker._read_infrastructure(
                        cell, self.env, now
                    )
                    col.telemetry.infra_reads += 1
                    ca.satisfied = True
                    col.collected.locations.append(cell)
                    col.collected.values.append(value)
                    col.collected.noise_stds.append(noise_std or 0.0)
                    col.collected.sources.append(())
            if not col.collected.locations and broker.infrastructure:
                broker._infra_sweep(col.collected, col.telemetry, self.env, now)
            if any(not ca.satisfied for ca in col.cells.values()):
                partial = True
            endpoint = self.bus.endpoint(broker.broker_id)
            col.telemetry.commands_lost += (
                endpoint.outbound_lost - col.baseline_out
            )
            col.telemetry.reports_lost += (
                endpoint.inbound_lost - col.baseline_in
            )
            try:
                pending = broker._freeze_round(
                    col.collected,
                    col.telemetry,
                    col.plan.k_est,
                    col.plan.planned_m,
                    self._started_at,
                )
            except RuntimeError:
                self.rounds_failed += 1
                self.state = RoundState.IDLE
                return
            pairs.append((broker, pending))
        solved = solve_pending_rounds(pairs, self.lc.config)
        result = self.lc.finish_round(pairs, solved, self._started_at)
        if self.cloud_address is not None:
            self.lc.report_upward(self.cloud_address, result, now)
        wall = time.perf_counter() - started_wall  # reprolint: allow[wall-clock]
        self._finish(result, now, partial, wall)

    def _run_synchronous(
        self, now: float, directives: RoundDirectives
    ) -> None:
        """Zero-latency collapse: the whole round completes at ``now``.

        Bit-identical to the lockstep path — same collect/solve/finalize
        calls on the same broker state — because with instantaneous
        links there is nothing to wait for.
        """
        self.state = RoundState.SOLVING
        started_wall = time.perf_counter()  # reprolint: allow[wall-clock]
        if directives.m_scale < 1.0:
            budgets = [
                self._nc_budget(nc.broker, idx, directives)
                for idx, nc in enumerate(self.lc.nanoclouds)
            ]
        else:
            budgets = self.measurements_per_nc
        try:
            result = self.lc.run_round(
                self.env, now,
                measurements_per_nc=budgets,
                sparsity_cap=directives.sparsity_cap,
            )
        except RuntimeError:
            self.rounds_failed += 1
            self.state = RoundState.IDLE
            return
        if self.cloud_address is not None:
            self.lc.report_upward(self.cloud_address, result, now)
            self.bus.endpoint(self.cloud_address).drain()
        wall = time.perf_counter() - started_wall  # reprolint: allow[wall-clock]
        self._finish(result, now, False, wall)

    def _finish(
        self,
        result: LocalCloudResult,
        now: float,
        partial: bool,
        wall_s: float,
    ) -> None:
        if contracts.enabled():
            contracts.assert_thread(
                self._owner_ident, "ZoneRoundDriver._finish"
            )
        self.state = RoundState.FINALIZED
        self.rounds_completed += 1
        directives = self._directives
        if directives.level > 0:
            # A degraded (reduced-M / coarse) round: stamp the ladder
            # level on the estimates so consumers can weight them.
            for estimate in result.nc_estimates:
                estimate.degraded = True
                estimate.degraded_level = directives.level
        latency = now - self._started_at
        # A round the report deadline had to close is the breaker's
        # "failure" signal — sim-time, so replays reproduce every trip.
        self.overload.finish_round(
            latency_s=latency,
            deadline_s=self.report_deadline_s,
            timed_out=latency >= self.report_deadline_s,
        )
        outcome = ZoneRoundOutcome(
            zone_id=self.zone_id,
            result=result,
            started_at=self._started_at,
            completed_at=now,
            index=self.rounds_completed,
            partial=partial,
            wall_s=wall_s,
        )
        self.last_outcome = outcome
        if self.on_complete is not None:
            self.on_complete(outcome)
