"""LocalCloud: a zone's head broker over several NanoClouds.

"The head broker in the LCs in turn communicate with other LCs and the
public cloud in the next hierarchy ... This hierarchy allows the nodes
to collaborate through the broker ... and concatenate the results of the
NCs for the local region" (Section 3).  A LocalCloud covers one zone of
the global field; the zone is split column-wise into NC sub-zones, each
aggregated independently, and the head concatenates the sub-results into
the zone estimate it reports upward as a compressed coefficient payload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fields.field import SpatialField
from ..network.bus import MessageBus
from ..network.links import LinkModel, WIFI
from ..network.message import Message, MessageKind
from ..sensors.base import Environment
from .broker import ZoneEstimate
from .config import BrokerConfig
from .nanocloud import NanoCloud

__all__ = ["LocalCloudResult", "LocalCloud"]


@dataclass
class LocalCloudResult:
    """One LC round: the assembled zone field plus per-NC diagnostics."""

    field: SpatialField
    nc_estimates: list[ZoneEstimate]
    timestamp: float

    @property
    def total_measurements(self) -> int:
        return sum(e.m for e in self.nc_estimates)

    @property
    def coefficients_reported(self) -> int:
        """Scalars the LC forwards upward (support indices + values)."""
        return sum(
            2 * int(e.reconstruction.support.size) for e in self.nc_estimates
        )


class LocalCloud:
    """One zone's LocalCloud: head broker + NanoClouds."""

    def __init__(
        self,
        lc_id: str,
        bus: MessageBus,
        zone_width: int,
        zone_height: int,
        *,
        origin: tuple[int, int] = (0, 0),
        n_nanoclouds: int = 1,
        nodes_per_nc: int = 32,
        sensor_name: str = "temperature",
        config: BrokerConfig | None = None,
        criticality: np.ndarray | None = None,
        uplink: LinkModel = WIFI,
        auto_link: bool = False,
        cell_size_m: float = 10.0,
        heterogeneous: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if zone_width % n_nanoclouds:
            raise ValueError(
                f"zone width {zone_width} does not split into "
                f"{n_nanoclouds} NanoCloud columns"
            )
        self.lc_id = lc_id
        self.head_address = f"{lc_id}/head"
        self.bus = bus
        self.zone_width = zone_width
        self.zone_height = zone_height
        self.origin = origin
        self.uplink = uplink
        bus.register(self.head_address, uplink)
        gen = np.random.default_rng(rng)
        nc_width = zone_width // n_nanoclouds
        self.nanoclouds: list[NanoCloud] = []
        ox, oy = origin
        for idx in range(n_nanoclouds):
            # Slice the zone-local criticality vector for this NC column.
            nc_criticality = None
            if criticality is not None:
                full = np.asarray(criticality, dtype=float).ravel()
                cells = []
                for i in range(idx * nc_width, (idx + 1) * nc_width):
                    cells.extend(
                        range(i * zone_height, (i + 1) * zone_height)
                    )
                nc_criticality = full[np.asarray(cells, dtype=int)]
            self.nanoclouds.append(
                NanoCloud.build(
                    f"{lc_id}/nc{idx}",
                    bus,
                    nc_width,
                    zone_height,
                    nodes_per_nc,
                    sensor_name=sensor_name,
                    origin=(ox + idx * nc_width, oy),
                    config=config,
                    criticality=nc_criticality,
                    auto_link=auto_link,
                    cell_size_m=cell_size_m,
                    heterogeneous=heterogeneous,
                    rng=gen.integers(2**31),
                )
            )

    @property
    def n_nodes(self) -> int:
        return sum(nc.n_nodes for nc in self.nanoclouds)

    def run_round(
        self,
        env: Environment,
        timestamp: float = 0.0,
        measurements_per_nc: list[int] | None = None,
    ) -> LocalCloudResult:
        """Aggregate every NanoCloud and concatenate their sub-fields.

        Each NC broker forwards its result to the head as an AGGREGATE
        message carrying the compressed coefficient payload (metered).
        """
        if measurements_per_nc is not None and len(measurements_per_nc) != len(
            self.nanoclouds
        ):
            raise ValueError("one measurement budget per NanoCloud required")
        estimates: list[ZoneEstimate] = []
        columns: list[np.ndarray] = []
        for idx, nc in enumerate(self.nanoclouds):
            m = measurements_per_nc[idx] if measurements_per_nc else None
            estimate = nc.run_round(env, timestamp, measurements=m)
            estimates.append(estimate)
            columns.append(estimate.field.grid)
            support = int(estimate.reconstruction.support.size)
            self.bus.send(
                Message(
                    kind=MessageKind.AGGREGATE,
                    source=nc.broker.broker_id,
                    destination=self.head_address,
                    payload={"nc": idx, "support": support},
                    payload_values=max(2 * support, 1),
                    timestamp=timestamp,
                )
            )
        self.bus.endpoint(self.head_address).drain()
        zone_grid = np.hstack(columns)
        field = SpatialField(
            grid=zone_grid, name=f"zone@{self.lc_id}"
        )
        return LocalCloudResult(
            field=field, nc_estimates=estimates, timestamp=timestamp
        )

    def report_upward(
        self, cloud_address: str, result: LocalCloudResult, timestamp: float
    ) -> None:
        """Send the zone result to the public cloud (compressed payload)."""
        self.bus.send(
            Message(
                kind=MessageKind.AGGREGATE,
                source=self.head_address,
                destination=cloud_address,
                payload={"lc": self.lc_id},
                payload_values=max(result.coefficients_reported, 1),
                timestamp=timestamp,
            )
        )
